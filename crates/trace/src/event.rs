//! Allocation-trace events and per-object lifetime records.
//!
//! A [`Trace`] is what QPT-style instrumentation would produce: an ordered
//! stream of allocation and deallocation events. Virtual time is the
//! allocation clock — it advances by `size` at each [`Event::Alloc`] and
//! stands still at [`Event::Free`]. Compiling a trace
//! ([`Trace::compile`]) turns the stream into birth-ordered
//! [`ObjectLife`] records, the form the simulator's lifetime oracle
//! consumes.

use dtb_core::time::{Bytes, VirtualTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies one heap object within a trace.
///
/// Ids are dense and unique within a trace; generators assign them in
/// allocation order, but the format does not require that.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// The mutator allocated `size` bytes as object `id`.
    Alloc {
        /// The new object's identity.
        id: ObjectId,
        /// Object size in bytes (> 0).
        size: u32,
    },
    /// The mutator dropped its last reference to `id`: from this point the
    /// object is unreachable and a collector may reclaim it.
    Free {
        /// The now-dead object's identity.
        id: ObjectId,
    },
}

/// Trace-level metadata carried alongside the event stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Workload name, e.g. `"GHOST(1)"`.
    pub name: String,
    /// Free-form description of the workload.
    pub description: String,
    /// Mutator execution time in seconds (Table 6), used for CPU-overhead
    /// percentages.
    pub exec_seconds: f64,
}

impl TraceMeta {
    /// Metadata with a name and defaults elsewhere.
    pub fn named(name: impl Into<String>) -> TraceMeta {
        TraceMeta {
            name: name.into(),
            description: String::new(),
            exec_seconds: 1.0,
        }
    }
}

/// An ordered allocation/deallocation event stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Workload metadata.
    pub meta: TraceMeta,
    /// The events, in program order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> Trace {
        Trace {
            meta,
            events: Vec::new(),
        }
    }

    /// Total bytes allocated over the whole trace.
    pub fn total_allocated(&self) -> Bytes {
        Bytes::new(
            self.events
                .iter()
                .map(|e| match e {
                    Event::Alloc { size, .. } => *size as u64,
                    Event::Free { .. } => 0,
                })
                .sum(),
        )
    }

    /// Number of allocation events.
    pub fn object_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Alloc { .. }))
            .count()
    }

    /// Compiles the event stream into birth-ordered per-object records.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when the stream is malformed: duplicate
    /// allocation of an id, a free of an id never allocated (double
    /// frees report as the latter after the first free removes the id), a
    /// zero-sized allocation, or totals that overflow the allocation clock.
    pub fn compile(&self) -> Result<CompiledTrace, TraceError> {
        let mut clock = VirtualTime::ZERO;
        let alloc_count = self.object_count();
        let mut out = CompiledTrace {
            meta: self.meta.clone(),
            end: VirtualTime::ZERO,
            ids: Vec::with_capacity(alloc_count),
            births: Vec::with_capacity(alloc_count),
            sizes: Vec::with_capacity(alloc_count),
            deaths: Vec::with_capacity(alloc_count),
        };
        let mut index: HashMap<ObjectId, usize> = HashMap::with_capacity(alloc_count);
        for (pos, event) in self.events.iter().enumerate() {
            match *event {
                Event::Alloc { id, size } => {
                    if size == 0 {
                        return Err(TraceError::ZeroSizedAlloc { id, pos });
                    }
                    clock = clock
                        .checked_advance(Bytes::new(size as u64))
                        .ok_or(TraceError::ClockOverflow { id, pos })?;
                    if index.insert(id, out.ids.len()).is_some() {
                        return Err(TraceError::DuplicateAlloc { id, pos });
                    }
                    out.ids.push(id);
                    out.births.push(clock.as_u64());
                    out.sizes.push(size);
                    out.deaths.push(CompiledTrace::NO_DEATH);
                }
                Event::Free { id } => {
                    let Some(&slot) = index.get(&id) else {
                        return Err(TraceError::FreeWithoutAlloc { id, pos });
                    };
                    if out.deaths[slot] != CompiledTrace::NO_DEATH {
                        return Err(TraceError::DoubleFree { id, pos });
                    }
                    out.deaths[slot] = clock.as_u64();
                }
            }
        }
        out.end = clock;
        Ok(out)
    }

    /// Checks the event stream for every malformation [`compile`] would
    /// reject, without building the compiled records.
    ///
    /// Deserializers call this so a corrupt file surfaces one precise
    /// diagnostic at load time instead of a panic (or a garbage simulation)
    /// downstream.
    ///
    /// # Errors
    ///
    /// The first [`TraceError`] in event order, if any.
    ///
    /// [`compile`]: Trace::compile
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut clock = VirtualTime::ZERO;
        // freed[id] = whether the object's one free has been seen.
        let mut freed: HashMap<ObjectId, bool> = HashMap::new();
        for (pos, event) in self.events.iter().enumerate() {
            match *event {
                Event::Alloc { id, size } => {
                    if size == 0 {
                        return Err(TraceError::ZeroSizedAlloc { id, pos });
                    }
                    clock = clock
                        .checked_advance(Bytes::new(size as u64))
                        .ok_or(TraceError::ClockOverflow { id, pos })?;
                    if freed.insert(id, false).is_some() {
                        return Err(TraceError::DuplicateAlloc { id, pos });
                    }
                }
                Event::Free { id } => match freed.get_mut(&id) {
                    None => return Err(TraceError::FreeWithoutAlloc { id, pos }),
                    Some(true) => return Err(TraceError::DoubleFree { id, pos }),
                    Some(f) => *f = true,
                },
            }
        }
        Ok(())
    }
}

/// A malformed event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The same id was allocated twice.
    DuplicateAlloc {
        /// Offending object.
        id: ObjectId,
        /// Event index of the second allocation.
        pos: usize,
    },
    /// An id was freed without ever being allocated.
    FreeWithoutAlloc {
        /// Offending object.
        id: ObjectId,
        /// Event index of the stray free.
        pos: usize,
    },
    /// An id was freed twice.
    DoubleFree {
        /// Offending object.
        id: ObjectId,
        /// Event index of the second free.
        pos: usize,
    },
    /// An allocation had size zero.
    ZeroSizedAlloc {
        /// Offending object.
        id: ObjectId,
        /// Event index of the allocation.
        pos: usize,
    },
    /// The allocation totals overflow the `u64` allocation clock.
    ClockOverflow {
        /// The allocation that overflowed the clock.
        id: ObjectId,
        /// Event index of the allocation.
        pos: usize,
    },
    /// Compiled records are not in strictly-increasing birth order.
    NonMonotoneBirth {
        /// The out-of-order object.
        id: ObjectId,
        /// Index of the record in the compiled lifetime list.
        pos: usize,
    },
    /// A compiled record dies before it is born.
    DeathBeforeBirth {
        /// The impossible object.
        id: ObjectId,
        /// Index of the record in the compiled lifetime list.
        pos: usize,
    },
    /// Compiled object sizes do not sum to the end-of-trace clock.
    TotalsMismatch {
        /// Sum of all object sizes.
        sum: u64,
        /// The recorded end-of-trace clock.
        end: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::DuplicateAlloc { id, pos } => {
                write!(f, "object {id} allocated twice (event {pos})")
            }
            TraceError::FreeWithoutAlloc { id, pos } => {
                write!(f, "object {id} freed but never allocated (event {pos})")
            }
            TraceError::DoubleFree { id, pos } => {
                write!(f, "object {id} freed twice (event {pos})")
            }
            TraceError::ZeroSizedAlloc { id, pos } => {
                write!(f, "object {id} has zero size (event {pos})")
            }
            TraceError::ClockOverflow { id, pos } => {
                write!(
                    f,
                    "object {id} overflows the allocation clock (event {pos})"
                )
            }
            TraceError::NonMonotoneBirth { id, pos } => {
                write!(f, "object {id} born out of order (record {pos})")
            }
            TraceError::DeathBeforeBirth { id, pos } => {
                write!(f, "object {id} dies before it is born (record {pos})")
            }
            TraceError::TotalsMismatch { sum, end } => {
                write!(
                    f,
                    "object sizes sum to {sum} but the trace ends at clock {end}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The full lifetime of one object on the allocation clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectLife {
    /// The object's identity.
    pub id: ObjectId,
    /// Allocation-clock time of birth (clock *after* the allocation, so
    /// births are strictly positive and strictly increasing).
    pub birth: VirtualTime,
    /// Size in bytes.
    pub size: u32,
    /// Allocation-clock time at which the object became unreachable;
    /// `None` for objects still live at program end.
    pub death: Option<VirtualTime>,
}

impl ObjectLife {
    /// True when the object is still reachable at allocation time `at`.
    ///
    /// An object is live from its birth until (exclusive) its death; an
    /// object is *not yet* live before its birth.
    pub fn is_live_at(&self, at: VirtualTime) -> bool {
        self.birth <= at && self.death.is_none_or(|d| d > at)
    }

    /// True when the object is garbage (unreachable) at time `at`.
    pub fn is_dead_at(&self, at: VirtualTime) -> bool {
        self.death.is_some_and(|d| d <= at)
    }

    /// Object size as [`Bytes`].
    pub fn bytes(&self) -> Bytes {
        Bytes::new(self.size as u64)
    }
}

/// A compiled trace: birth-ordered object lifetimes plus the end-of-trace
/// clock value.
///
/// Records are stored **struct-of-arrays**: parallel `ids` / `births` /
/// `sizes` / `deaths` columns indexed by record position. The hot
/// columns hold raw clock words — births as `u64`, deaths as `u64` with
/// [`CompiledTrace::NO_DEATH`] for immortals, the same convention as the
/// on-disk `DTBCTC01` records and [`EventBlock`](crate::EventBlock) — so
/// block fills are straight `memcpy`s and the engine's replay streams
/// exactly the bytes it reads instead of dragging whole [`ObjectLife`]
/// structs (including `Option` discriminants and padding) through the
/// cache. Use the column accessors ([`births`](CompiledTrace::births), …)
/// in hot loops and [`life`](CompiledTrace::life) /
/// [`lives`](CompiledTrace::lives) where whole records are more
/// convenient.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompiledTrace {
    /// Workload metadata (copied from the source [`Trace`]).
    pub meta: TraceMeta,
    /// The allocation clock at the end of the trace (= total bytes
    /// allocated).
    pub end: VirtualTime,
    ids: Vec<ObjectId>,
    births: Vec<u64>,
    sizes: Vec<u32>,
    deaths: Vec<u64>,
}

impl CompiledTrace {
    /// Sentinel death clock for "lives to the end of the trace" in the
    /// raw `deaths` column — the `DTBCTC01` on-disk convention. No real
    /// allocation clock reaches it.
    pub const NO_DEATH: u64 = u64::MAX;

    /// Builds a compiled trace directly from per-object records.
    ///
    /// The records are taken as given — call
    /// [`validate`](CompiledTrace::validate) to check the structural
    /// invariants [`Trace::compile`] would have established.
    pub fn from_lives(
        meta: TraceMeta,
        end: VirtualTime,
        lives: impl IntoIterator<Item = ObjectLife>,
    ) -> CompiledTrace {
        let mut out = CompiledTrace {
            meta,
            end,
            ids: Vec::new(),
            births: Vec::new(),
            sizes: Vec::new(),
            deaths: Vec::new(),
        };
        for life in lives {
            out.ids.push(life.id);
            out.births.push(life.birth.as_u64());
            out.sizes.push(life.size);
            out.deaths
                .push(life.death.map_or(CompiledTrace::NO_DEATH, |d| d.as_u64()));
        }
        out
    }

    /// Number of object records.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the trace allocated nothing.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The record at position `i`, materialized as an [`ObjectLife`].
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn life(&self, i: usize) -> ObjectLife {
        ObjectLife {
            id: self.ids[i],
            birth: VirtualTime::from_bytes(self.births[i]),
            size: self.sizes[i],
            death: (self.deaths[i] != CompiledTrace::NO_DEATH)
                .then(|| VirtualTime::from_bytes(self.deaths[i])),
        }
    }

    /// Iterates the records in birth order, materializing each as an
    /// [`ObjectLife`].
    pub fn lives(&self) -> impl ExactSizeIterator<Item = ObjectLife> + '_ {
        (0..self.len()).map(|i| self.life(i))
    }

    /// Object ids, by record position.
    pub fn ids(&self) -> &[ObjectId] {
        &self.ids
    }

    /// Birth clocks (raw `u64` bytes), strictly increasing by record
    /// position.
    pub fn births(&self) -> &[u64] {
        &self.births
    }

    /// Object sizes in bytes, by record position.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Death clocks (raw `u64` bytes; [`CompiledTrace::NO_DEATH`] = lives
    /// to trace end), by record position.
    pub fn deaths(&self) -> &[u64] {
        &self.deaths
    }

    /// Overwrites the death time of record `i` (fault injection).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn set_death(&mut self, i: usize, death: Option<VirtualTime>) {
        self.deaths[i] = death.map_or(CompiledTrace::NO_DEATH, |d| d.as_u64());
    }

    /// Swaps records `i` and `j` wholesale (fault injection; breaks the
    /// birth-order invariant unless the records are equal).
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn swap_records(&mut self, i: usize, j: usize) {
        self.ids.swap(i, j);
        self.births.swap(i, j);
        self.sizes.swap(i, j);
        self.deaths.swap(i, j);
    }

    /// Reverses the record order (fault injection; breaks the birth-order
    /// invariant for traces with at least two records).
    pub fn reverse_records(&mut self) {
        self.ids.reverse();
        self.births.reverse();
        self.sizes.reverse();
        self.deaths.reverse();
    }

    /// Total bytes allocated.
    pub fn total_allocated(&self) -> Bytes {
        Bytes::new(self.end.as_u64())
    }

    /// Live bytes at allocation time `at` (O(n); for bulk queries use the
    /// simulator's oracle heap, which answers incrementally).
    pub fn live_bytes_at(&self, at: VirtualTime) -> Bytes {
        self.lives()
            .filter(|l| l.is_live_at(at))
            .map(|l| l.bytes())
            .sum()
    }

    /// Verifies the birth-ordering invariant; generators and deserializers
    /// call this in tests.
    pub fn births_strictly_increasing(&self) -> bool {
        self.births.windows(2).all(|w| w[0] < w[1])
    }

    /// Checks the structural invariants every [`Trace::compile`] output
    /// satisfies: births strictly increasing, no death before birth, and
    /// object sizes summing exactly to the end-of-trace clock.
    ///
    /// [`Trace::compile`] establishes these by construction; this check
    /// exists for compiled traces built or mutated by other means (hand
    /// construction, fault injection, a future direct deserializer). The
    /// simulation engine refuses traces that fail it.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`TraceError`].
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut prev_birth: Option<VirtualTime> = None;
        let mut sum: u64 = 0;
        for (pos, life) in self.lives().enumerate() {
            if life.size == 0 {
                return Err(TraceError::ZeroSizedAlloc { id: life.id, pos });
            }
            if prev_birth.is_some_and(|p| life.birth <= p) {
                return Err(TraceError::NonMonotoneBirth { id: life.id, pos });
            }
            prev_birth = Some(life.birth);
            if life.death.is_some_and(|d| d < life.birth) {
                return Err(TraceError::DeathBeforeBirth { id: life.id, pos });
            }
            sum = sum
                .checked_add(life.size as u64)
                .ok_or(TraceError::ClockOverflow { id: life.id, pos })?;
        }
        if sum != self.end.as_u64() {
            return Err(TraceError::TotalsMismatch {
                sum,
                end: self.end.as_u64(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(id: u64, size: u32) -> Event {
        Event::Alloc {
            id: ObjectId(id),
            size,
        }
    }

    fn free(id: u64) -> Event {
        Event::Free { id: ObjectId(id) }
    }

    fn trace(events: Vec<Event>) -> Trace {
        Trace {
            meta: TraceMeta::named("test"),
            events,
        }
    }

    #[test]
    fn clock_advances_on_alloc_only() {
        let t = trace(vec![alloc(0, 10), free(0), alloc(1, 5)]);
        let c = t.compile().unwrap();
        assert_eq!(c.end, VirtualTime::from_bytes(15));
        assert_eq!(c.life(0).birth, VirtualTime::from_bytes(10));
        assert_eq!(c.life(0).death, Some(VirtualTime::from_bytes(10)));
        assert_eq!(c.life(1).birth, VirtualTime::from_bytes(15));
        assert_eq!(c.life(1).death, None);
    }

    #[test]
    fn births_are_strictly_increasing() {
        let t = trace(vec![alloc(0, 1), alloc(1, 1), alloc(2, 1)]);
        let c = t.compile().unwrap();
        assert!(c.births_strictly_increasing());
    }

    #[test]
    fn liveness_interval_is_half_open() {
        let t = trace(vec![alloc(0, 10), alloc(1, 10), free(0)]);
        let c = t.compile().unwrap();
        let obj = c.life(0);
        assert!(!obj.is_live_at(VirtualTime::from_bytes(9))); // before birth
        assert!(obj.is_live_at(VirtualTime::from_bytes(10))); // at birth
        assert!(obj.is_live_at(VirtualTime::from_bytes(19))); // before death (death=20)
        assert!(!obj.is_live_at(VirtualTime::from_bytes(20))); // at death
        assert!(obj.is_dead_at(VirtualTime::from_bytes(20)));
        assert!(!obj.is_dead_at(VirtualTime::from_bytes(19)));
    }

    #[test]
    fn live_bytes_at_counts_only_live() {
        let t = trace(vec![alloc(0, 10), alloc(1, 20), free(0), alloc(2, 5)]);
        let c = t.compile().unwrap();
        // At clock 29, only object 0 has been born (object 1 is born at 30).
        assert_eq!(c.live_bytes_at(VirtualTime::from_bytes(29)), Bytes::new(10));
        // At clock 30, object 0 is dead (death = 30) and object 1 is live.
        assert_eq!(c.live_bytes_at(VirtualTime::from_bytes(30)), Bytes::new(20));
        // After object 0's death (at clock 30) and object 2's birth (clock 35).
        assert_eq!(c.live_bytes_at(VirtualTime::from_bytes(35)), Bytes::new(25));
    }

    #[test]
    fn duplicate_alloc_rejected() {
        let t = trace(vec![alloc(0, 1), alloc(0, 1)]);
        assert_eq!(
            t.compile(),
            Err(TraceError::DuplicateAlloc {
                id: ObjectId(0),
                pos: 1
            })
        );
    }

    #[test]
    fn stray_free_rejected() {
        let t = trace(vec![free(3)]);
        assert!(matches!(
            t.compile(),
            Err(TraceError::FreeWithoutAlloc { .. })
        ));
    }

    #[test]
    fn double_free_rejected() {
        let t = trace(vec![alloc(0, 1), free(0), free(0)]);
        assert_eq!(
            t.compile(),
            Err(TraceError::DoubleFree {
                id: ObjectId(0),
                pos: 2
            })
        );
    }

    #[test]
    fn zero_sized_alloc_rejected() {
        let t = trace(vec![alloc(0, 0)]);
        assert!(matches!(
            t.compile(),
            Err(TraceError::ZeroSizedAlloc { .. })
        ));
    }

    #[test]
    fn totals_match_between_trace_and_compiled() {
        let t = trace(vec![alloc(0, 7), alloc(1, 13), free(1)]);
        assert_eq!(t.total_allocated(), Bytes::new(20));
        assert_eq!(t.object_count(), 2);
        let c = t.compile().unwrap();
        assert_eq!(c.total_allocated(), Bytes::new(20));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = TraceError::DoubleFree {
            id: ObjectId(9),
            pos: 4,
        };
        assert_eq!(err.to_string(), "object #9 freed twice (event 4)");
    }

    #[test]
    fn validate_agrees_with_compile() {
        let cases = vec![
            trace(vec![alloc(0, 10), free(0), alloc(1, 5)]),
            trace(vec![alloc(0, 1), alloc(0, 1)]),
            trace(vec![free(3)]),
            trace(vec![alloc(0, 1), free(0), free(0)]),
            trace(vec![alloc(0, 0)]),
            trace(vec![]),
        ];
        for t in cases {
            assert_eq!(
                t.validate(),
                t.compile().map(|_| ()),
                "validate and compile disagree on {:?}",
                t.events
            );
        }
    }

    #[test]
    fn compiled_validate_accepts_compile_output() {
        let t = trace(vec![alloc(0, 10), alloc(1, 20), free(0), alloc(2, 5)]);
        assert_eq!(t.compile().unwrap().validate(), Ok(()));
    }

    #[test]
    fn compiled_validate_catches_out_of_order_births() {
        let mut c = trace(vec![alloc(0, 10), alloc(1, 20)]).compile().unwrap();
        c.swap_records(0, 1);
        assert!(matches!(
            c.validate(),
            Err(TraceError::NonMonotoneBirth { .. })
        ));
    }

    #[test]
    fn compiled_validate_catches_death_before_birth() {
        let mut c = trace(vec![alloc(0, 10), alloc(1, 20)]).compile().unwrap();
        c.set_death(1, Some(VirtualTime::from_bytes(5)));
        assert_eq!(
            c.validate(),
            Err(TraceError::DeathBeforeBirth {
                id: ObjectId(1),
                pos: 1
            })
        );
    }

    #[test]
    fn compiled_validate_catches_totals_mismatch() {
        let mut c = trace(vec![alloc(0, 10)]).compile().unwrap();
        c.end = VirtualTime::from_bytes(99);
        assert_eq!(
            c.validate(),
            Err(TraceError::TotalsMismatch { sum: 10, end: 99 })
        );
    }
}
