//! Deterministic trace corruptors for fault-injection tests.
//!
//! The fault-injection harness (`dtb-sim::fault`, the
//! `fault_injection` integration suite) needs malformed inputs that are
//! *reproducibly* malformed: truncated files, flipped bytes, reordered
//! event streams, impossible lifetimes. Each corruptor here is a pure
//! function of its arguments — no randomness — so a failing test names its
//! exact input.
//!
//! Corruptors intentionally produce inputs that the validation layer
//! ([`Trace::validate`], [`CompiledTrace::validate`], the format decoder)
//! must reject or, for byte flips that happen to decode, survive. They
//! live in the library (not a test module) so every crate's tests share
//! one vocabulary of faults.

use crate::event::{CompiledTrace, Event, Trace};
use crate::format;

/// Serializes `trace` and cuts the encoding off after `keep` bytes.
///
/// A truncation inside the header yields `FormatError::BadMagic`; inside
/// the event stream, `FormatError::Truncated`.
pub fn truncated_encoding(trace: &Trace, keep: usize) -> Vec<u8> {
    let mut data = format::encode(trace).to_vec();
    data.truncate(keep);
    data
}

/// Serializes `trace` and XOR-flips the byte at `index % len` with `mask`.
///
/// A `mask` of zero is bumped to `0xFF` so the corruption is never a
/// no-op. The result may fail to decode, decode to a semantically invalid
/// trace, or decode to a different-but-valid trace — the parser's contract
/// is only that it never panics.
pub fn flipped_byte_encoding(trace: &Trace, index: usize, mask: u8) -> Vec<u8> {
    let mut data = format::encode(trace).to_vec();
    if !data.is_empty() {
        let i = index % data.len();
        data[i] ^= if mask == 0 { 0xFF } else { mask };
    }
    data
}

/// Swaps two events, typically moving a free ahead of its allocation.
///
/// Swapping an alloc/free pair produces a `FreeWithoutAlloc` (the free now
/// precedes the allocation); swapping two allocs merely reorders births.
/// Indices are taken modulo the event count; an empty trace is returned
/// unchanged.
pub fn swapped_events(trace: &Trace, i: usize, j: usize) -> Trace {
    let mut out = trace.clone();
    let n = out.events.len();
    if n > 1 {
        out.events.swap(i % n, j % n);
    }
    out
}

/// Appends a free for an id that is never allocated.
pub fn stray_free(trace: &Trace, id: crate::event::ObjectId) -> Trace {
    let mut out = trace.clone();
    out.events.push(Event::Free { id });
    out
}

/// Rewrites one compiled record so the object dies before it is born.
///
/// This cannot be expressed as an event stream (frees always follow
/// allocs in stream order), so it targets the compiled form directly —
/// the shape a bad deserializer or a buggy transformation could hand the
/// simulator. `CompiledTrace::validate` reports it as `DeathBeforeBirth`.
pub fn death_before_birth(compiled: &CompiledTrace, index: usize) -> CompiledTrace {
    let mut out = compiled.clone();
    let n = out.len();
    if n > 0 {
        let life = out.life(index % n);
        out.set_death(
            index % n,
            Some(
                life.birth
                    .rewind(dtb_core::time::Bytes::new(1).max(life.bytes())),
            ),
        );
    }
    out
}

/// Reverses the compiled records, breaking the birth-order invariant.
///
/// `CompiledTrace::validate` reports it as `NonMonotoneBirth` (for traces
/// with at least two objects).
pub fn reversed_births(compiled: &CompiledTrace) -> CompiledTrace {
    let mut out = compiled.clone();
    out.reverse_records();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::{ObjectId, TraceError};
    use crate::format::FormatError;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("corrupt-sample");
        for _ in 0..10 {
            let id = b.alloc(64);
            b.free(id);
        }
        b.finish()
    }

    #[test]
    fn truncation_is_detected_by_the_decoder() {
        let t = sample();
        let full = format::encode(&t);
        for keep in [0, 4, full.len() / 2, full.len() - 1] {
            let data = truncated_encoding(&t, keep);
            assert!(
                matches!(
                    format::decode(&data),
                    Err(FormatError::Truncated | FormatError::BadMagic)
                ),
                "keep={keep} should not decode"
            );
        }
    }

    #[test]
    fn byte_flip_never_yields_an_unvalidated_trace() {
        let t = sample();
        let len = format::encode(&t).len();
        for i in 0..len {
            let data = flipped_byte_encoding(&t, i, 0x01);
            if let Ok(decoded) = format::decode(&data) {
                // Decoding succeeded: validation must still be decisive
                // (no panic), though either verdict is acceptable.
                let _ = decoded.validate();
            }
        }
    }

    #[test]
    fn swapping_free_before_alloc_invalidates() {
        let t = sample();
        // Events alternate alloc/free; swapping 0 and 1 puts object 0's
        // free first.
        let bad = swapped_events(&t, 0, 1);
        assert!(matches!(
            bad.validate(),
            Err(TraceError::FreeWithoutAlloc { .. })
        ));
    }

    #[test]
    fn stray_free_invalidates() {
        let bad = stray_free(&sample(), ObjectId(999));
        assert!(matches!(
            bad.validate(),
            Err(TraceError::FreeWithoutAlloc { .. })
        ));
    }

    #[test]
    fn death_before_birth_caught_by_compiled_validate() {
        let c = sample().compile().unwrap();
        let bad = death_before_birth(&c, 3);
        assert!(matches!(
            bad.validate(),
            Err(TraceError::DeathBeforeBirth { .. })
        ));
    }

    #[test]
    fn reversed_births_caught_by_compiled_validate() {
        let c = sample().compile().unwrap();
        let bad = reversed_births(&c);
        assert!(matches!(
            bad.validate(),
            Err(TraceError::NonMonotoneBirth { .. })
        ));
    }
}
