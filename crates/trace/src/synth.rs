//! Synthetic workload generation.
//!
//! A [`WorkloadSpec`] describes a program's allocation behaviour as a
//! mixture of object **classes**, each with a byte-weight, a size
//! distribution, and a lifetime distribution, plus an initial permanent
//! data structure and an optional phase period for pass-structured
//! programs. [`WorkloadSpec::generate`] expands the spec into a concrete
//! [`Trace`] deterministically from the spec's seed.
//!
//! The decomposition mirrors how the paper's programs use memory:
//!
//! * *initial permanent* — data structures built during startup that live
//!   to program end (SIS's circuit netlist, GhostScript's interpreter
//!   state);
//! * an *immortal ramp* — a class with [`LifetimeDist::Immortal`] whose
//!   allocations accumulate for the whole run (growing caches, results);
//! * *short-lived churn* — the "most objects die young" bulk;
//! * *medium-lived* objects that survive one or more scavenges and then
//!   die — the population that becomes tenured garbage under eager
//!   promotion (`FIXED1`) and that the DTB collectors untenure;
//! * *phase-local* objects dying in bulk at phase boundaries (Espresso's
//!   per-pass structures).

use crate::event::{Event, ObjectId, Trace, TraceMeta};
use crate::lifetime::{LifetimeDist, SizeDist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One object class in a workload mixture.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Class name, for reports (`"short"`, `"medium"`, `"immortal-ramp"`…).
    pub name: String,
    /// Fraction of the workload's allocated **bytes** drawn from this
    /// class. Fractions across classes must sum to ~1.
    pub byte_fraction: f64,
    /// Object size distribution.
    pub size: SizeDist,
    /// Object lifetime distribution.
    pub lifetime: LifetimeDist,
}

impl ClassSpec {
    /// Creates a class.
    pub fn new(
        name: impl Into<String>,
        byte_fraction: f64,
        size: SizeDist,
        lifetime: LifetimeDist,
    ) -> ClassSpec {
        ClassSpec {
            name: name.into(),
            byte_fraction,
            size,
            lifetime,
        }
    }
}

/// A complete synthetic-workload description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name, e.g. `"GHOST(1)"`.
    pub name: String,
    /// Human description (Table 5 analogue).
    pub description: String,
    /// Mutator execution time in seconds (Table 6), carried into the trace
    /// metadata for CPU-overhead computation.
    pub exec_seconds: f64,
    /// Total bytes to allocate, including the initial permanent data.
    pub total_alloc: u64,
    /// Bytes of immortal data allocated during startup, before the class
    /// mixture begins.
    pub initial_permanent: u64,
    /// Size of each initial-permanent object.
    pub initial_object_size: u32,
    /// The class mixture for steady-state allocation.
    pub classes: Vec<ClassSpec>,
    /// Phase period in allocation bytes, for [`LifetimeDist::PhaseLocal`]
    /// classes. Required when any class is phase-local.
    pub phase_period: Option<u64>,
    /// RNG seed: generation is fully deterministic given the spec.
    pub seed: u64,
}

/// A malformed workload description.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// Class byte-fractions do not sum to ~1.
    BadFractions(f64),
    /// A class has a negative byte-fraction.
    NegativeFraction(String),
    /// A phase-local class exists but no phase period is set.
    MissingPhasePeriod,
    /// No classes and no initial permanent data: nothing to generate.
    Empty,
    /// `initial_permanent` exceeds `total_alloc`.
    PermanentExceedsTotal,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::BadFractions(s) => {
                write!(f, "class byte fractions sum to {s}, expected 1.0")
            }
            SpecError::NegativeFraction(name) => {
                write!(f, "class {name} has a negative byte fraction")
            }
            SpecError::MissingPhasePeriod => {
                write!(f, "phase-local class present but phase_period unset")
            }
            SpecError::Empty => write!(f, "workload allocates nothing"),
            SpecError::PermanentExceedsTotal => {
                write!(f, "initial permanent data exceeds total allocation")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl WorkloadSpec {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.total_alloc == 0 {
            return Err(SpecError::Empty);
        }
        if self.initial_permanent > self.total_alloc {
            return Err(SpecError::PermanentExceedsTotal);
        }
        if self.classes.is_empty() && self.initial_permanent < self.total_alloc {
            return Err(SpecError::Empty);
        }
        let mut sum = 0.0;
        for c in &self.classes {
            if c.byte_fraction < 0.0 {
                return Err(SpecError::NegativeFraction(c.name.clone()));
            }
            if c.lifetime.is_phase_local() && self.phase_period.is_none() {
                return Err(SpecError::MissingPhasePeriod);
            }
            sum += c.byte_fraction;
        }
        if !self.classes.is_empty() && (sum - 1.0).abs() > 1e-6 {
            return Err(SpecError::BadFractions(sum));
        }
        Ok(())
    }

    /// Expands the spec into a concrete event trace.
    ///
    /// Deterministic: the same spec (including seed) always yields the
    /// same trace.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec fails [`WorkloadSpec::validate`].
    pub fn generate(&self) -> Result<Trace, SpecError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events: Vec<Event> = Vec::with_capacity((self.total_alloc / 48).max(16) as usize);
        let mut next_id: u64 = 0;
        let mut clock: u64 = 0;
        // Pending deaths: min-heap of (death clock, id).
        let mut deaths: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();

        // Startup: the initial permanent structure.
        while clock < self.initial_permanent {
            let size = self
                .initial_object_size
                .min((self.initial_permanent - clock).max(1) as u32)
                .max(1);
            events.push(Event::Alloc {
                id: ObjectId(next_id),
                size,
            });
            next_id += 1;
            clock += size as u64;
        }

        // Steady state: the class mixture. Classes are chosen per-object
        // with probability proportional to byte_fraction / mean_size so
        // byte fractions come out as specified.
        let weights: Vec<f64> = self
            .classes
            .iter()
            .map(|c| c.byte_fraction / c.size.mean().max(1.0))
            .collect();
        let weight_total: f64 = weights.iter().sum();

        while clock < self.total_alloc {
            // Flush deaths that have come due.
            while let Some(&Reverse((death, id))) = deaths.peek() {
                if death > clock {
                    break;
                }
                deaths.pop();
                events.push(Event::Free { id: ObjectId(id) });
            }

            let class = if weight_total > 0.0 {
                let mut pick = rng.gen_range(0.0..weight_total);
                let mut chosen = self.classes.len() - 1;
                for (i, w) in weights.iter().enumerate() {
                    if pick < *w {
                        chosen = i;
                        break;
                    }
                    pick -= w;
                }
                &self.classes[chosen]
            } else {
                break; // all-permanent workload already emitted above
            };

            let size = class.size.sample(&mut rng);
            events.push(Event::Alloc {
                id: ObjectId(next_id),
                size,
            });
            clock += size as u64;
            let birth = clock;

            let death = if class.lifetime.is_phase_local() {
                let period = self.phase_period.expect("validated above");
                // Dies at the end of the phase it was born in.
                Some((birth / period + 1) * period)
            } else {
                class.lifetime.sample(&mut rng).map(|l| birth + l)
            };
            if let Some(d) = death {
                deaths.push(Reverse((d, next_id)));
            }
            next_id += 1;
        }
        // Objects whose deaths fall beyond the end of the trace stay live:
        // emit no Free for them, like a real trace cut at program exit.
        while let Some(&Reverse((death, id))) = deaths.peek() {
            if death > clock {
                break;
            }
            deaths.pop();
            events.push(Event::Free { id: ObjectId(id) });
        }

        Ok(Trace {
            meta: TraceMeta {
                name: self.name.clone(),
                description: self.description.clone(),
                exec_seconds: self.exec_seconds,
            },
            events,
        })
    }

    /// Analytic prediction of the steady-state live storage contributed by
    /// churn classes (Little's law on the allocation clock:
    /// `live ≈ Σ byte_fraction · mean_lifetime`), used for calibration.
    pub fn predicted_churn_live(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| {
                let mean_life = if c.lifetime.is_phase_local() {
                    self.phase_period.unwrap_or(0) as f64 / 2.0
                } else {
                    c.lifetime.mean().unwrap_or(0.0)
                };
                c.byte_fraction * mean_life
            })
            .sum()
    }

    /// Analytic prediction of immortal bytes at end of run: the initial
    /// permanent data plus the immortal ramp.
    pub fn predicted_immortal_end(&self) -> f64 {
        let ramp_fraction: f64 = self
            .classes
            .iter()
            .filter(|c| matches!(c.lifetime, LifetimeDist::Immortal))
            .map(|c| c.byte_fraction)
            .sum();
        self.initial_permanent as f64
            + ramp_fraction * (self.total_alloc - self.initial_permanent) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_core::time::VirtualTime;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "unit".into(),
            description: "test workload".into(),
            exec_seconds: 1.0,
            total_alloc: 1_000_000,
            initial_permanent: 50_000,
            initial_object_size: 1000,
            classes: vec![
                ClassSpec::new(
                    "short",
                    0.9,
                    SizeDist::Uniform { min: 16, max: 128 },
                    LifetimeDist::Exponential { mean: 4_000.0 },
                ),
                ClassSpec::new(
                    "immortal",
                    0.1,
                    SizeDist::Fixed(256),
                    LifetimeDist::Immortal,
                ),
            ],
            phase_period: None,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate().unwrap();
        let b = spec().generate().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec().generate().unwrap();
        let mut s = spec();
        s.seed = 8;
        let b = s.generate().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn total_allocation_hits_target_within_one_object() {
        let t = spec().generate().unwrap();
        let total = t.total_allocated().as_u64();
        assert!(total >= 1_000_000);
        assert!(total < 1_000_000 + 4096, "overshoot: {total}");
    }

    #[test]
    fn trace_compiles_cleanly() {
        let t = spec().generate().unwrap();
        let c = t.compile().expect("well-formed");
        assert!(c.births_strictly_increasing());
    }

    #[test]
    fn initial_permanent_objects_never_die() {
        let t = spec().generate().unwrap();
        let c = t.compile().unwrap();
        for life in c.lives().take_while(|l| l.birth.as_u64() <= 50_000) {
            assert_eq!(life.death, None, "initial object {:?} died", life.id);
        }
    }

    #[test]
    fn byte_fractions_approximately_respected() {
        let t = spec().generate().unwrap();
        let c = t.compile().unwrap();
        let immortal_after_startup: u64 = c
            .lives()
            .filter(|l| l.birth.as_u64() > 50_000 && l.death.is_none())
            .map(|l| l.size as u64)
            .sum();
        let steady = 1_000_000 - 50_000;
        let frac = immortal_after_startup as f64 / steady as f64;
        // Immortal class is 10% of bytes; exponential stragglers still
        // alive at the end inflate it slightly.
        assert!((0.08..0.14).contains(&frac), "immortal fraction {frac:.3}");
    }

    #[test]
    fn phase_local_objects_die_at_phase_ends() {
        let s = WorkloadSpec {
            name: "phases".into(),
            description: String::new(),
            exec_seconds: 1.0,
            total_alloc: 500_000,
            initial_permanent: 0,
            initial_object_size: 1,
            classes: vec![ClassSpec::new(
                "pass",
                1.0,
                SizeDist::Fixed(100),
                LifetimeDist::PhaseLocal,
            )],
            phase_period: Some(100_000),
            seed: 1,
        };
        let c = s.generate().unwrap().compile().unwrap();
        for l in c.lives() {
            if let Some(d) = l.death {
                let death_phase_end = (l.birth.as_u64() / 100_000 + 1) * 100_000;
                // Free events are emitted at the first allocation at or
                // after the due time, so observed death ≥ scheduled death,
                // within one object size.
                assert!(
                    d.as_u64() >= death_phase_end && d.as_u64() < death_phase_end + 200,
                    "object born {:?} died {:?}",
                    l.birth,
                    d
                );
            }
        }
    }

    #[test]
    fn live_at_end_matches_immortal_prediction_roughly() {
        let s = spec();
        let c = s.generate().unwrap().compile().unwrap();
        let live_end = c.live_bytes_at(c.end).as_u64() as f64;
        let predicted = s.predicted_immortal_end() + s.predicted_churn_live();
        let err = (live_end - predicted).abs() / predicted;
        assert!(err < 0.2, "live_end {live_end} vs predicted {predicted}");
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        let mut s = spec();
        s.classes[0].byte_fraction = 0.5; // sums to 0.6
        assert!(matches!(s.validate(), Err(SpecError::BadFractions(_))));
    }

    #[test]
    fn validation_rejects_missing_phase_period() {
        let mut s = spec();
        s.classes[0].lifetime = LifetimeDist::PhaseLocal;
        s.phase_period = None;
        assert_eq!(s.validate(), Err(SpecError::MissingPhasePeriod));
    }

    #[test]
    fn validation_rejects_empty_workload() {
        let s = WorkloadSpec {
            name: "empty".into(),
            description: String::new(),
            exec_seconds: 1.0,
            total_alloc: 0,
            initial_permanent: 0,
            initial_object_size: 1,
            classes: vec![],
            phase_period: None,
            seed: 0,
        };
        assert_eq!(s.validate(), Err(SpecError::Empty));
    }

    #[test]
    fn validation_rejects_permanent_exceeding_total() {
        let mut s = spec();
        s.initial_permanent = s.total_alloc + 1;
        assert_eq!(s.validate(), Err(SpecError::PermanentExceedsTotal));
    }

    #[test]
    fn all_permanent_workload_generates() {
        let s = WorkloadSpec {
            name: "perm".into(),
            description: String::new(),
            exec_seconds: 1.0,
            total_alloc: 10_000,
            initial_permanent: 10_000,
            initial_object_size: 100,
            classes: vec![],
            phase_period: None,
            seed: 0,
        };
        let c = s.generate().unwrap().compile().unwrap();
        assert_eq!(c.total_allocated().as_u64(), 10_000);
        assert_eq!(
            c.live_bytes_at(VirtualTime::from_bytes(10_000)).as_u64(),
            10_000
        );
    }
}
