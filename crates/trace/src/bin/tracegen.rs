//! `tracegen`: generate, inspect, and analyze workload trace files.
//!
//! ```text
//! tracegen gen <PROGRAM> <OUT.dtbtrc>            generate a preset workload trace
//! tracegen info <FILE.dtbtrc>                    print trace statistics
//! tracegen survival <FILE.dtbtrc>                print the survival curve
//! tracegen compile <IN.dtbtrc> <OUT_DIR>         compile to a one-shard DTBCTC01 store
//! tracegen shard <IN.dtbtrc> <OUT_DIR> <STRIDE>  compile to a store with STRIDE records/shard
//! tracegen verify <STORE_DIR>                    re-check a DTBCTC01 store's checksums
//! tracegen list                                  list the preset workloads
//! ```
//!
//! `compile` and `shard` run the streaming two-pass converter: the event
//! file is read record-at-a-time twice (deaths resolve on the first
//! pass), so event files larger than RAM convert in O(objects-index)
//! memory and the resulting store replays through the simulator in
//! O(live set) memory.

use dtb_trace::analysis::{Demographics, SurvivalCurve};
use dtb_trace::ctc::{convert_trace_file, verify_store};
use dtb_trace::io::{read_trace, write_trace};
use dtb_trace::programs::Program;
use dtb_trace::stats::TraceStats;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracegen gen <PROGRAM> <OUT.dtbtrc>\n  tracegen info <FILE.dtbtrc>\n  \
         tracegen survival <FILE.dtbtrc>\n  tracegen compile <IN.dtbtrc> <OUT_DIR>\n  \
         tracegen shard <IN.dtbtrc> <OUT_DIR> <RECORDS_PER_SHARD>\n  \
         tracegen verify <STORE_DIR>\n  tracegen list\n\
         \n  global: --events <PATH>  capture telemetry (JSON lines; .bin = binary framing)"
    );
    ExitCode::from(2)
}

/// Runs the streaming converter and reports the resulting store shape.
fn convert(src: &str, dir: &str, records_per_shard: u64) -> ExitCode {
    match convert_trace_file(src, dir, records_per_shard) {
        Ok(manifest) => {
            println!(
                "wrote {dir} ({} records, {} shard{})",
                manifest.total_records,
                manifest.shards.len(),
                if manifest.shards.len() == 1 { "" } else { "s" },
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot convert {src}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn find_program(label: &str) -> Option<Program> {
    Program::ALL
        .into_iter()
        .find(|p| p.label().eq_ignore_ascii_case(label))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global `--events <path>`: install the observability capture sink
    // before the subcommand runs, so anything the tool emits (e.g.
    // `trace_synthesized` from `gen`) lands in the file.
    let mut capture = None;
    if let Some(at) = args.iter().position(|a| a == "--events") {
        if at + 1 >= args.len() {
            eprintln!("--events needs a path");
            return usage();
        }
        let path = std::path::PathBuf::from(args.remove(at + 1));
        args.remove(at);
        match dtb_obs::FileSink::create(&path) {
            Ok(sink) => capture = Some(dtb_obs::install(std::sync::Arc::new(sink))),
            Err(e) => {
                eprintln!("cannot capture events to {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let _capture = capture;
    match args.first().map(String::as_str) {
        Some("list") => {
            for p in Program::ALL {
                let prof = p.paper_profile();
                println!(
                    "{:12} {:>6.1} MB total, {:>4} collections — {}",
                    p.label(),
                    prof.total_alloc as f64 / (1024.0 * 1024.0),
                    prof.collections,
                    p.spec().description,
                );
            }
            ExitCode::SUCCESS
        }
        Some("gen") if args.len() == 3 => {
            let Some(program) = find_program(&args[1]) else {
                eprintln!("unknown program {:?}; try `tracegen list`", args[1]);
                return ExitCode::FAILURE;
            };
            let trace = program.generate();
            if let Err(e) = write_trace(&args[2], &trace) {
                eprintln!("cannot write {}: {e}", args[2]);
                return ExitCode::FAILURE;
            }
            dtb_obs::emit(|| dtb_obs::Event::TraceSynthesized {
                name: program.label().to_string(),
                events: trace.events.len() as u64,
                allocated: TraceStats::compute(&trace).total_allocated.as_u64(),
            });
            dtb_obs::flush();
            println!(
                "wrote {} ({} events, {} objects)",
                args[2],
                trace.events.len(),
                trace.object_count()
            );
            ExitCode::SUCCESS
        }
        Some("info") if args.len() == 2 => {
            let trace = match read_trace(&args[1]) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let stats = TraceStats::compute(&trace);
            println!("name:            {}", stats.name);
            println!("total allocated: {} bytes", stats.total_allocated);
            println!("objects:         {}", stats.object_count);
            println!("mean size:       {:.1} bytes", stats.mean_object_size);
            println!(
                "live mean/max:   {:.0} / {:.0} KB",
                stats.live_mean.as_kb(),
                stats.live_max.as_kb()
            );
            println!("exec time:       {} s", stats.exec_seconds);
            println!("collections@1MB: {}", stats.collections_at_1mb);
            let compiled = match trace.compile() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("trace file inconsistent: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let demo = Demographics::compute(&compiled);
            println!(
                "demographics:    {:.1}% young, {:.1}% medium, {:.1}% immortal",
                demo.young_death_fraction() * 100.0,
                demo.medium_lived.as_u64() as f64 / demo.total.as_u64() as f64 * 100.0,
                demo.immortal.as_u64() as f64 / demo.total.as_u64() as f64 * 100.0,
            );
            ExitCode::SUCCESS
        }
        Some("compile") if args.len() == 3 => convert(&args[1], &args[2], u64::MAX),
        Some("shard") if args.len() == 4 => {
            let Ok(stride) = args[3].parse::<u64>() else {
                eprintln!("records-per-shard must be an integer, got {:?}", args[3]);
                return ExitCode::FAILURE;
            };
            if stride == 0 {
                eprintln!("records-per-shard must be at least 1");
                return ExitCode::FAILURE;
            }
            convert(&args[1], &args[2], stride)
        }
        Some("verify") if args.len() == 2 => {
            let report = match verify_store(&args[1]) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cannot verify {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            for shard in &report.shards {
                match &shard.error {
                    None => {
                        println!("{}: OK ({} records)", shard.path.display(), shard.records);
                    }
                    Some(e) => {
                        println!("{}: FAILED", shard.path.display());
                        eprintln!("{e}");
                    }
                }
            }
            if report.is_ok() {
                println!(
                    "store ok: {} records across {} shard{}",
                    report.manifest.total_records,
                    report.shards.len(),
                    if report.shards.len() == 1 { "" } else { "s" },
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "{} of {} shards failed verification",
                    report.bad_shards().count(),
                    report.shards.len()
                );
                ExitCode::FAILURE
            }
        }
        Some("survival") if args.len() == 2 => {
            let trace = match read_trace(&args[1]) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let compiled = match trace.compile() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("trace file inconsistent: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let curve = SurvivalCurve::at_paper_checkpoints(&compiled);
            println!("age(bytes),survival");
            for (age, s) in curve.ages.iter().zip(&curve.survival) {
                println!("{age},{s:.6}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
