//! `tracegen`: generate, inspect, and analyze workload trace files.
//!
//! ```text
//! tracegen gen <PROGRAM> <OUT.dtbtrc>    generate a preset workload trace
//! tracegen info <FILE.dtbtrc>            print trace statistics
//! tracegen survival <FILE.dtbtrc>        print the survival curve
//! tracegen list                          list the preset workloads
//! ```

use dtb_trace::analysis::{Demographics, SurvivalCurve};
use dtb_trace::io::{read_trace, write_trace};
use dtb_trace::programs::Program;
use dtb_trace::stats::TraceStats;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracegen gen <PROGRAM> <OUT.dtbtrc>\n  tracegen info <FILE.dtbtrc>\n  \
         tracegen survival <FILE.dtbtrc>\n  tracegen list"
    );
    ExitCode::from(2)
}

fn find_program(label: &str) -> Option<Program> {
    Program::ALL
        .into_iter()
        .find(|p| p.label().eq_ignore_ascii_case(label))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for p in Program::ALL {
                let prof = p.paper_profile();
                println!(
                    "{:12} {:>6.1} MB total, {:>4} collections — {}",
                    p.label(),
                    prof.total_alloc as f64 / (1024.0 * 1024.0),
                    prof.collections,
                    p.spec().description,
                );
            }
            ExitCode::SUCCESS
        }
        Some("gen") if args.len() == 3 => {
            let Some(program) = find_program(&args[1]) else {
                eprintln!("unknown program {:?}; try `tracegen list`", args[1]);
                return ExitCode::FAILURE;
            };
            let trace = program.generate();
            if let Err(e) = write_trace(&args[2], &trace) {
                eprintln!("cannot write {}: {e}", args[2]);
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} ({} events, {} objects)",
                args[2],
                trace.events.len(),
                trace.object_count()
            );
            ExitCode::SUCCESS
        }
        Some("info") if args.len() == 2 => {
            let trace = match read_trace(&args[1]) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let stats = TraceStats::compute(&trace);
            println!("name:            {}", stats.name);
            println!("total allocated: {} bytes", stats.total_allocated);
            println!("objects:         {}", stats.object_count);
            println!("mean size:       {:.1} bytes", stats.mean_object_size);
            println!(
                "live mean/max:   {:.0} / {:.0} KB",
                stats.live_mean.as_kb(),
                stats.live_max.as_kb()
            );
            println!("exec time:       {} s", stats.exec_seconds);
            println!("collections@1MB: {}", stats.collections_at_1mb);
            let compiled = match trace.compile() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("trace file inconsistent: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let demo = Demographics::compute(&compiled);
            println!(
                "demographics:    {:.1}% young, {:.1}% medium, {:.1}% immortal",
                demo.young_death_fraction() * 100.0,
                demo.medium_lived.as_u64() as f64 / demo.total.as_u64() as f64 * 100.0,
                demo.immortal.as_u64() as f64 / demo.total.as_u64() as f64 * 100.0,
            );
            ExitCode::SUCCESS
        }
        Some("survival") if args.len() == 2 => {
            let trace = match read_trace(&args[1]) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let compiled = match trace.compile() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("trace file inconsistent: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let curve = SurvivalCurve::at_paper_checkpoints(&compiled);
            println!("age(bytes),survival");
            for (age, s) in curve.ages.iter().zip(&curve.survival) {
                println!("{age},{s:.6}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
