//! `DTBCKP01`: the checksummed on-disk checkpoint container.
//!
//! A checkpoint file is a single opaque payload wrapped in the same
//! integrity conventions as the `DTBCTC01` store ([`crate::ctc`]): the
//! 8-byte magic `DTBCKP01` (the trailing `01` is the format version),
//! the payload bytes, and a trailing FNV-1a checksum of everything
//! before it. The payload's schema is the *writer's* business — the
//! simulator stores a JSON-encoded `SimCheckpoint` — so this module
//! stays a pure container: it guarantees that what [`read_blob`]
//! returns is byte-for-byte what [`write_blob`] stored, or a typed
//! [`CkpError`], never a panic and never silently-corrupt bytes.
//!
//! Writes are atomic: the file is assembled under a temporary name,
//! fsync'd, and renamed into place, so a crash mid-write leaves the
//! previous checkpoint intact instead of a torn file.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes identifying a checkpoint file (format version 1).
pub const MAGIC: &[u8; 8] = b"DTBCKP01";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, the checksum used by every on-disk format in
/// this crate (and by the simulator's run journal).
pub fn checksum(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, b| {
        (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME)
    })
}

/// A failure reading, writing, or interpreting a checkpoint.
///
/// The `Mismatch` variant is produced by *consumers* of the payload
/// (e.g. the simulator refusing to resume a checkpoint taken on a
/// different trace); the rest come from the container itself.
#[derive(Clone, Debug, PartialEq)]
pub enum CkpError {
    /// Filesystem failure (the original error rendered as text so the
    /// variant stays comparable and cloneable).
    Io {
        /// File involved.
        path: PathBuf,
        /// The underlying I/O error message.
        message: String,
    },
    /// Missing or wrong magic header.
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// The file is too short to hold even an empty payload.
    Truncated {
        /// Offending file.
        path: PathBuf,
    },
    /// The trailing checksum does not match the bytes read.
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
        /// Recorded checksum.
        expected: u64,
        /// Checksum computed from the bytes actually read.
        found: u64,
    },
    /// The payload passed its checksum but does not decode to the
    /// consumer's schema.
    BadPayload {
        /// Offending file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// The checkpoint decoded but belongs to a different run (wrong
    /// trace, policy, or configuration).
    Mismatch {
        /// Which field disagreed.
        what: &'static str,
        /// Value the resuming run expected.
        expected: String,
        /// Value found in the checkpoint.
        found: String,
    },
}

impl std::fmt::Display for CkpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkpError::Io { path, message } => {
                write!(f, "{}: i/o error: {message}", path.display())
            }
            CkpError::BadMagic { path } => {
                write!(f, "{}: not a checkpoint file", path.display())
            }
            CkpError::Truncated { path } => {
                write!(f, "{}: file ends mid-structure", path.display())
            }
            CkpError::ChecksumMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: checksum mismatch (recorded {expected:#018x}, computed {found:#018x})",
                path.display()
            ),
            CkpError::BadPayload { path, reason } => {
                write!(f, "{}: bad checkpoint payload: {reason}", path.display())
            }
            CkpError::Mismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {what} mismatch: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for CkpError {}

fn io_err(path: &Path, e: std::io::Error) -> CkpError {
    CkpError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Atomically writes `payload` as a checkpoint file at `path`.
///
/// The bytes go to `<path>.tmp` first, are fsync'd, and are renamed
/// over `path` — a crash at any point leaves either the old checkpoint
/// or the new one, never a torn mix.
///
/// # Errors
///
/// [`CkpError::Io`] on filesystem failure.
pub fn write_blob(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), CkpError> {
    let path = path.as_ref();
    let mut data = Vec::with_capacity(MAGIC.len() + payload.len() + 8);
    data.extend_from_slice(MAGIC);
    data.extend_from_slice(payload);
    let sum = checksum(&data);
    data.extend_from_slice(&sum.to_le_bytes());

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    file.write_all(&data)
        .and_then(|()| file.sync_all())
        .map_err(|e| io_err(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// Reads and verifies a checkpoint file, returning its payload bytes.
///
/// # Errors
///
/// [`CkpError::Io`] on filesystem failure, [`CkpError::Truncated`] /
/// [`CkpError::BadMagic`] / [`CkpError::ChecksumMismatch`] when the
/// container is damaged. Payloads that verify are returned verbatim.
pub fn read_blob(path: impl AsRef<Path>) -> Result<Vec<u8>, CkpError> {
    let path = path.as_ref();
    let data = std::fs::read(path).map_err(|e| io_err(path, e))?;
    if data.len() < MAGIC.len() + 8 {
        return Err(CkpError::Truncated {
            path: path.to_path_buf(),
        });
    }
    let (body, trailer) = data.split_at(data.len() - 8);
    let recorded = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let computed = checksum(body);
    if recorded != computed {
        return Err(CkpError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected: recorded,
            found: computed,
        });
    }
    if &body[..MAGIC.len()] != MAGIC {
        return Err(CkpError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    Ok(body[MAGIC.len()..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtb-ckp-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("state.dtbckp")
    }

    #[test]
    fn round_trips_payload_bytes() {
        let path = temp_path("rt");
        for payload in [&b""[..], b"x", b"{\"clock\":12345}", &[0u8; 1024][..]] {
            write_blob(&path, payload).unwrap();
            assert_eq!(read_blob(&path).unwrap(), payload);
        }
    }

    #[test]
    fn overwrite_replaces_previous_checkpoint() {
        let path = temp_path("ow");
        write_blob(&path, b"first, much longer payload").unwrap();
        write_blob(&path, b"second").unwrap();
        assert_eq!(read_blob(&path).unwrap(), b"second");
    }

    #[test]
    fn flipped_byte_is_a_checksum_error() {
        let path = temp_path("flip");
        write_blob(&path, b"some checkpoint payload").unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x10;
        std::fs::write(&path, raw).unwrap();
        assert!(matches!(
            read_blob(&path).unwrap_err(),
            CkpError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn truncated_file_is_typed() {
        let path = temp_path("trunc");
        write_blob(&path, b"payload").unwrap();
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 9]).unwrap();
        assert!(matches!(
            read_blob(&path).unwrap_err(),
            CkpError::ChecksumMismatch { .. } | CkpError::Truncated { .. }
        ));
        std::fs::write(&path, &raw[..4]).unwrap();
        assert!(matches!(
            read_blob(&path).unwrap_err(),
            CkpError::Truncated { .. }
        ));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_blob("/nonexistent/definitely/not/here.dtbckp").unwrap_err();
        assert!(matches!(err, CkpError::Io { .. }));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn wrong_magic_is_typed() {
        let path = temp_path("magic");
        // A valid container whose magic says "compiled trace store".
        let mut data = Vec::new();
        data.extend_from_slice(b"DTBCTC01");
        data.extend_from_slice(b"payload");
        let sum = checksum(&data);
        data.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, data).unwrap();
        assert!(matches!(
            read_blob(&path).unwrap_err(),
            CkpError::BadMagic { .. }
        ));
    }
}
