//! The six evaluation workloads, calibrated to the paper's programs.
//!
//! The paper traces four C programs (two with two inputs each): GhostScript
//! (`GHOST(1)`, `GHOST(2)`), Espresso (`ESPRESSO(1)`, `ESPRESSO(2)`), SIS,
//! and Cfrac. The original QPT traces are unobtainable, so each
//! [`Program`] is a synthetic [`WorkloadSpec`] whose parameters are derived
//! from the published statistics:
//!
//! * **total allocation** and **execution time** from Table 6 (the paper's
//!   "megabytes" are binary MiB: `49 MiB / 1 MB trigger ≈ 51 collections`,
//!   matching Table 6's collection counts);
//! * the **live-storage profile** from Table 2's `LIVE` row, decomposed
//!   into an initial permanent structure, an immortal ramp (`ramp_end =
//!   2·(max − mean)` for a linear ramp), and steady churn;
//! * the **medium-lived fraction** (objects that survive a scavenge and
//!   then die — the tenured-garbage population) from the `FIXED1` −
//!   `FULL` memory gaps in Table 2;
//! * Espresso's pass structure as **phase-local** classes, matching the
//!   paper's description of it as a multi-pass logic optimizer.
//!
//! Calibration is verified by `tests/calibration.rs`, which regenerates
//! every preset and checks the `LIVE` profile against the paper's row.

use crate::event::{CompiledTrace, Trace};
use crate::lifetime::{LifetimeDist, SizeDist};
use crate::synth::{ClassSpec, WorkloadSpec};
use dtb_core::time::Bytes;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// One of the paper's six workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Program {
    /// GhostScript interpreting a large reference manual.
    Ghost1,
    /// GhostScript interpreting a masters thesis.
    Ghost2,
    /// Espresso optimizing a small release example.
    Espresso1,
    /// Espresso optimizing a large release example.
    Espresso2,
    /// SIS verifying a synthesized circuit with 1024 random vectors.
    Sis,
    /// Cfrac factoring a 25-digit product of two primes.
    Cfrac,
}

/// The paper's published expectations for a workload, used by calibration
/// tests and the experiment reports (all byte values; Table 2 prints KiB).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PaperProfile {
    /// Total allocation (Table 6, MiB → bytes).
    pub total_alloc: u64,
    /// `LIVE` mean (Table 2, KiB → bytes).
    pub live_mean: u64,
    /// `LIVE` max (Table 2, KiB → bytes).
    pub live_max: u64,
    /// Execution time in seconds (Table 6).
    pub exec_seconds: f64,
    /// Number of collections (Table 6).
    pub collections: u64,
    /// Lines of C source (Table 6).
    pub source_lines: u64,
}

impl Program {
    /// All six workloads in the paper's column order.
    pub const ALL: [Program; 6] = [
        Program::Ghost1,
        Program::Ghost2,
        Program::Espresso1,
        Program::Espresso2,
        Program::Sis,
        Program::Cfrac,
    ];

    /// The column label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Program::Ghost1 => "GHOST(1)",
            Program::Ghost2 => "GHOST(2)",
            Program::Espresso1 => "ESPRESSO(1)",
            Program::Espresso2 => "ESPRESSO(2)",
            Program::Sis => "SIS",
            Program::Cfrac => "CFRAC",
        }
    }

    /// The paper's published profile for this workload.
    pub fn paper_profile(self) -> PaperProfile {
        match self {
            Program::Ghost1 => PaperProfile {
                total_alloc: 49 * MIB,
                live_mean: 777 * KIB,
                live_max: 1118 * KIB,
                exec_seconds: 31.0,
                collections: 51,
                source_lines: 29_500,
            },
            Program::Ghost2 => PaperProfile {
                total_alloc: 88 * MIB,
                live_mean: 1323 * KIB,
                live_max: 2080 * KIB,
                exec_seconds: 71.0,
                collections: 90,
                source_lines: 29_500,
            },
            Program::Espresso1 => PaperProfile {
                total_alloc: 15 * MIB,
                live_mean: 89 * KIB,
                live_max: 173 * KIB,
                exec_seconds: 62.0,
                collections: 16,
                source_lines: 15_500,
            },
            Program::Espresso2 => PaperProfile {
                total_alloc: 104 * MIB,
                live_mean: 160 * KIB,
                live_max: 269 * KIB,
                exec_seconds: 240.0,
                collections: 107,
                source_lines: 15_500,
            },
            Program::Sis => PaperProfile {
                total_alloc: 15 * MIB,
                live_mean: 4197 * KIB,
                live_max: 6423 * KIB,
                exec_seconds: 30.0,
                collections: 15,
                source_lines: 172_000,
            },
            Program::Cfrac => PaperProfile {
                // The paper reports 3 MB total and 4 collections; we use
                // 4.2 MB so a 1 MB trigger indeed fires 4 times.
                total_alloc: 4_200_000,
                live_mean: 10 * KIB,
                live_max: 21 * KIB,
                exec_seconds: 8.0,
                collections: 4,
                source_lines: 6_000,
            },
        }
    }

    /// The calibrated synthetic workload for this program.
    pub fn spec(self) -> WorkloadSpec {
        let p = self.paper_profile();
        // Shorthand for the recurring "dies before the first scavenge"
        // churn class; most C allocations are small and die fast.
        let short = |fraction: f64| {
            ClassSpec::new(
                "short",
                fraction,
                SizeDist::PowerOfTwo { min: 16, max: 512 },
                LifetimeDist::Exponential { mean: 3_000.0 },
            )
        };
        // Medium-lived objects survive one or more 1 MB scavenge intervals
        // and then die: the tenured-garbage population. Lifetimes of
        // 1.1–2.2 MB die before the fourth scavenge (FIXED4 reclaims what
        // FIXED1 strands — the GHOST / SIS pattern) and within reach of
        // DTBFM's budget-capped backward sweep, which is what lets the
        // paper's DTBFM hold GHOST memory near the FULL level while
        // FEEDMED's monotone boundary strands the same objects.
        let medium = |fraction: f64| {
            ClassSpec::new(
                "medium",
                fraction,
                SizeDist::PowerOfTwo { min: 32, max: 1024 },
                LifetimeDist::Uniform {
                    min: 1_100_000,
                    max: 2_200_000,
                },
            )
        };
        let ramp = |fraction: f64| {
            ClassSpec::new(
                "immortal-ramp",
                fraction,
                SizeDist::PowerOfTwo { min: 32, max: 2048 },
                LifetimeDist::Immortal,
            )
        };
        match self {
            Program::Ghost1 => WorkloadSpec {
                name: self.label().into(),
                description: "PostScript interpretation, NODISPLAY (synthetic)".into(),
                exec_seconds: p.exec_seconds,
                total_alloc: p.total_alloc,
                initial_permanent: 420_000,
                initial_object_size: 512,
                classes: vec![
                    ramp(0.0137),
                    // Page-local interpreter data: dies in bulk when the
                    // interpreter finishes a page. The bursty deaths are
                    // what DTBFM's backward sweeps reclaim right after
                    // each burst, holding memory near the FULL level.
                    ClassSpec::new(
                        "page-local",
                        0.008,
                        SizeDist::PowerOfTwo { min: 32, max: 1024 },
                        LifetimeDist::PhaseLocal,
                    ),
                    short(0.9783),
                ],
                phase_period: Some(2_500_000),
                seed: 0x61,
            },
            Program::Ghost2 => WorkloadSpec {
                name: self.label().into(),
                description: "PostScript interpretation, NODISPLAY (synthetic)".into(),
                exec_seconds: p.exec_seconds,
                total_alloc: p.total_alloc,
                initial_permanent: 560_000,
                initial_object_size: 512,
                classes: vec![
                    ramp(0.0169),
                    ClassSpec::new(
                        "page-local",
                        0.0066,
                        SizeDist::PowerOfTwo { min: 32, max: 1024 },
                        LifetimeDist::PhaseLocal,
                    ),
                    short(0.9765),
                ],
                phase_period: Some(2_500_000),
                seed: 0x62,
            },
            Program::Espresso1 => WorkloadSpec {
                name: self.label().into(),
                description: "two-level logic optimization passes (synthetic)".into(),
                exec_seconds: p.exec_seconds,
                total_alloc: p.total_alloc,
                initial_permanent: 0,
                initial_object_size: 256,
                classes: vec![
                    ramp(0.0100),
                    ClassSpec::new(
                        "pass-local",
                        0.0190,
                        SizeDist::PowerOfTwo { min: 32, max: 1024 },
                        LifetimeDist::PhaseLocal,
                    ),
                    short(0.9710),
                ],
                phase_period: Some(1_500_000),
                seed: 0xe1,
            },
            Program::Espresso2 => WorkloadSpec {
                name: self.label().into(),
                description: "two-level logic optimization passes (synthetic)".into(),
                exec_seconds: p.exec_seconds,
                total_alloc: p.total_alloc,
                initial_permanent: 18_000,
                initial_object_size: 256,
                classes: vec![
                    ramp(0.0017),
                    // Espresso's optimization passes allocate pass-local
                    // data that dies in bulk at pass boundaries. The
                    // bursty death pattern is what makes FEEDMED strand
                    // tenured garbage that DTBFM untenures (Section 6.2).
                    ClassSpec::new(
                        "pass-local",
                        0.0165,
                        SizeDist::PowerOfTwo { min: 32, max: 1024 },
                        LifetimeDist::PhaseLocal,
                    ),
                    short(0.9818),
                ],
                phase_period: Some(5_000_000),
                seed: 0xe2,
            },
            Program::Sis => WorkloadSpec {
                name: self.label().into(),
                description: "circuit synthesis + verification, 1024 vectors (synthetic)".into(),
                exec_seconds: p.exec_seconds,
                total_alloc: p.total_alloc,
                initial_permanent: 2_450_000,
                initial_object_size: 2048,
                classes: vec![ramp(0.310), medium(0.012), short(0.678)],
                phase_period: None,
                seed: 0x515,
            },
            Program::Cfrac => WorkloadSpec {
                name: self.label().into(),
                description: "continued-fraction factoring of a 25-digit number (synthetic)".into(),
                exec_seconds: p.exec_seconds,
                total_alloc: p.total_alloc,
                initial_permanent: 1_000,
                initial_object_size: 64,
                classes: vec![
                    ramp(0.001),
                    ClassSpec::new(
                        "medium",
                        0.001,
                        SizeDist::PowerOfTwo { min: 16, max: 128 },
                        LifetimeDist::Exponential { mean: 800_000.0 },
                    ),
                    // Cfrac's live data pulses as each candidate factor
                    // base is built and discarded; a phase-local class
                    // reproduces the 2:1 max-to-mean live ratio.
                    ClassSpec::new(
                        "pulse",
                        0.006,
                        SizeDist::PowerOfTwo { min: 16, max: 128 },
                        LifetimeDist::PhaseLocal,
                    ),
                    ClassSpec::new(
                        "short",
                        0.992,
                        SizeDist::PowerOfTwo { min: 16, max: 128 },
                        LifetimeDist::Exponential { mean: 2_500.0 },
                    ),
                ],
                phase_period: Some(2_100_000),
                seed: 0xcf,
            },
        }
    }

    /// Generates the workload trace.
    ///
    /// Presets always validate, so this cannot fail.
    pub fn generate(self) -> Trace {
        self.spec()
            .generate()
            .expect("preset workload specs are valid by construction")
    }

    /// The compiled preset trace, generated and compiled **exactly once
    /// per process** and shared behind an [`Arc`].
    ///
    /// Presets are pure functions of their seed, so the compiled trace is
    /// immutable and safe to share across threads; every caller (and
    /// every [`Arc::ptr_eq`] check) observes the same allocation.
    /// Harnesses that evaluate many policies over one program should use
    /// this instead of [`Program::generate`] to avoid re-synthesizing the
    /// workload per cell.
    pub fn compiled(self) -> Arc<CompiledTrace> {
        static COMPILED: [OnceLock<Arc<CompiledTrace>>; 6] = [const { OnceLock::new() }; 6];
        COMPILED[self as usize]
            .get_or_init(|| {
                Arc::new(
                    self.generate()
                        .compile()
                        .expect("preset traces are well-formed"),
                )
            })
            .clone()
    }

    /// The paper's `LIVE` row for this program, as (mean, max) bytes.
    pub fn paper_live(self) -> (Bytes, Bytes) {
        let p = self.paper_profile();
        (Bytes::new(p.live_mean), Bytes::new(p.live_max))
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for p in Program::ALL {
            p.spec().validate().unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Program::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn class_fractions_sum_to_one() {
        for p in Program::ALL {
            let s = p.spec();
            let sum: f64 = s.classes.iter().map(|c| c.byte_fraction).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{p}: fractions sum to {sum}");
        }
    }

    #[test]
    fn profiles_match_table6_collections() {
        // Collections = total allocation / 1 MB trigger, within rounding.
        for p in Program::ALL {
            let prof = p.paper_profile();
            let derived = prof.total_alloc / 1_000_000;
            let diff = derived.abs_diff(prof.collections);
            assert!(
                diff <= 3,
                "{p}: {derived} derived vs {} published",
                prof.collections
            );
        }
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Program::Espresso2.to_string(), "ESPRESSO(2)");
    }

    #[test]
    fn compiled_is_memoized_per_process() {
        let a = Program::Cfrac.compiled();
        let b = Program::Cfrac.compiled();
        assert!(Arc::ptr_eq(&a, &b), "compiled() must hand out one Arc");
        assert_eq!(a.meta.name, "CFRAC");
        // And it matches a fresh generate+compile of the same preset.
        let fresh = Program::Cfrac.generate().compile().unwrap();
        assert_eq!(fresh, *a);
    }
}
