//! Allocation traces and synthetic workload generation.
//!
//! Barrett & Zorn drove their garbage-collection simulations with memory
//! allocation and deallocation event traces captured from four
//! allocation-intensive C programs (GhostScript, Espresso, SIS, and Cfrac)
//! using Larus' QPT trace generator. Those 1993 traces are unobtainable, so
//! this crate provides:
//!
//! * the trace **event model** ([`event`]) — allocation / free event
//!   streams on the allocation clock, plus compilation into per-object
//!   lifetime records ([`event::CompiledTrace`]);
//! * **synthetic workload generators** ([`synth`]) driven by per-class
//!   object size and lifetime distributions ([`lifetime`]);
//! * **presets** ([`programs`]) calibrated so each generated workload
//!   matches its program's published statistics (Tables 2, 5 and 6 of the
//!   paper): total allocation, number of collections, execution time, and
//!   the live-storage profile (mean and maximum);
//! * trace **serialization** ([`format`]), **statistics** ([`stats`]),
//!   and lifetime **analysis** ([`analysis`]: survival curves and age
//!   demographics);
//! * **streaming** ([`source`]: the [`EventSource`] abstraction over
//!   record streams; [`ctc`]: the sharded on-disk `DTBCTC01`
//!   compiled-trace store) so traces larger than RAM simulate in
//!   O(live set) memory;
//! * the **checkpoint container** ([`ckp`]: the checksummed `DTBCKP01`
//!   blob format the simulator uses to persist resumable run state).
//!
//! # Example
//!
//! ```
//! use dtb_trace::programs::Program;
//!
//! // Generate the CFRAC-like workload (the smallest preset).
//! let trace = Program::Cfrac.generate();
//! let stats = dtb_trace::stats::TraceStats::compute(&trace);
//! assert!(stats.total_allocated.as_u64() > 3_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod ckp;
pub mod corrupt;
pub mod ctc;
pub mod event;
pub mod format;
pub mod io;
pub mod lifetime;
pub mod programs;
pub mod source;
pub mod stats;
pub mod synth;

pub use builder::TraceBuilder;
pub use ckp::CkpError;
pub use ctc::{verify_store, ShardReader, ShardStatus, StoreReport};
pub use event::{CompiledTrace, Event, ObjectId, ObjectLife, Trace, TraceMeta};
pub use programs::Program;
pub use source::{
    collect_source, CompiledSource, EventBlock, EventSource, SourceError, SynthSource,
    DEFAULT_BLOCK_EVENTS,
};
pub use synth::{ClassSpec, WorkloadSpec};
