//! Workload statistics: the data behind Tables 5 and 6 and the `LIVE` /
//! `No GC` rows of Table 2.

use crate::event::{CompiledTrace, Trace};
use crate::source::{EventSource, SourceError};
use dtb_core::stats::WeightedStats;
use dtb_core::time::Bytes;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Summary statistics of one workload trace.
///
/// * `live_*` corresponds to Table 2's `LIVE` row: the exact number of
///   reachable bytes over time (allocation-weighted mean, and max);
/// * `nogc_*` corresponds to Table 2's `No GC` row: memory used when
///   nothing is ever reclaimed, which is simply the allocation clock
///   itself (mean = total/2 exactly for a linear ramp);
/// * the allocation rate and collection count reproduce Table 6's columns
///   under the paper's 1 MB collection trigger.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Workload name.
    pub name: String,
    /// Total bytes allocated.
    pub total_allocated: Bytes,
    /// Number of objects allocated.
    pub object_count: usize,
    /// Mean object size in bytes.
    pub mean_object_size: f64,
    /// Allocation-weighted mean of live (reachable) bytes.
    pub live_mean: Bytes,
    /// Maximum live bytes at any point.
    pub live_max: Bytes,
    /// Mean memory with no collector (allocation ramp average).
    pub nogc_mean: Bytes,
    /// Maximum memory with no collector (= total allocated).
    pub nogc_max: Bytes,
    /// Mutator execution time in seconds (from trace metadata).
    pub exec_seconds: f64,
    /// Allocation rate in bytes per second.
    pub alloc_rate: f64,
    /// Collections a 1 MB-trigger collector would run.
    pub collections_at_1mb: u64,
}

impl TraceStats {
    /// Computes statistics for a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is malformed (see [`Trace::compile`]); use
    /// [`TraceStats::compute_compiled`] with a pre-validated trace to
    /// avoid recompilation.
    pub fn compute(trace: &Trace) -> TraceStats {
        let compiled = trace.compile().expect("malformed trace");
        TraceStats::compute_compiled(&compiled)
    }

    /// Computes statistics for an already-compiled trace.
    pub fn compute_compiled(c: &CompiledTrace) -> TraceStats {
        // Sweep births (+size) and deaths (−size) in clock order to build
        // the live curve; weight each level by how long it holds.
        let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(c.len() * 2);
        for l in c.lives() {
            deltas.push((l.birth.as_u64(), l.size as i64));
            if let Some(d) = l.death {
                deltas.push((d.as_u64(), -(l.size as i64)));
            }
        }
        // At equal clock values process births (+) before deaths (−):
        // zero-lifetime objects (freed at their own birth instant) must not
        // drive the level negative.
        deltas.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));

        let mut live = WeightedStats::new();
        let mut nogc = WeightedStats::new();
        let mut level: i64 = 0;
        let mut prev_t: u64 = 0;
        for (t, delta) in deltas {
            if t > prev_t {
                live.record(level as f64, (t - prev_t) as f64);
                // "No GC" memory at clock t is t itself (everything ever
                // allocated); average the ramp segment.
                nogc.record((prev_t + t) as f64 / 2.0, (t - prev_t) as f64);
                prev_t = t;
            }
            level += delta;
            debug_assert!(level >= 0, "live bytes went negative");
            live.record(level as f64, 0.0); // spikes count toward the max
        }
        let end = c.end.as_u64();
        if end > prev_t {
            live.record(level as f64, (end - prev_t) as f64);
            nogc.record((prev_t + end) as f64 / 2.0, (end - prev_t) as f64);
        }

        let total = c.total_allocated();
        let object_count = c.len();
        TraceStats {
            name: c.meta.name.clone(),
            total_allocated: total,
            object_count,
            mean_object_size: if object_count == 0 {
                0.0
            } else {
                total.as_u64() as f64 / object_count as f64
            },
            live_mean: Bytes::new(live.mean().unwrap_or(0.0) as u64),
            live_max: Bytes::new(live.max().unwrap_or(0.0) as u64),
            nogc_mean: Bytes::new(nogc.mean().unwrap_or(0.0) as u64),
            nogc_max: total,
            exec_seconds: c.meta.exec_seconds,
            alloc_rate: if c.meta.exec_seconds > 0.0 {
                total.as_u64() as f64 / c.meta.exec_seconds
            } else {
                0.0
            },
            collections_at_1mb: total.as_u64() / 1_000_000,
        }
    }

    /// Computes statistics from a streaming [`EventSource`] in O(live set)
    /// memory.
    ///
    /// Bit-identical to [`TraceStats::compute_compiled`] on the same
    /// records: the in-memory version sorts all birth/death deltas and
    /// folds them in `(clock, +before −, smaller deaths first)` order, and
    /// this version reproduces exactly that fold order with a pending-death
    /// min-heap merged against the birth stream — so the floating-point
    /// accumulation, which is order-sensitive, agrees to the last bit.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`SourceError`].
    pub fn compute_source(
        source: &mut (impl EventSource + ?Sized),
    ) -> Result<TraceStats, SourceError> {
        let meta = source.meta().clone();
        let mut sweep = LiveSweep {
            live: WeightedStats::new(),
            nogc: WeightedStats::new(),
            level: 0,
            prev_t: 0,
        };
        // Pending deaths: min-heap of (death clock, size). Its size is the
        // number of currently live-or-dying objects — the live set — not
        // the trace length.
        let mut pending: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let mut object_count: usize = 0;
        while let Some(l) = source.next_record()? {
            let birth = l.birth.as_u64();
            // Deltas strictly before this birth…
            while let Some(&Reverse((death, size))) = pending.peek() {
                if death >= birth {
                    break;
                }
                pending.pop();
                sweep.apply(death, -(size as i64));
            }
            // …then the birth itself (births sort before equal-clock
            // deaths)…
            sweep.apply(birth, l.size as i64);
            if let Some(d) = l.death {
                pending.push(Reverse((d.as_u64(), l.size)));
            }
            // …then deaths at exactly this clock, smallest first.
            while let Some(&Reverse((death, size))) = pending.peek() {
                if death > birth {
                    break;
                }
                pending.pop();
                sweep.apply(death, -(size as i64));
            }
            object_count += 1;
        }
        while let Some(Reverse((death, size))) = pending.pop() {
            sweep.apply(death, -(size as i64));
        }
        let total = Bytes::new(source.end().as_u64());
        sweep.finish(total.as_u64());

        Ok(TraceStats {
            name: meta.name,
            total_allocated: total,
            object_count,
            mean_object_size: if object_count == 0 {
                0.0
            } else {
                total.as_u64() as f64 / object_count as f64
            },
            live_mean: Bytes::new(sweep.live.mean().unwrap_or(0.0) as u64),
            live_max: Bytes::new(sweep.live.max().unwrap_or(0.0) as u64),
            nogc_mean: Bytes::new(sweep.nogc.mean().unwrap_or(0.0) as u64),
            nogc_max: total,
            exec_seconds: meta.exec_seconds,
            alloc_rate: if meta.exec_seconds > 0.0 {
                total.as_u64() as f64 / meta.exec_seconds
            } else {
                0.0
            },
            collections_at_1mb: total.as_u64() / 1_000_000,
        })
    }
}

/// The live/no-GC level sweep shared by the streaming path; folds deltas
/// exactly like the loop in [`TraceStats::compute_compiled`].
struct LiveSweep {
    live: WeightedStats,
    nogc: WeightedStats,
    level: i64,
    prev_t: u64,
}

impl LiveSweep {
    fn apply(&mut self, t: u64, delta: i64) {
        if t > self.prev_t {
            self.live
                .record(self.level as f64, (t - self.prev_t) as f64);
            self.nogc
                .record((self.prev_t + t) as f64 / 2.0, (t - self.prev_t) as f64);
            self.prev_t = t;
        }
        self.level += delta;
        debug_assert!(self.level >= 0, "live bytes went negative");
        self.live.record(self.level as f64, 0.0); // spikes count toward the max
    }

    fn finish(&mut self, end: u64) {
        if end > self.prev_t {
            self.live
                .record(self.level as f64, (end - self.prev_t) as f64);
            self.nogc
                .record((self.prev_t + end) as f64 / 2.0, (end - self.prev_t) as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    #[test]
    fn live_stats_for_simple_trace() {
        // clock: 0 → 100 (a live) → 200 (a,b live) → free a → 300 (b,c live)
        let mut b = TraceBuilder::new("s");
        b.exec_seconds(2.0);
        let a = b.alloc(100);
        b.alloc(100);
        b.free(a);
        b.alloc(100);
        let stats = TraceStats::compute(&b.finish());
        assert_eq!(stats.total_allocated, Bytes::new(300));
        assert_eq!(stats.object_count, 3);
        assert_eq!(stats.mean_object_size, 100.0);
        // live: [0,100)=0? births at 100/200/300. Levels: 100 for [100,200),
        // 200 then free → 100 for [200,300), then 200 at the very end.
        assert_eq!(stats.live_max, Bytes::new(200));
        // Weighted mean over [0,300): (0·100 + 100·100 + 100·100)/300 = 66.
        assert_eq!(stats.live_mean, Bytes::new(66));
        assert_eq!(stats.nogc_max, Bytes::new(300));
        // No-GC ramp mean = 150.
        assert_eq!(stats.nogc_mean, Bytes::new(150));
        assert_eq!(stats.alloc_rate, 150.0);
    }

    #[test]
    fn empty_trace_stats() {
        let t = TraceBuilder::new("e").finish();
        let s = TraceStats::compute(&t);
        assert_eq!(s.total_allocated, Bytes::ZERO);
        assert_eq!(s.object_count, 0);
        assert_eq!(s.live_max, Bytes::ZERO);
        assert_eq!(s.collections_at_1mb, 0);
    }

    #[test]
    fn collections_counts_megabytes() {
        let mut b = TraceBuilder::new("m");
        for _ in 0..2500 {
            let id = b.alloc(1000);
            b.free(id);
        }
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.collections_at_1mb, 2);
    }

    #[test]
    fn streaming_stats_bit_identical_to_in_memory() {
        use crate::lifetime::{LifetimeDist, SizeDist};
        use crate::source::CompiledSource;
        use crate::synth::{ClassSpec, WorkloadSpec};
        // A mixture with churn, immortals, and zero-lifetime spikes — the
        // shapes that stress delta ordering and f64 accumulation.
        let mut b = TraceBuilder::new("mix");
        let a = b.alloc(100);
        b.free(a); // zero-lifetime spike at its own birth clock
        b.alloc(50);
        let c2 = b.alloc(300);
        let c3 = b.alloc(16);
        b.free(c3);
        b.free(c2); // two deaths at the same clock, different sizes
        b.alloc(7);
        let small = b.finish().compile().unwrap();

        let generated = WorkloadSpec {
            name: "gen".into(),
            description: String::new(),
            exec_seconds: 2.0,
            total_alloc: 400_000,
            initial_permanent: 30_000,
            initial_object_size: 700,
            classes: vec![
                ClassSpec::new(
                    "short",
                    0.85,
                    SizeDist::Uniform { min: 16, max: 256 },
                    LifetimeDist::Exponential { mean: 3_000.0 },
                ),
                ClassSpec::new("imm", 0.15, SizeDist::Fixed(128), LifetimeDist::Immortal),
            ],
            phase_period: None,
            seed: 5,
        }
        .generate()
        .unwrap()
        .compile()
        .unwrap();

        for trace in [&small, &generated] {
            let resident = TraceStats::compute_compiled(trace);
            let streamed = TraceStats::compute_source(&mut CompiledSource::new(trace)).unwrap();
            assert_eq!(streamed, resident);
        }
    }

    #[test]
    fn streaming_stats_on_empty_source() {
        use crate::source::CompiledSource;
        let t = TraceBuilder::new("e").finish().compile().unwrap();
        let s = TraceStats::compute_source(&mut CompiledSource::new(&t)).unwrap();
        assert_eq!(s, TraceStats::compute_compiled(&t));
    }

    #[test]
    fn immortal_ramp_has_mean_half_of_max() {
        let mut b = TraceBuilder::new("ramp");
        for _ in 0..1000 {
            b.alloc(100); // never freed
        }
        let s = TraceStats::compute(&b.finish());
        assert_eq!(s.live_max, Bytes::new(100_000));
        // Ramp mean ≈ max/2 (off by half an object granularity).
        let mean = s.live_mean.as_u64() as f64;
        assert!((mean - 50_000.0).abs() < 100.0, "mean {mean}");
    }
}
