//! Object size and lifetime distributions for synthetic workloads.
//!
//! Lifetimes are measured on the **allocation clock** (bytes of further
//! allocation until the object dies), the standard way GC workload studies
//! express lifetimes, because collector behaviour depends on how much
//! allocation — not wall-clock time — separates birth from death.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over object sizes, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every object has the same size.
    Fixed(u32),
    /// Uniform over `[min, max]` inclusive.
    Uniform {
        /// Smallest size (≥ 1).
        min: u32,
        /// Largest size.
        max: u32,
    },
    /// A crude heavy-tail: geometric over powers of two between `min` and
    /// `max` (each doubling half as likely), modelling the mix of small
    /// cells and occasional big buffers typical of C allocators.
    PowerOfTwo {
        /// Smallest size (≥ 1).
        min: u32,
        /// Largest size (≥ min).
        max: u32,
    },
}

impl SizeDist {
    /// Draws one size.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is malformed (zero sizes or `min > max`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match *self {
            SizeDist::Fixed(s) => {
                assert!(s > 0, "zero-sized objects are not allocatable");
                s
            }
            SizeDist::Uniform { min, max } => {
                assert!(min >= 1 && min <= max, "bad uniform size bounds");
                rng.gen_range(min..=max)
            }
            SizeDist::PowerOfTwo { min, max } => {
                assert!(min >= 1 && min <= max, "bad power-of-two size bounds");
                let mut size = min;
                while size < max && rng.gen_bool(0.5) {
                    size = (size * 2).min(max);
                }
                size
            }
        }
    }

    /// The distribution's mean, used by generators to convert byte-weights
    /// into object-count weights.
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Fixed(s) => s as f64,
            SizeDist::Uniform { min, max } => (min as f64 + max as f64) / 2.0,
            SizeDist::PowerOfTwo { min, max } => {
                // E[size] for the doubling walk: sum over levels.
                let mut size = min as f64;
                let mut p = 1.0;
                let mut mean = 0.0;
                loop {
                    let stop_p = if (size as u32) >= max { p } else { p * 0.5 };
                    mean += stop_p * size.min(max as f64);
                    if (size as u32) >= max {
                        break;
                    }
                    p *= 0.5;
                    size *= 2.0;
                }
                mean
            }
        }
    }
}

/// A distribution over object lifetimes, in bytes of further allocation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LifetimeDist {
    /// The object never becomes unreachable (lives to program end).
    Immortal,
    /// Exponentially distributed with the given mean — the classic
    /// "most objects die young" survival curve.
    Exponential {
        /// Mean lifetime in allocation bytes.
        mean: f64,
    },
    /// Uniform over `[min, max]` bytes.
    Uniform {
        /// Shortest lifetime.
        min: u64,
        /// Longest lifetime.
        max: u64,
    },
    /// Exactly this many bytes of allocation after birth.
    Fixed(u64),
    /// The object dies at the end of the current program *phase*: the next
    /// multiple of the workload's phase period. Models pass-local data
    /// (e.g. Espresso's per-optimization-pass structures) that dies in
    /// bulk at phase boundaries.
    PhaseLocal,
}

impl LifetimeDist {
    /// Draws a lifetime in allocation bytes; `None` means immortal.
    /// [`LifetimeDist::PhaseLocal`] is resolved by the generator (it needs
    /// the phase clock), so this returns `Some(0)` as a placeholder there.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        match *self {
            LifetimeDist::Immortal => None,
            LifetimeDist::Exponential { mean } => {
                assert!(mean > 0.0, "exponential mean must be positive");
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                Some((-mean * u.ln()).round() as u64)
            }
            LifetimeDist::Uniform { min, max } => {
                assert!(min <= max, "bad uniform lifetime bounds");
                Some(rng.gen_range(min..=max))
            }
            LifetimeDist::Fixed(l) => Some(l),
            LifetimeDist::PhaseLocal => Some(0),
        }
    }

    /// Expected lifetime in bytes; `None` for immortal. For
    /// [`LifetimeDist::PhaseLocal`] the mean is half the phase period,
    /// which the generator knows — this returns `None` here as well since
    /// the distribution alone cannot say.
    pub fn mean(&self) -> Option<f64> {
        match *self {
            LifetimeDist::Immortal | LifetimeDist::PhaseLocal => None,
            LifetimeDist::Exponential { mean } => Some(mean),
            LifetimeDist::Uniform { min, max } => Some((min + max) as f64 / 2.0),
            LifetimeDist::Fixed(l) => Some(l as f64),
        }
    }

    /// True for [`LifetimeDist::PhaseLocal`].
    pub fn is_phase_local(&self) -> bool {
        matches!(self, LifetimeDist::PhaseLocal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fixed_size_is_constant() {
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(SizeDist::Fixed(24).sample(&mut r), 24);
        }
        assert_eq!(SizeDist::Fixed(24).mean(), 24.0);
    }

    #[test]
    fn uniform_size_within_bounds() {
        let mut r = rng();
        let d = SizeDist::Uniform { min: 8, max: 64 };
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((8..=64).contains(&s));
        }
        assert_eq!(d.mean(), 36.0);
    }

    #[test]
    fn power_of_two_sizes_are_doublings_of_min() {
        let mut r = rng();
        let d = SizeDist::PowerOfTwo { min: 16, max: 256 };
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((16..=256).contains(&s));
            assert!(s.is_power_of_two());
        }
        // Mean: 16·½ + 32·¼ + 64·⅛ + 128·1/16 + 256·1/16 = 8+8+8+8+16 = 48.
        assert!((d.mean() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_lifetime_mean_close_to_parameter() {
        let mut r = rng();
        let d = LifetimeDist::Exponential { mean: 10_000.0 };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut r).unwrap()).sum();
        let empirical = total as f64 / n as f64;
        assert!(
            (empirical - 10_000.0).abs() < 300.0,
            "empirical mean {empirical}"
        );
        assert_eq!(d.mean(), Some(10_000.0));
    }

    #[test]
    fn immortal_never_dies() {
        let mut r = rng();
        assert_eq!(LifetimeDist::Immortal.sample(&mut r), None);
        assert_eq!(LifetimeDist::Immortal.mean(), None);
    }

    #[test]
    fn uniform_lifetime_within_bounds() {
        let mut r = rng();
        let d = LifetimeDist::Uniform { min: 100, max: 200 };
        for _ in 0..500 {
            let l = d.sample(&mut r).unwrap();
            assert!((100..=200).contains(&l));
        }
        assert_eq!(d.mean(), Some(150.0));
    }

    #[test]
    fn phase_local_is_marked() {
        assert!(LifetimeDist::PhaseLocal.is_phase_local());
        assert!(!LifetimeDist::Immortal.is_phase_local());
        let mut r = rng();
        assert_eq!(LifetimeDist::PhaseLocal.sample(&mut r), Some(0));
    }

    #[test]
    fn fixed_lifetime_exact() {
        let mut r = rng();
        assert_eq!(LifetimeDist::Fixed(777).sample(&mut r), Some(777));
        assert_eq!(LifetimeDist::Fixed(777).mean(), Some(777.0));
    }
}
