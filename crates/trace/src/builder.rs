//! Hand-built traces for tests and small demonstrations.
//!
//! [`TraceBuilder`] assembles an event stream with explicit allocations
//! and frees — the tool used to reconstruct Figure 1's eleven-object heap
//! and the unit scenarios in the simulator's tests.

use crate::event::{Event, ObjectId, Trace, TraceMeta};

/// Incrementally builds a [`Trace`].
///
/// # Example
///
/// ```
/// use dtb_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("demo");
/// let a = b.alloc(100);
/// let c = b.alloc(200);
/// b.free(a);
/// let trace = b.finish();
/// assert_eq!(trace.events.len(), 3);
/// assert_ne!(a, c);
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    meta: TraceMeta,
    events: Vec<Event>,
    next_id: u64,
}

impl TraceBuilder {
    /// Starts a trace with the given workload name.
    pub fn new(name: impl Into<String>) -> TraceBuilder {
        TraceBuilder {
            meta: TraceMeta::named(name),
            events: Vec::new(),
            next_id: 0,
        }
    }

    /// Sets the mutator execution time recorded in the metadata.
    pub fn exec_seconds(&mut self, seconds: f64) -> &mut Self {
        self.meta.exec_seconds = seconds;
        self
    }

    /// Sets the description recorded in the metadata.
    pub fn description(&mut self, text: impl Into<String>) -> &mut Self {
        self.meta.description = text.into();
        self
    }

    /// Allocates a fresh object of `size` bytes and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, size: u32) -> ObjectId {
        assert!(size > 0, "objects must have positive size");
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        self.events.push(Event::Alloc { id, size });
        id
    }

    /// Allocates `count` objects of `size` bytes each; returns the first id
    /// (the rest are consecutive). Convenient for advancing the allocation
    /// clock by `count · size` bytes of filler.
    pub fn alloc_filler(&mut self, count: usize, size: u32) -> ObjectId {
        assert!(count > 0, "filler must allocate at least one object");
        let first = self.alloc(size);
        for _ in 1..count {
            self.alloc(size);
        }
        first
    }

    /// Marks `id` as unreachable from this point on.
    pub fn free(&mut self, id: ObjectId) -> &mut Self {
        self.events.push(Event::Free { id });
        self
    }

    /// Bytes allocated so far (the current allocation clock).
    pub fn clock(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Alloc { size, .. } => *size as u64,
                Event::Free { .. } => 0,
            })
            .sum()
    }

    /// Finishes the trace.
    pub fn finish(self) -> Trace {
        Trace {
            meta: self.meta,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_core::time::VirtualTime;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = TraceBuilder::new("t");
        let a = b.alloc(1);
        let c = b.alloc(1);
        assert_eq!(a, ObjectId(0));
        assert_eq!(c, ObjectId(1));
    }

    #[test]
    fn builder_trace_compiles() {
        let mut b = TraceBuilder::new("t");
        b.exec_seconds(2.5).description("scenario");
        let a = b.alloc(10);
        b.alloc(20);
        b.free(a);
        let t = b.finish();
        assert_eq!(t.meta.exec_seconds, 2.5);
        assert_eq!(t.meta.description, "scenario");
        let c = t.compile().unwrap();
        assert_eq!(c.end, VirtualTime::from_bytes(30));
        assert_eq!(c.life(0).death, Some(VirtualTime::from_bytes(30)));
    }

    #[test]
    fn filler_advances_clock() {
        let mut b = TraceBuilder::new("t");
        b.alloc_filler(10, 100);
        assert_eq!(b.clock(), 1000);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_size_alloc_panics() {
        TraceBuilder::new("t").alloc(0);
    }
}
