//! Compact binary trace serialization.
//!
//! Real QPT traces are large (GHOST(2) allocates ~92 MB across ~2 million
//! objects), so traces are stored in a simple varint-based binary format
//! rather than JSON: a magic header, the metadata, then one record per
//! event. Allocation ids are delta-encoded against a counter (generators
//! assign ids in order, making most deltas zero); free ids are encoded
//! absolutely.
//!
//! The format is self-describing enough for round-tripping but
//! deliberately minimal; it is a workspace-internal interchange format,
//! not an archival standard.

use crate::event::{Event, ObjectId, Trace, TraceMeta};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying a serialized trace (format version 1).
pub const MAGIC: &[u8; 8] = b"DTBTRC01";

pub(crate) const TAG_ALLOC: u8 = 0;
pub(crate) const TAG_FREE: u8 = 1;

/// A malformed serialized trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Input ended mid-record.
    Truncated,
    /// Unknown event tag byte.
    BadTag(u8),
    /// Metadata string is not UTF-8.
    BadString,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not a DTB trace (bad magic)"),
            FormatError::Truncated => write!(f, "trace data ends mid-record"),
            FormatError::BadTag(t) => write!(f, "unknown event tag {t}"),
            FormatError::BadString => write!(f, "metadata string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FormatError {}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, FormatError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(FormatError::Truncated);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(FormatError::Truncated);
        }
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, FormatError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(FormatError::Truncated);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| FormatError::BadString)
}

/// Serializes a trace to the binary format.
///
/// # Example
///
/// ```
/// use dtb_trace::{TraceBuilder, format};
///
/// let mut b = TraceBuilder::new("demo");
/// let id = b.alloc(64);
/// b.free(id);
/// let trace = b.finish();
/// let encoded = format::encode(&trace);
/// let decoded = format::decode(&encoded)?;
/// assert_eq!(decoded, trace);
/// # Ok::<(), format::FormatError>(())
/// ```
pub fn encode(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(trace.events.len() * 4 + 64);
    buf.put_slice(MAGIC);
    put_string(&mut buf, &trace.meta.name);
    put_string(&mut buf, &trace.meta.description);
    buf.put_f64(trace.meta.exec_seconds);
    put_varint(&mut buf, trace.events.len() as u64);
    let mut expected_id: u64 = 0;
    for event in &trace.events {
        match *event {
            Event::Alloc { id, size } => {
                buf.put_u8(TAG_ALLOC);
                // Delta against the sequential-id expectation: zero for
                // generator-produced traces.
                put_varint(&mut buf, id.0.wrapping_sub(expected_id));
                expected_id = id.0.wrapping_add(1);
                put_varint(&mut buf, size as u64);
            }
            Event::Free { id } => {
                buf.put_u8(TAG_FREE);
                put_varint(&mut buf, id.0);
            }
        }
    }
    buf.freeze()
}

/// Deserializes a trace from the binary format.
///
/// # Errors
///
/// Returns [`FormatError`] on malformed input. Well-formedness of the
/// *event stream* (no double frees, etc.) is checked separately by
/// [`Trace::compile`].
pub fn decode(data: &[u8]) -> Result<Trace, FormatError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < MAGIC.len() || &buf.copy_to_bytes(MAGIC.len())[..] != MAGIC {
        return Err(FormatError::BadMagic);
    }
    let name = get_string(&mut buf)?;
    let description = get_string(&mut buf)?;
    if buf.remaining() < 8 {
        return Err(FormatError::Truncated);
    }
    let exec_seconds = buf.get_f64();
    let count = get_varint(&mut buf)? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 24));
    let mut expected_id: u64 = 0;
    for _ in 0..count {
        if !buf.has_remaining() {
            return Err(FormatError::Truncated);
        }
        match buf.get_u8() {
            TAG_ALLOC => {
                let delta = get_varint(&mut buf)?;
                let id = expected_id.wrapping_add(delta);
                expected_id = id.wrapping_add(1);
                let size = get_varint(&mut buf)? as u32;
                events.push(Event::Alloc {
                    id: ObjectId(id),
                    size,
                });
            }
            TAG_FREE => {
                let id = get_varint(&mut buf)?;
                events.push(Event::Free { id: ObjectId(id) });
            }
            tag => return Err(FormatError::BadTag(tag)),
        }
    }
    Ok(Trace {
        meta: TraceMeta {
            name,
            description,
            exec_seconds,
        },
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("fmt-test");
        b.exec_seconds(3.25).description("round trip");
        let a = b.alloc(100);
        let c = b.alloc(260); // size needing 2 varint bytes
        b.free(a);
        b.alloc(1);
        b.free(c);
        b.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let decoded = decode(&encode(&t)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn round_trip_empty_trace() {
        let t = TraceBuilder::new("empty").finish();
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOTATRACE"), Err(FormatError::BadMagic));
        assert_eq!(decode(b""), Err(FormatError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let full = encode(&sample());
        for cut in [9, full.len() / 2, full.len() - 1] {
            let r = decode(&full[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut raw = encode(&sample()).to_vec();
        // Find the first event byte: after magic + name + desc + f64 + count.
        // The first event tag is TAG_ALLOC (0); corrupt it.
        let name_len = 1 + "fmt-test".len();
        let desc_len = 1 + "round trip".len();
        let pos = 8 + name_len + desc_len + 8 + 1;
        raw[pos] = 0xee;
        assert_eq!(decode(&raw), Err(FormatError::BadTag(0xee)));
    }

    #[test]
    fn sequential_ids_encode_compactly() {
        // 1000 sequential allocations of size < 128 should take ~3 bytes each.
        let mut b = TraceBuilder::new("z");
        for _ in 0..1000 {
            b.alloc(64);
        }
        let t = b.finish();
        let encoded = encode(&t);
        assert!(
            encoded.len() < 8 + 4 + 8 + 4 + 1000 * 3 + 16,
            "encoding too large: {}",
            encoded.len()
        );
    }

    #[test]
    fn generator_trace_round_trips() {
        use crate::lifetime::{LifetimeDist, SizeDist};
        use crate::synth::{ClassSpec, WorkloadSpec};
        let t = WorkloadSpec {
            name: "gen".into(),
            description: "generated".into(),
            exec_seconds: 1.5,
            total_alloc: 200_000,
            initial_permanent: 10_000,
            initial_object_size: 500,
            classes: vec![ClassSpec::new(
                "short",
                1.0,
                SizeDist::Uniform { min: 16, max: 256 },
                LifetimeDist::Exponential { mean: 2_000.0 },
            )],
            phase_period: None,
            seed: 3,
        }
        .generate()
        .unwrap();
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }
}
