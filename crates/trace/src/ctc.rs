//! `DTBCTC01`: the sharded on-disk *compiled-trace* format.
//!
//! `DTBTRC01` (see [`crate::format`]) stores the raw alloc/free event
//! stream; compiling it resolves each object's death time. This module
//! stores the **compiled** form on disk so simulation can stream it
//! without ever materializing a [`CompiledTrace`]: a directory holding a
//! small `manifest.dtbctc` plus numbered `shard-NNNNN.dtbctc` files of
//! birth-ordered, fixed-stride records.
//!
//! ## Layout
//!
//! Every file opens with the 8-byte magic `DTBCTC01` and a *kind* byte
//! (0 = manifest, 1 = shard). All integers are little-endian.
//!
//! **Manifest** (`manifest.dtbctc`): name and description as
//! `u32` length + UTF-8 bytes, `exec_seconds` as `f64`, then `end` clock,
//! `total_records`, `records_per_shard` and the shard count as `u64`,
//! followed by one `{records: u64, checksum: u64}` entry per shard and a
//! trailing FNV-1a checksum of everything before it.
//!
//! **Shard** (`shard-NNNNN.dtbctc`): after the magic/kind, its index
//! (`u32`) and record count (`u64`), then 28-byte records — `id: u64`,
//! `birth: u64`, `size: u32`, `death: u64` with `u64::MAX` meaning
//! "lives to trace end" — and a trailing FNV-1a checksum of the record
//! bytes. Fixed stride keeps reads chunked and seekable; records are in
//! strictly increasing birth order across the whole store.
//!
//! ## Integrity
//!
//! Corruption surfaces as a typed [`CtcError`], never a panic: checksums
//! cover both shard payloads (verified on read-through) and the manifest
//! itself, and every structural field is cross-checked against the
//! manifest when a shard is opened.

use crate::event::{ObjectId, ObjectLife, TraceError, TraceMeta};
use crate::format::FormatError;
use crate::io::{TraceEventReader, TraceIoError};
use crate::source::{EventBlock, EventSource, SourceError};
use dtb_core::time::VirtualTime;
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::SystemTime;

/// Magic bytes identifying a compiled-trace store file (format version 1).
pub const MAGIC: &[u8; 8] = b"DTBCTC01";

/// Manifest file name inside a store directory.
pub const MANIFEST_NAME: &str = "manifest.dtbctc";

const KIND_MANIFEST: u8 = 0;
const KIND_SHARD: u8 = 1;

/// Bytes per record: id (8) + birth (8) + size (4) + death (8).
const RECORD_BYTES: usize = 28;

/// Shard file header bytes: magic (8) + kind (1) + index (4) + stride (8).
const HEADER_BYTES: usize = 8 + 1 + 4 + 8;

/// Death-time sentinel for objects that live to trace end.
const NO_DEATH: u64 = u64::MAX;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, b| (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME))
}

/// A failure reading, writing, or converting a compiled-trace store.
#[derive(Clone, Debug, PartialEq)]
pub enum CtcError {
    /// Filesystem failure (the original error rendered as text so the
    /// variant stays comparable and cloneable).
    Io {
        /// File or directory involved.
        path: PathBuf,
        /// The underlying I/O error message.
        message: String,
    },
    /// Missing or wrong magic header, or the wrong kind byte for the
    /// file's role.
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// The file ends mid-structure.
    Truncated {
        /// Offending file.
        path: PathBuf,
    },
    /// A metadata string is not UTF-8.
    BadString {
        /// Offending file.
        path: PathBuf,
    },
    /// A shard header field disagrees with the manifest.
    ShardMismatch {
        /// Offending shard file.
        path: PathBuf,
        /// Which header field disagreed.
        field: &'static str,
        /// Value the manifest promised.
        expected: u64,
        /// Value found in the shard.
        found: u64,
    },
    /// A payload checksum does not match its recorded value.
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
        /// Recorded checksum.
        expected: u64,
        /// Checksum computed from the bytes actually read.
        found: u64,
    },
    /// A record is structurally impossible.
    BadRecord {
        /// Offending file.
        path: PathBuf,
        /// Record index within the store (birth order).
        index: u64,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The manifest is structurally inconsistent.
    BadManifest {
        /// Offending manifest file.
        path: PathBuf,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The source `DTBTRC01` file is malformed at the format level.
    SourceFormat {
        /// The source trace file.
        path: PathBuf,
        /// The format-level failure.
        error: FormatError,
    },
    /// The source `DTBTRC01` event stream is semantically malformed.
    SourceTrace {
        /// The source trace file.
        path: PathBuf,
        /// The event-stream failure.
        error: TraceError,
    },
}

impl std::fmt::Display for CtcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtcError::Io { path, message } => {
                write!(f, "{}: i/o error: {message}", path.display())
            }
            CtcError::BadMagic { path } => {
                write!(f, "{}: not a compiled-trace store file", path.display())
            }
            CtcError::Truncated { path } => {
                write!(f, "{}: file ends mid-structure", path.display())
            }
            CtcError::BadString { path } => {
                write!(f, "{}: metadata string is not valid UTF-8", path.display())
            }
            CtcError::ShardMismatch {
                path,
                field,
                expected,
                found,
            } => write!(
                f,
                "{}: shard {field} is {found}, manifest says {expected}",
                path.display()
            ),
            CtcError::ChecksumMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: checksum mismatch (recorded {expected:#018x}, computed {found:#018x})",
                path.display()
            ),
            CtcError::BadRecord {
                path,
                index,
                reason,
            } => write!(f, "{}: record {index}: {reason}", path.display()),
            CtcError::BadManifest { path, reason } => {
                write!(f, "{}: bad manifest: {reason}", path.display())
            }
            CtcError::SourceFormat { path, error } => {
                write!(f, "{}: source trace malformed: {error}", path.display())
            }
            CtcError::SourceTrace { path, error } => {
                write!(f, "{}: source trace inconsistent: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for CtcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtcError::SourceFormat { error, .. } => Some(error),
            CtcError::SourceTrace { error, .. } => Some(error),
            _ => None,
        }
    }
}

fn io_err(path: &Path, e: std::io::Error) -> CtcError {
    CtcError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

fn from_trace_io(e: TraceIoError) -> CtcError {
    match e {
        TraceIoError::Io { path, error } => io_err(&path, error),
        TraceIoError::Format { path, error } => CtcError::SourceFormat { path, error },
        TraceIoError::Invalid { path, error } => CtcError::SourceTrace { path, error },
    }
}

/// Per-shard bookkeeping recorded in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// Records in this shard.
    pub records: u64,
    /// FNV-1a checksum of the shard's record bytes.
    pub checksum: u64,
}

/// The decoded manifest of a compiled-trace store.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// Trace metadata carried from the source.
    pub meta: TraceMeta,
    /// End-of-trace allocation clock (= total bytes allocated).
    pub end: VirtualTime,
    /// Records across all shards.
    pub total_records: u64,
    /// Stride used when the store was written (the last shard may hold
    /// fewer).
    pub records_per_shard: u64,
    /// Per-shard record counts and checksums, in order.
    pub shards: Vec<ShardInfo>,
}

/// Path of shard `index` inside a store directory.
pub fn shard_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:05}.dtbctc"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_NAME)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Byte cursor over a slurped manifest with typed truncation errors.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CtcError> {
        if self.data.len() - self.pos < n {
            return Err(CtcError::Truncated {
                path: self.path.to_path_buf(),
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CtcError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CtcError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CtcError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, CtcError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, CtcError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| CtcError::BadString {
            path: self.path.to_path_buf(),
        })
    }
}

fn encode_manifest(m: &ShardManifest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128 + m.shards.len() * 16);
    buf.extend_from_slice(MAGIC);
    buf.push(KIND_MANIFEST);
    put_str(&mut buf, &m.meta.name);
    put_str(&mut buf, &m.meta.description);
    buf.extend_from_slice(&m.meta.exec_seconds.to_le_bytes());
    put_u64(&mut buf, m.end.as_u64());
    put_u64(&mut buf, m.total_records);
    put_u64(&mut buf, m.records_per_shard);
    put_u64(&mut buf, m.shards.len() as u64);
    for s in &m.shards {
        put_u64(&mut buf, s.records);
        put_u64(&mut buf, s.checksum);
    }
    let checksum = fnv1a(FNV_OFFSET, &buf);
    put_u64(&mut buf, checksum);
    buf
}

/// Reads and verifies the manifest of the store at `dir`.
///
/// # Errors
///
/// [`CtcError`] on I/O failure, corruption (the whole manifest is
/// checksummed), or structural inconsistency.
pub fn read_manifest(dir: impl AsRef<Path>) -> Result<ShardManifest, CtcError> {
    let path = manifest_path(dir.as_ref());
    let data = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
    if data.len() < MAGIC.len() + 1 + 8 {
        return Err(CtcError::Truncated { path });
    }
    let (body, trailer) = data.split_at(data.len() - 8);
    let recorded = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let computed = fnv1a(FNV_OFFSET, body);
    if recorded != computed {
        return Err(CtcError::ChecksumMismatch {
            path,
            expected: recorded,
            found: computed,
        });
    }
    let mut cur = Cursor {
        data: body,
        pos: 0,
        path: &path,
    };
    if cur.take(MAGIC.len())? != MAGIC || cur.u8()? != KIND_MANIFEST {
        return Err(CtcError::BadMagic { path });
    }
    let name = cur.string()?;
    let description = cur.string()?;
    let exec_seconds = cur.f64()?;
    let end = VirtualTime::from_bytes(cur.u64()?);
    let total_records = cur.u64()?;
    let records_per_shard = cur.u64()?;
    let shard_count = cur.u64()? as usize;
    // Each entry is 16 bytes; an impossible count cannot pass the
    // checksum, but bound the allocation anyway.
    let remaining = body.len() - cur.pos;
    if shard_count.checked_mul(16) != Some(remaining) {
        return Err(CtcError::BadManifest {
            path,
            reason: "shard table length disagrees with shard count",
        });
    }
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let records = cur.u64()?;
        let checksum = cur.u64()?;
        shards.push(ShardInfo { records, checksum });
    }
    if records_per_shard == 0 && total_records > 0 {
        return Err(CtcError::BadManifest {
            path,
            reason: "records_per_shard is zero",
        });
    }
    if shards.iter().map(|s| s.records).sum::<u64>() != total_records {
        return Err(CtcError::BadManifest {
            path,
            reason: "shard record counts do not sum to total_records",
        });
    }
    Ok(ShardManifest {
        meta: TraceMeta {
            name,
            description,
            exec_seconds,
        },
        end,
        total_records,
        records_per_shard,
        shards,
    })
}

struct OpenShard {
    writer: BufWriter<File>,
    path: PathBuf,
    records: u64,
    fnv: u64,
}

/// Incremental writer for a compiled-trace store.
///
/// Records must be pushed in strictly increasing birth order (the order
/// [`crate::event::Trace::compile`] produces); [`ShardWriter::finish`]
/// seals the store by writing the manifest. A store that was never
/// finished has no manifest and cannot be opened.
pub struct ShardWriter {
    dir: PathBuf,
    meta: TraceMeta,
    records_per_shard: u64,
    shards: Vec<ShardInfo>,
    total: u64,
    last_birth: Option<u64>,
    current: Option<OpenShard>,
}

impl ShardWriter {
    /// Creates the store directory and positions the writer at record 0.
    ///
    /// # Errors
    ///
    /// [`CtcError::BadManifest`] when `records_per_shard` is zero,
    /// [`CtcError::Io`] on filesystem failure.
    pub fn create(
        dir: impl AsRef<Path>,
        meta: TraceMeta,
        records_per_shard: u64,
    ) -> Result<ShardWriter, CtcError> {
        let dir = dir.as_ref().to_path_buf();
        if records_per_shard == 0 {
            return Err(CtcError::BadManifest {
                path: manifest_path(&dir),
                reason: "records_per_shard must be at least 1",
            });
        }
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(ShardWriter {
            dir,
            meta,
            records_per_shard,
            shards: Vec::new(),
            total: 0,
            last_birth: None,
            current: None,
        })
    }

    fn close_current(&mut self) -> Result<(), CtcError> {
        if let Some(mut shard) = self.current.take() {
            shard
                .writer
                .write_all(&shard.fnv.to_le_bytes())
                .and_then(|()| shard.writer.flush())
                .map_err(|e| io_err(&shard.path, e))?;
            self.shards.push(ShardInfo {
                records: shard.records,
                checksum: shard.fnv,
            });
        }
        Ok(())
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// [`CtcError::BadRecord`] when the record is structurally impossible
    /// (zero size, death before birth, births out of order, or a death
    /// time colliding with the `u64::MAX` sentinel); [`CtcError::Io`] on
    /// filesystem failure.
    pub fn push(&mut self, life: ObjectLife) -> Result<(), CtcError> {
        let index = self.total;
        let here = |reason| CtcError::BadRecord {
            path: shard_path(&self.dir, self.shards.len()),
            index,
            reason,
        };
        if life.size == 0 {
            return Err(here("object has zero size"));
        }
        let birth = life.birth.as_u64();
        if self.last_birth.is_some_and(|prev| birth <= prev) {
            return Err(here("births must be strictly increasing"));
        }
        let death = match life.death {
            None => NO_DEATH,
            Some(d) => {
                let d = d.as_u64();
                if d < birth {
                    return Err(here("object dies before it is born"));
                }
                if d == NO_DEATH {
                    return Err(here("death time collides with the immortal sentinel"));
                }
                d
            }
        };
        if self
            .current
            .as_ref()
            .is_none_or(|s| s.records >= self.records_per_shard)
        {
            self.close_current()?;
            let path = shard_path(&self.dir, self.shards.len());
            let file = File::create(&path).map_err(|e| io_err(&path, e))?;
            let mut writer = BufWriter::new(file);
            let mut header = Vec::with_capacity(MAGIC.len() + 1 + 4 + 8);
            header.extend_from_slice(MAGIC);
            header.push(KIND_SHARD);
            put_u32(&mut header, self.shards.len() as u32);
            // The header carries the *stride*, not the shard's own record
            // count: a streaming writer doesn't know the count until the
            // shard closes, and rewriting the header would need a seek.
            // The true per-shard count lives in the checksummed manifest.
            put_u64(&mut header, self.records_per_shard);
            writer.write_all(&header).map_err(|e| io_err(&path, e))?;
            self.current = Some(OpenShard {
                writer,
                path,
                records: 0,
                fnv: FNV_OFFSET,
            });
        }
        let shard = self.current.as_mut().expect("opened above");
        let mut raw = [0u8; RECORD_BYTES];
        raw[0..8].copy_from_slice(&life.id.0.to_le_bytes());
        raw[8..16].copy_from_slice(&birth.to_le_bytes());
        raw[16..20].copy_from_slice(&life.size.to_le_bytes());
        raw[20..28].copy_from_slice(&death.to_le_bytes());
        shard
            .writer
            .write_all(&raw)
            .map_err(|e| io_err(&shard.path, e))?;
        shard.fnv = fnv1a(shard.fnv, &raw);
        shard.records += 1;
        self.total += 1;
        self.last_birth = Some(birth);
        Ok(())
    }

    /// Seals the store: closes the open shard and writes the manifest.
    ///
    /// `end` is the end-of-trace allocation clock; for a compiled trace it
    /// equals the final birth (total bytes allocated).
    ///
    /// # Errors
    ///
    /// [`CtcError::BadManifest`] when `end` precedes the final birth,
    /// [`CtcError::Io`] on filesystem failure.
    pub fn finish(mut self, end: VirtualTime) -> Result<ShardManifest, CtcError> {
        if self.last_birth.is_some_and(|b| end.as_u64() < b) {
            return Err(CtcError::BadManifest {
                path: manifest_path(&self.dir),
                reason: "end clock precedes the final birth",
            });
        }
        self.close_current()?;
        let manifest = ShardManifest {
            meta: self.meta.clone(),
            end,
            total_records: self.total,
            records_per_shard: self.records_per_shard,
            shards: std::mem::take(&mut self.shards),
        };
        let path = manifest_path(&self.dir);
        std::fs::write(&path, encode_manifest(&manifest)).map_err(|e| io_err(&path, e))?;
        Ok(manifest)
    }
}

/// Writes an in-memory compiled trace as a store at `dir`.
///
/// # Errors
///
/// Propagates [`ShardWriter`] errors; a trace that fails
/// [`crate::event::CompiledTrace::validate`]-level invariants (zero
/// sizes, out-of-order births…) is rejected record by record.
pub fn write_shards(
    dir: impl AsRef<Path>,
    trace: &crate::event::CompiledTrace,
    records_per_shard: u64,
) -> Result<ShardManifest, CtcError> {
    let mut writer = ShardWriter::create(dir, trace.meta.clone(), records_per_shard)?;
    for life in trace.lives() {
        writer.push(life)?;
    }
    writer.finish(trace.end)
}

/// Converts a `DTBTRC01` event-trace *file* into a store at `dir` without
/// ever materializing the trace: two streaming passes over the source.
///
/// Pass 1 replays the event stream to resolve each object's death clock
/// (validating the stream exactly as [`crate::event::Trace::compile`]
/// would); pass 2 replays it again, emitting one record per allocation.
/// Memory is O(objects) for the id → death map — far below the resident
/// [`CompiledTrace`] plus event list — and the output is byte-for-byte
/// the store [`write_shards`] would produce from the compiled trace.
///
/// # Errors
///
/// [`CtcError::SourceFormat`] / [`CtcError::SourceTrace`] when the source
/// file is malformed, plus all [`ShardWriter`] errors.
pub fn convert_trace_file(
    src: impl AsRef<Path>,
    dir: impl AsRef<Path>,
    records_per_shard: u64,
) -> Result<ShardManifest, CtcError> {
    let src = src.as_ref();
    // Pass 1: resolve death clocks, validating the event stream.
    let mut reader = TraceEventReader::open(src).map_err(from_trace_io)?;
    let mut deaths: Vec<Option<u64>> = Vec::new();
    let mut index: HashMap<ObjectId, usize> = HashMap::new();
    let mut clock: u64 = 0;
    let mut pos: usize = 0;
    let invalid = |error| CtcError::SourceTrace {
        path: src.to_path_buf(),
        error,
    };
    while let Some(event) = reader.next_event().map_err(from_trace_io)? {
        match event {
            crate::event::Event::Alloc { id, size } => {
                if size == 0 {
                    return Err(invalid(TraceError::ZeroSizedAlloc { id, pos }));
                }
                clock = clock
                    .checked_add(size as u64)
                    .ok_or(invalid(TraceError::ClockOverflow { id, pos }))?;
                if index.insert(id, deaths.len()).is_some() {
                    return Err(invalid(TraceError::DuplicateAlloc { id, pos }));
                }
                deaths.push(None);
            }
            crate::event::Event::Free { id } => {
                let Some(&slot) = index.get(&id) else {
                    return Err(invalid(TraceError::FreeWithoutAlloc { id, pos }));
                };
                if deaths[slot].is_some() {
                    return Err(invalid(TraceError::DoubleFree { id, pos }));
                }
                deaths[slot] = Some(clock);
            }
        }
        pos += 1;
    }
    drop(index);
    let end = clock;

    // Pass 2: emit one record per allocation, in event (= birth) order.
    let meta = reader.meta().clone();
    let mut writer = ShardWriter::create(dir, meta, records_per_shard)?;
    let mut reader = TraceEventReader::open(src).map_err(from_trace_io)?;
    let mut clock: u64 = 0;
    let mut next: usize = 0;
    while let Some(event) = reader.next_event().map_err(from_trace_io)? {
        if let crate::event::Event::Alloc { id, size } = event {
            clock += size as u64;
            if next >= deaths.len() {
                return Err(CtcError::BadRecord {
                    path: src.to_path_buf(),
                    index: next as u64,
                    reason: "trace file changed between converter passes",
                });
            }
            let death = deaths[next];
            writer.push(ObjectLife {
                id,
                birth: VirtualTime::from_bytes(clock),
                size,
                death: death.map(VirtualTime::from_bytes),
            })?;
            next += 1;
        }
    }
    writer.finish(VirtualTime::from_bytes(end))
}

/// Verification status of one shard, from [`verify_store`].
#[derive(Clone, Debug)]
pub struct ShardStatus {
    /// The shard file checked.
    pub path: PathBuf,
    /// Records the manifest promises for this shard.
    pub records: u64,
    /// `None` when the shard verified; the precise failure otherwise.
    pub error: Option<CtcError>,
}

/// The result of an offline [`verify_store`] walk.
#[derive(Clone, Debug)]
pub struct StoreReport {
    /// The (checksummed, verified) manifest.
    pub manifest: ShardManifest,
    /// Per-shard status, in shard order.
    pub shards: Vec<ShardStatus>,
}

impl StoreReport {
    /// True when every shard verified.
    pub fn is_ok(&self) -> bool {
        self.shards.iter().all(|s| s.error.is_none())
    }

    /// The shards that failed verification.
    pub fn bad_shards(&self) -> impl Iterator<Item = &ShardStatus> {
        self.shards.iter().filter(|s| s.error.is_some())
    }
}

/// Offline integrity check of the store at `dir`: re-reads the manifest
/// (whole-file checksum), then every shard — header fields against the
/// manifest, exact file length, and the FNV-1a checksum of the record
/// bytes against both the shard's own trailer and the manifest's record.
///
/// One bad shard does not stop the walk: every shard gets a
/// [`ShardStatus`] so a 100-shard store with one corrupt file reports
/// exactly which one (`tracegen verify` prints them).
///
/// # Errors
///
/// Returns `Err` only when the manifest itself cannot be read or
/// verified; per-shard failures land in the report.
pub fn verify_store(dir: impl AsRef<Path>) -> Result<StoreReport, CtcError> {
    let dir = dir.as_ref();
    let manifest = read_manifest(dir)?;
    let shards = manifest
        .shards
        .iter()
        .enumerate()
        .map(|(i, info)| {
            let path = shard_path(dir, i);
            let error = check_shard(&path, i, &manifest, info).err();
            ShardStatus {
                path,
                records: info.records,
                error,
            }
        })
        .collect();
    Ok(StoreReport { manifest, shards })
}

/// Full structural + checksum verification of one shard file.
fn check_shard(
    path: &Path,
    index: usize,
    manifest: &ShardManifest,
    info: &ShardInfo,
) -> Result<(), CtcError> {
    let data = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let header_len = MAGIC.len() + 1 + 4 + 8;
    let expected_len = header_len + info.records as usize * RECORD_BYTES + 8;
    if data.len() < header_len {
        return Err(CtcError::Truncated {
            path: path.to_path_buf(),
        });
    }
    if &data[0..8] != MAGIC || data[8] != KIND_SHARD {
        return Err(CtcError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let found_index = u32::from_le_bytes(data[9..13].try_into().expect("4 bytes"));
    if found_index as usize != index {
        return Err(CtcError::ShardMismatch {
            path: path.to_path_buf(),
            field: "index",
            expected: index as u64,
            found: found_index as u64,
        });
    }
    let found_stride = u64::from_le_bytes(data[13..21].try_into().expect("8 bytes"));
    if found_stride != manifest.records_per_shard {
        return Err(CtcError::ShardMismatch {
            path: path.to_path_buf(),
            field: "stride",
            expected: manifest.records_per_shard,
            found: found_stride,
        });
    }
    if data.len() < expected_len {
        return Err(CtcError::Truncated {
            path: path.to_path_buf(),
        });
    }
    if data.len() > expected_len {
        return Err(CtcError::ShardMismatch {
            path: path.to_path_buf(),
            field: "file length",
            expected: expected_len as u64,
            found: data.len() as u64,
        });
    }
    let records = &data[header_len..expected_len - 8];
    let recorded = u64::from_le_bytes(data[expected_len - 8..].try_into().expect("8 bytes"));
    let computed = fnv1a(FNV_OFFSET, records);
    if computed != recorded || computed != info.checksum {
        return Err(CtcError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected: if recorded != computed {
                recorded
            } else {
                info.checksum
            },
            found: computed,
        });
    }
    Ok(())
}

/// Identity of one *generation* of a shard file: a re-open only hits the
/// verified-shard memo when the path, file length, modification time and
/// manifest checksum all match the generation that was hashed. Any
/// rewrite bumps the length or mtime and forces re-verification.
#[derive(PartialEq, Eq, Hash)]
struct VerifiedKey {
    path: PathBuf,
    len: u64,
    modified: Option<SystemTime>,
    checksum: u64,
}

static VERIFIED_SHARDS: OnceLock<Mutex<HashSet<VerifiedKey>>> = OnceLock::new();

fn verified_shards() -> &'static Mutex<HashSet<VerifiedKey>> {
    VERIFIED_SHARDS.get_or_init(|| Mutex::new(HashSet::new()))
}

fn verified_key(path: &Path, checksum: u64) -> Option<VerifiedKey> {
    let md = std::fs::metadata(path).ok()?;
    Some(VerifiedKey {
        path: path.to_path_buf(),
        len: md.len(),
        modified: md.modified().ok(),
        checksum,
    })
}

#[derive(Debug)]
struct ShardCursor {
    reader: BufReader<File>,
    path: PathBuf,
    shard_index: usize,
    records: u64,
    read: u64,
    fnv: u64,
    /// This shard generation already passed checksum verification in this
    /// process: skip FNV accumulation and the trailer check.
    verified: bool,
}

/// Chunked [`EventSource`] over an on-disk compiled-trace store.
///
/// Streams records shard by shard through a [`BufReader`], verifying each
/// shard's checksum as its last record is consumed; memory is one read
/// buffer plus the manifest, independent of trace length.
#[derive(Debug)]
pub struct ShardReader {
    dir: PathBuf,
    manifest: ShardManifest,
    next_shard: usize,
    consumed: u64,
    current: Option<ShardCursor>,
    /// One-record lookahead filled by [`EventSource::seek`]: scanning to
    /// the target clock overshoots by one record, which is stashed here
    /// and returned by the next `next_record` call.
    peeked: Option<ObjectLife>,
    /// Reusable chunk buffer for [`EventSource::next_block`]: one read
    /// and one FNV pass per chunk instead of per record.
    buf: Vec<u8>,
    /// Full checksum verifications performed by *this* reader — see
    /// [`ShardReader::checksum_validations`].
    validations: u64,
}

impl ShardReader {
    /// Opens the store at `dir` by reading and verifying its manifest.
    ///
    /// Shard files are opened lazily as the stream reaches them.
    ///
    /// # Errors
    ///
    /// Propagates [`read_manifest`] errors.
    pub fn open(dir: impl AsRef<Path>) -> Result<ShardReader, CtcError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = read_manifest(&dir)?;
        Ok(ShardReader {
            dir,
            manifest,
            next_shard: 0,
            consumed: 0,
            current: None,
            peeked: None,
            buf: Vec::new(),
            validations: 0,
        })
    }

    /// The verified manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Number of full shard checksum verifications this reader has
    /// performed. Shard checksums are memoized process-wide per (path,
    /// length, mtime, checksum) generation: once any reader verifies a
    /// shard, later read-throughs of the same generation skip the FNV
    /// accumulation and trailer check entirely and leave this counter
    /// untouched. [`verify_store`] never consults the memo.
    pub fn checksum_validations(&self) -> u64 {
        self.validations
    }

    /// Birth of the first record of shard `i`, probed by reading just
    /// its header and leading record (`u64::MAX` for an empty shard,
    /// which a well-formed writer never produces).
    fn first_birth(&self, i: usize) -> Result<u64, CtcError> {
        if self.manifest.shards[i].records == 0 {
            return Ok(u64::MAX);
        }
        let path = shard_path(&self.dir, i);
        let file = File::open(&path).map_err(|e| io_err(&path, e))?;
        let mut reader = BufReader::new(file);
        let mut header = [0u8; 8 + 1 + 4 + 8];
        read_exact_ctc(&mut reader, &mut header, &path)?;
        if &header[0..8] != MAGIC || header[8] != KIND_SHARD {
            return Err(CtcError::BadMagic { path });
        }
        let mut raw = [0u8; RECORD_BYTES];
        read_exact_ctc(&mut reader, &mut raw, &path)?;
        Ok(u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")))
    }

    fn open_shard(&mut self) -> Result<(), CtcError> {
        let i = self.next_shard;
        let path = shard_path(&self.dir, i);
        let file = File::open(&path).map_err(|e| io_err(&path, e))?;
        let mut reader = BufReader::new(file);
        let mut header = [0u8; 8 + 1 + 4 + 8];
        read_exact_ctc(&mut reader, &mut header, &path)?;
        if &header[0..8] != MAGIC || header[8] != KIND_SHARD {
            return Err(CtcError::BadMagic { path });
        }
        let found_index = u32::from_le_bytes(header[9..13].try_into().expect("4 bytes"));
        if found_index as usize != i {
            return Err(CtcError::ShardMismatch {
                path,
                field: "index",
                expected: i as u64,
                found: found_index as u64,
            });
        }
        let found_stride = u64::from_le_bytes(header[13..21].try_into().expect("8 bytes"));
        if found_stride != self.manifest.records_per_shard {
            return Err(CtcError::ShardMismatch {
                path,
                field: "stride",
                expected: self.manifest.records_per_shard,
                found: found_stride,
            });
        }
        let verified = verified_key(&path, self.manifest.shards[i].checksum)
            .is_some_and(|key| verified_shards().lock().expect("memo lock").contains(&key));
        self.current = Some(ShardCursor {
            reader,
            path,
            shard_index: i,
            records: self.manifest.shards[i].records,
            read: 0,
            fnv: FNV_OFFSET,
            verified,
        });
        self.next_shard += 1;
        Ok(())
    }

    /// Closes the exhausted current shard, verifying its trailer checksum
    /// against both the accumulated FNV and the manifest — unless this
    /// shard generation already verified, in which case both the trailer
    /// read and the comparison are skipped.
    fn finish_shard(&mut self) -> Result<(), SourceError> {
        let mut cur = self.current.take().expect("only called with an open shard");
        debug_assert!(cur.read >= cur.records, "shard not exhausted");
        if cur.verified {
            return Ok(());
        }
        let mut trailer = [0u8; 8];
        read_exact_ctc(&mut cur.reader, &mut trailer, &cur.path)?;
        let recorded = u64::from_le_bytes(trailer);
        let expected = self.manifest.shards[cur.shard_index].checksum;
        if recorded != cur.fnv || expected != cur.fnv {
            return Err(SourceError::Shard(CtcError::ChecksumMismatch {
                path: cur.path.clone(),
                expected: if recorded != cur.fnv {
                    recorded
                } else {
                    expected
                },
                found: cur.fnv,
            }));
        }
        self.validations += 1;
        if let Some(key) = verified_key(&cur.path, expected) {
            verified_shards().lock().expect("memo lock").insert(key);
        }
        Ok(())
    }
}

fn read_exact_ctc(reader: &mut impl Read, buf: &mut [u8], path: &Path) -> Result<(), CtcError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CtcError::Truncated {
                path: path.to_path_buf(),
            }
        } else {
            io_err(path, e)
        }
    })
}

impl EventSource for ShardReader {
    fn meta(&self) -> &TraceMeta {
        &self.manifest.meta
    }

    fn len_hint(&self) -> Option<usize> {
        usize::try_from(self.manifest.total_records).ok()
    }

    fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError> {
        if let Some(life) = self.peeked.take() {
            return Ok(Some(life));
        }
        loop {
            if self.current.is_none() {
                if self.next_shard >= self.manifest.shards.len() {
                    return Ok(None);
                }
                self.open_shard()?;
            }
            let cur = self.current.as_mut().expect("opened above");
            if cur.read >= cur.records {
                // Shard exhausted: verify its trailer checksum against
                // both the bytes just read and the manifest's record.
                self.finish_shard()?;
                continue;
            }
            let mut raw = [0u8; RECORD_BYTES];
            read_exact_ctc(&mut cur.reader, &mut raw, &cur.path)?;
            if !cur.verified {
                cur.fnv = fnv1a(cur.fnv, &raw);
            }
            cur.read += 1;
            let index = self.consumed;
            self.consumed += 1;
            let id = u64::from_le_bytes(raw[0..8].try_into().expect("8 bytes"));
            let birth = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes"));
            let size = u32::from_le_bytes(raw[16..20].try_into().expect("4 bytes"));
            let death = u64::from_le_bytes(raw[20..28].try_into().expect("8 bytes"));
            let bad = |reason| {
                SourceError::Shard(CtcError::BadRecord {
                    path: cur.path.clone(),
                    index,
                    reason,
                })
            };
            if size == 0 {
                return Err(bad("object has zero size"));
            }
            let death = if death == NO_DEATH {
                None
            } else {
                if death < birth {
                    return Err(bad("object dies before it is born"));
                }
                Some(VirtualTime::from_bytes(death))
            };
            return Ok(Some(ObjectLife {
                id: ObjectId(id),
                birth: VirtualTime::from_bytes(birth),
                size,
                death,
            }));
        }
    }

    fn next_block(&mut self, block: &mut EventBlock) -> usize {
        block.clear();
        if let Some(life) = self.peeked.take() {
            block.push(life);
        }
        while block.len() < block.capacity() {
            if self.current.is_none() {
                if self.next_shard >= self.manifest.shards.len() {
                    break;
                }
                if let Err(e) = self.open_shard() {
                    block.set_error(SourceError::Shard(e));
                    break;
                }
            }
            let cur = self.current.as_mut().expect("opened above");
            if cur.read >= cur.records {
                if let Err(e) = self.finish_shard() {
                    block.set_error(e);
                    break;
                }
                continue;
            }
            // One read and (when unverified) one FNV pass for the whole
            // chunk — the shard remainder or the block remainder,
            // whichever is smaller.
            let want = (block.capacity() - block.len()).min((cur.records - cur.read) as usize);
            self.buf.resize(want * RECORD_BYTES, 0);
            if cur.reader.read_exact(&mut self.buf).is_err() {
                // A failed chunk read leaves the cursor at an unspecified
                // position: rewind to the chunk start and replay record by
                // record so the typed error — and every good record before
                // it — is identical to the per-record path.
                let at = HEADER_BYTES as u64 + cur.read * RECORD_BYTES as u64;
                if let Err(e) = cur.reader.seek(SeekFrom::Start(at)) {
                    let path = cur.path.clone();
                    block.set_error(SourceError::Shard(io_err(&path, e)));
                    break;
                }
                while block.len() < block.capacity() {
                    match self.next_record() {
                        Ok(Some(life)) => block.push(life),
                        Ok(None) => break,
                        Err(e) => {
                            block.set_error(e);
                            break;
                        }
                    }
                }
                break;
            }
            if !cur.verified {
                cur.fnv = fnv1a(cur.fnv, &self.buf);
            }
            for raw in self.buf.chunks_exact(RECORD_BYTES) {
                cur.read += 1;
                let index = self.consumed;
                self.consumed += 1;
                let id = u64::from_le_bytes(raw[0..8].try_into().expect("8 bytes"));
                let birth = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes"));
                let size = u32::from_le_bytes(raw[16..20].try_into().expect("4 bytes"));
                let death = u64::from_le_bytes(raw[20..28].try_into().expect("8 bytes"));
                let bad = |reason| {
                    SourceError::Shard(CtcError::BadRecord {
                        path: cur.path.clone(),
                        index,
                        reason,
                    })
                };
                if size == 0 {
                    block.set_error(bad("object has zero size"));
                    return block.len();
                }
                let death = if death == NO_DEATH {
                    None
                } else {
                    if death < birth {
                        block.set_error(bad("object dies before it is born"));
                        return block.len();
                    }
                    Some(VirtualTime::from_bytes(death))
                };
                block.push(ObjectLife {
                    id: ObjectId(id),
                    birth: VirtualTime::from_bytes(birth),
                    size,
                    death,
                });
            }
        }
        block.len()
    }

    fn end(&self) -> VirtualTime {
        self.manifest.end
    }

    fn seek(&mut self, clock: VirtualTime) -> Result<(), SourceError> {
        // Records are in strictly increasing birth order across the whole
        // store, so binary-search the shards by their first record's
        // birth: everything born ≤ clock lives in shards up to and
        // including the last shard whose first birth is ≤ clock.
        let (mut lo, mut hi) = (0usize, self.manifest.shards.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.first_birth(mid)? <= clock.as_u64() {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Restart from that shard's beginning — scanning its prefix keeps
        // the running FNV accumulation (and thus checksum verification)
        // intact — and discard records up to the target clock.
        self.current = None;
        self.peeked = None;
        self.next_shard = lo.saturating_sub(1);
        self.consumed = self.manifest.shards[..self.next_shard]
            .iter()
            .map(|s| s.records)
            .sum();
        while let Some(life) = self.next_record()? {
            if life.birth > clock {
                self.peeked = Some(life);
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::CompiledTrace;
    use crate::source::collect_source;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtb-ctc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace(objects: usize) -> CompiledTrace {
        let mut b = TraceBuilder::new("ctc-test");
        b.exec_seconds(4.5).description("store round trip");
        let mut open = Vec::new();
        for i in 0..objects {
            open.push(b.alloc(64 + (i % 37) as u32));
            if i % 3 == 0 {
                if let Some(id) = open.pop() {
                    b.free(id);
                }
            }
        }
        b.finish().compile().unwrap()
    }

    #[test]
    fn store_round_trips_across_strides() {
        let trace = sample_trace(100);
        for stride in [1u64, 7, 64, u64::MAX] {
            let dir = temp_dir(&format!("rt{stride}"));
            let manifest = write_shards(&dir, &trace, stride).unwrap();
            assert_eq!(manifest.total_records, 100);
            assert_eq!(manifest.end, trace.end);
            let mut reader = ShardReader::open(&dir).unwrap();
            let back = collect_source(&mut reader).unwrap();
            assert_eq!(back, trace);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn converter_matches_write_shards() {
        let dir = temp_dir("conv");
        let mut b = TraceBuilder::new("conv-test");
        let a = b.alloc(100);
        b.alloc(260);
        b.free(a);
        b.alloc(1);
        let trace = b.finish();
        let compiled = trace.compile().unwrap();
        let src = dir.join("src.dtbtrc");
        std::fs::create_dir_all(&dir).unwrap();
        crate::io::write_trace(&src, &trace).unwrap();

        let store_a = dir.join("from-file");
        let store_b = dir.join("from-memory");
        let ma = convert_trace_file(&src, &store_a, 2).unwrap();
        let mb = write_shards(&store_b, &compiled, 2).unwrap();
        assert_eq!(ma, mb);
        for i in 0..ma.shards.len() {
            assert_eq!(
                std::fs::read(shard_path(&store_a, i)).unwrap(),
                std::fs::read(shard_path(&store_b, i)).unwrap(),
                "shard {i} differs"
            );
        }
        let back = collect_source(&mut ShardReader::open(&store_a).unwrap()).unwrap();
        assert_eq!(back, compiled);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn converter_rejects_malformed_event_streams() {
        use crate::event::{Event, ObjectId, Trace, TraceMeta};
        let dir = temp_dir("badsrc");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("bad.dtbtrc");
        let trace = Trace {
            meta: TraceMeta::named("bad"),
            events: vec![
                Event::Alloc {
                    id: ObjectId(0),
                    size: 8,
                },
                Event::Free { id: ObjectId(0) },
                Event::Free { id: ObjectId(0) },
            ],
        };
        std::fs::write(&src, crate::format::encode(&trace)).unwrap();
        let err = convert_trace_file(&src, dir.join("out"), 8).unwrap_err();
        assert!(matches!(
            err,
            CtcError::SourceTrace {
                error: TraceError::DoubleFree { .. },
                ..
            }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn next_block_matches_next_record_across_strides_and_capacities() {
        let trace = sample_trace(157);
        for stride in [1u64, 7, 64, u64::MAX] {
            let dir = temp_dir(&format!("blk{stride}"));
            write_shards(&dir, &trace, stride).unwrap();
            let expected: Vec<_> = trace.lives().collect();
            for cap in [1usize, 3, 7, 100, 4096] {
                let mut reader = ShardReader::open(&dir).unwrap();
                let mut block = EventBlock::new(cap);
                let mut got = Vec::new();
                loop {
                    let n = reader.next_block(&mut block);
                    assert!(block.take_error().is_none());
                    if n == 0 {
                        break;
                    }
                    for i in 0..n {
                        got.push(block.life(i));
                    }
                }
                assert_eq!(got, expected, "stride {stride} capacity {cap}");
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn next_block_after_seek_surfaces_the_lookahead_first() {
        let trace = sample_trace(120);
        let dir = temp_dir("blkseek");
        write_shards(&dir, &trace, 16).unwrap();
        let clock = VirtualTime::from_bytes(trace.births()[60]);
        let mut reader = ShardReader::open(&dir).unwrap();
        reader.seek(clock).unwrap();
        let mut block = EventBlock::new(32);
        let mut got = Vec::new();
        loop {
            let n = reader.next_block(&mut block);
            assert!(block.take_error().is_none());
            if n == 0 {
                break;
            }
            for i in 0..n {
                got.push(block.life(i));
            }
        }
        let expected: Vec<_> = trace.lives().filter(|l| l.birth > clock).collect();
        assert_eq!(got, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_a_store_skips_checksum_re_verification() {
        let trace = sample_trace(90);
        let dir = temp_dir("memo");
        let manifest = write_shards(&dir, &trace, 16).unwrap();
        let shard_count = manifest.shards.len() as u64;
        assert!(shard_count >= 2);
        // First full read-through hashes every shard once.
        let mut first = ShardReader::open(&dir).unwrap();
        assert_eq!(collect_source(&mut first).unwrap(), trace);
        assert_eq!(first.checksum_validations(), shard_count);
        // The same generation re-opened: every shard hits the memo.
        let mut second = ShardReader::open(&dir).unwrap();
        assert_eq!(collect_source(&mut second).unwrap(), trace);
        assert_eq!(second.checksum_validations(), 0);
        // Block reads hit the memo too.
        let mut blocked = ShardReader::open(&dir).unwrap();
        let mut block = EventBlock::new(64);
        while blocked.next_block(&mut block) > 0 {
            assert!(block.take_error().is_none());
        }
        assert_eq!(blocked.checksum_validations(), 0);
        // Rewriting the store is a new generation: verification resumes.
        // (Sleep past coarse filesystem mtime granularity so the rewrite
        // cannot collide with the memoized generation key.)
        std::thread::sleep(std::time::Duration::from_millis(20));
        write_shards(&dir, &trace, 16).unwrap();
        let mut reread = ShardReader::open(&dir).unwrap();
        assert_eq!(collect_source(&mut reread).unwrap(), trace);
        assert!(
            reread.checksum_validations() >= 1,
            "rewritten shards must be re-verified"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_shard_read_via_blocks_defers_the_same_error() {
        let trace = sample_trace(50);
        let dir = temp_dir("blkflip");
        write_shards(&dir, &trace, 16).unwrap();
        let path = shard_path(&dir, 1);
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        std::fs::write(&path, raw).unwrap();
        // Per-record reference: where does the stream fail, and after how
        // many good records?
        let mut reference = ShardReader::open(&dir).unwrap();
        let mut good = Vec::new();
        let expected_err = loop {
            match reference.next_record() {
                Ok(Some(l)) => good.push(l),
                Ok(None) => panic!("corruption must surface"),
                Err(e) => break e,
            }
        };
        // Block path: same records, then the same typed error, deferred.
        let mut blocked = ShardReader::open(&dir).unwrap();
        let mut block = EventBlock::new(33);
        let mut got = Vec::new();
        let got_err = 'outer: loop {
            let n = blocked.next_block(&mut block);
            for i in 0..n {
                got.push(block.life(i));
            }
            if let Some(e) = block.take_error() {
                break 'outer e;
            }
            assert!(n > 0, "stream ended without surfacing corruption");
        };
        assert_eq!(got, good);
        assert_eq!(format!("{got_err:?}"), format!("{expected_err:?}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_read_via_blocks_matches_per_record_position() {
        let trace = sample_trace(40);
        let dir = temp_dir("blktrunc");
        write_shards(&dir, &trace, 64).unwrap();
        let path = shard_path(&dir, 0);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 12]).unwrap();
        let mut reference = ShardReader::open(&dir).unwrap();
        let mut good = Vec::new();
        let expected_err = loop {
            match reference.next_record() {
                Ok(Some(l)) => good.push(l),
                Ok(None) => panic!("truncation must surface"),
                Err(e) => break e,
            }
        };
        let mut blocked = ShardReader::open(&dir).unwrap();
        let mut block = EventBlock::new(1024);
        let mut got = Vec::new();
        let got_err = loop {
            let n = blocked.next_block(&mut block);
            for i in 0..n {
                got.push(block.life(i));
            }
            if let Some(e) = block.take_error() {
                break e;
            }
            assert!(n > 0, "stream ended without surfacing truncation");
        };
        assert_eq!(got, good, "good prefix before the truncation point");
        assert!(matches!(
            got_err,
            SourceError::Shard(CtcError::Truncated { .. })
        ));
        assert!(matches!(
            expected_err,
            SourceError::Shard(CtcError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_shard_byte_is_a_checksum_error() {
        let trace = sample_trace(50);
        let dir = temp_dir("flip");
        write_shards(&dir, &trace, 16).unwrap();
        let path = shard_path(&dir, 1);
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        std::fs::write(&path, raw).unwrap();
        let err = collect_source(&mut ShardReader::open(&dir).unwrap()).unwrap_err();
        assert!(
            matches!(
                err,
                SourceError::Shard(CtcError::ChecksumMismatch { .. } | CtcError::BadRecord { .. })
            ),
            "unexpected error: {err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_byte_is_a_checksum_error() {
        let trace = sample_trace(20);
        let dir = temp_dir("mflip");
        write_shards(&dir, &trace, 8).unwrap();
        let path = dir.join(MANIFEST_NAME);
        let mut raw = std::fs::read(&path).unwrap();
        raw[MAGIC.len() + 3] ^= 0x01;
        std::fs::write(&path, raw).unwrap();
        let err = ShardReader::open(&dir).unwrap_err();
        assert!(matches!(err, CtcError::ChecksumMismatch { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_is_a_typed_error() {
        let trace = sample_trace(40);
        let dir = temp_dir("trunc");
        write_shards(&dir, &trace, 64).unwrap();
        let path = shard_path(&dir, 0);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 12]).unwrap();
        let err = collect_source(&mut ShardReader::open(&dir).unwrap()).unwrap_err();
        assert!(matches!(
            err,
            SourceError::Shard(CtcError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_store_is_an_io_error() {
        let err = ShardReader::open("/nonexistent/definitely/not/a/store").unwrap_err();
        assert!(matches!(err, CtcError::Io { .. }));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn writer_rejects_out_of_order_births() {
        let dir = temp_dir("order");
        let mut w = ShardWriter::create(&dir, TraceMeta::named("x"), 8).unwrap();
        w.push(ObjectLife {
            id: ObjectId(0),
            birth: VirtualTime::from_bytes(100),
            size: 100,
            death: None,
        })
        .unwrap();
        let err = w
            .push(ObjectLife {
                id: ObjectId(1),
                birth: VirtualTime::from_bytes(100),
                size: 10,
                death: None,
            })
            .unwrap_err();
        assert!(matches!(err, CtcError::BadRecord { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_rejects_end_before_final_birth() {
        let dir = temp_dir("endlow");
        let mut w = ShardWriter::create(&dir, TraceMeta::named("x"), 8).unwrap();
        w.push(ObjectLife {
            id: ObjectId(0),
            birth: VirtualTime::from_bytes(100),
            size: 100,
            death: None,
        })
        .unwrap();
        let err = w.finish(VirtualTime::from_bytes(50)).unwrap_err();
        assert!(matches!(err, CtcError::BadManifest { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seek_resumes_at_arbitrary_clocks() {
        use crate::source::EventSource;
        let trace = sample_trace(200);
        let dir = temp_dir("seek");
        write_shards(&dir, &trace, 16).unwrap();
        let all: Vec<_> = trace.lives().collect();
        let births: Vec<u64> = trace.births().to_vec();
        let probes = [
            0,
            births[0] - 1,
            births[0],
            births[50],
            births[150] - 1,
            births[199],
            births[199] + 1000,
        ];
        for clock in probes {
            let mut reader = ShardReader::open(&dir).unwrap();
            reader.seek(VirtualTime::from_bytes(clock)).unwrap();
            let mut tail = Vec::new();
            while let Some(l) = reader.next_record().unwrap() {
                tail.push(l);
            }
            let expected: Vec<_> = all
                .iter()
                .copied()
                .filter(|l| l.birth.as_u64() > clock)
                .collect();
            assert_eq!(tail, expected, "seek({clock})");
        }
        // Seeking a partially-consumed reader repositions absolutely and
        // keeps checksum verification working (the tail drains cleanly).
        let mut reader = ShardReader::open(&dir).unwrap();
        for _ in 0..77 {
            reader.next_record().unwrap();
        }
        reader.seek(VirtualTime::from_bytes(births[10])).unwrap();
        let mut n = 0;
        while reader.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 200 - 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_store_accepts_a_clean_store_and_names_the_bad_shard() {
        let trace = sample_trace(120);
        let dir = temp_dir("verify");
        write_shards(&dir, &trace, 32).unwrap();
        let report = verify_store(&dir).unwrap();
        assert!(report.is_ok());
        assert_eq!(report.shards.len(), 4);

        // Flip one byte in shard 2: only that shard is reported bad.
        let victim = shard_path(&dir, 2);
        let mut raw = std::fs::read(&victim).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x04;
        std::fs::write(&victim, raw).unwrap();
        let report = verify_store(&dir).unwrap();
        assert!(!report.is_ok());
        let bad: Vec<_> = report.bad_shards().collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].path, victim);
        assert!(matches!(
            bad[0].error,
            Some(CtcError::ChecksumMismatch { .. })
        ));

        // Truncate shard 0 as well: both now reported, in order.
        let first = shard_path(&dir, 0);
        let raw = std::fs::read(&first).unwrap();
        std::fs::write(&first, &raw[..raw.len() - 5]).unwrap();
        let report = verify_store(&dir).unwrap();
        assert_eq!(report.bad_shards().count(), 2);
        assert!(matches!(
            report.shards[0].error,
            Some(CtcError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_store_rejects_a_corrupt_manifest() {
        let trace = sample_trace(20);
        let dir = temp_dir("verify-manifest");
        write_shards(&dir, &trace, 8).unwrap();
        let path = dir.join(MANIFEST_NAME);
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        std::fs::write(&path, raw).unwrap();
        assert!(matches!(
            verify_store(&dir).unwrap_err(),
            CtcError::ChecksumMismatch { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_store_flags_trailing_garbage() {
        let trace = sample_trace(30);
        let dir = temp_dir("verify-tail");
        write_shards(&dir, &trace, 64).unwrap();
        let path = shard_path(&dir, 0);
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(b"junk");
        std::fs::write(&path, raw).unwrap();
        let report = verify_store(&dir).unwrap();
        assert!(matches!(
            report.shards[0].error,
            Some(CtcError::ShardMismatch {
                field: "file length",
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_trace_round_trips() {
        let dir = temp_dir("empty");
        let trace = TraceBuilder::new("empty").finish().compile().unwrap();
        let manifest = write_shards(&dir, &trace, 8).unwrap();
        assert_eq!(manifest.total_records, 0);
        assert!(manifest.shards.is_empty());
        let back = collect_source(&mut ShardReader::open(&dir).unwrap()).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
