//! Trace file I/O: store and load traces in the binary format.
//!
//! Separating workload generation from simulation lets expensive traces be
//! generated once and replayed many times (the `tracegen` binary does
//! exactly that from the command line).

use crate::event::Trace;
use crate::format::{self, FormatError};
use std::io;
use std::path::Path;

/// An I/O or format failure while reading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// The file is not a valid trace.
    Format(FormatError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceIoError::Format(e) => write!(f, "trace file malformed: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<FormatError> for TraceIoError {
    fn from(e: FormatError) -> Self {
        TraceIoError::Format(e)
    }
}

/// Writes a trace to `path` in the binary format.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace(path: impl AsRef<Path>, trace: &Trace) -> Result<(), TraceIoError> {
    std::fs::write(path, format::encode(trace))?;
    Ok(())
}

/// Reads a trace from `path`.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on filesystem failure and
/// [`TraceIoError::Format`] when the file is not a valid trace.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    let data = std::fs::read(path)?;
    Ok(format::decode(&data)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("dtb-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dtbtrc");
        let mut b = TraceBuilder::new("file-io");
        let id = b.alloc(128);
        b.free(id);
        let trace = b.finish();
        write_trace(&path, &trace).unwrap();
        let loaded = read_trace(&path).unwrap();
        assert_eq!(loaded, trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = read_trace("/nonexistent/definitely/not/here.dtbtrc").unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn garbage_file_reports_format_error() {
        let dir = std::env::temp_dir().join(format!("dtb-io-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dtbtrc");
        std::fs::write(&path, b"this is not a trace").unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
