//! Trace file I/O: store and load traces in the binary format.
//!
//! Separating workload generation from simulation lets expensive traces be
//! generated once and replayed many times (the `tracegen` binary does
//! exactly that from the command line).

use crate::event::{Trace, TraceError};
use crate::format::{self, FormatError};
use std::io;
use std::path::Path;

/// An I/O, format, or semantic failure while reading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// The file is not a valid trace.
    Format(FormatError),
    /// The file decoded, but its event stream is semantically malformed
    /// (e.g. a double free or an allocation-clock overflow).
    Invalid(TraceError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceIoError::Format(e) => write!(f, "trace file malformed: {e}"),
            TraceIoError::Invalid(e) => write!(f, "trace file inconsistent: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format(e) => Some(e),
            TraceIoError::Invalid(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<FormatError> for TraceIoError {
    fn from(e: FormatError) -> Self {
        TraceIoError::Format(e)
    }
}

/// Writes a trace to `path` in the binary format.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace(path: impl AsRef<Path>, trace: &Trace) -> Result<(), TraceIoError> {
    std::fs::write(path, format::encode(trace))?;
    Ok(())
}

/// Reads a trace from `path` and validates its event stream.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on filesystem failure,
/// [`TraceIoError::Format`] when the file is not a valid trace, and
/// [`TraceIoError::Invalid`] when the file decodes but its events are
/// semantically malformed ([`Trace::validate`]) — so a corrupt file
/// surfaces one precise diagnostic here instead of a failure downstream.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    let data = std::fs::read(path)?;
    let trace = format::decode(&data)?;
    trace.validate().map_err(TraceIoError::Invalid)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("dtb-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dtbtrc");
        let mut b = TraceBuilder::new("file-io");
        let id = b.alloc(128);
        b.free(id);
        let trace = b.finish();
        write_trace(&path, &trace).unwrap();
        let loaded = read_trace(&path).unwrap();
        assert_eq!(loaded, trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = read_trace("/nonexistent/definitely/not/here.dtbtrc").unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn semantically_malformed_file_reports_invalid() {
        use crate::event::{Event, ObjectId, TraceMeta};
        let dir = std::env::temp_dir().join(format!("dtb-io-inv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv.dtbtrc");
        // Encodes fine (the format is a plain event list) but double-frees.
        let trace = Trace {
            meta: TraceMeta::named("inv"),
            events: vec![
                Event::Alloc {
                    id: ObjectId(0),
                    size: 8,
                },
                Event::Free { id: ObjectId(0) },
                Event::Free { id: ObjectId(0) },
            ],
        };
        std::fs::write(&path, crate::format::encode(&trace)).unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::Invalid(TraceError::DoubleFree { .. })
        ));
        assert!(err.to_string().contains("inconsistent"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_file_reports_format_error() {
        let dir = std::env::temp_dir().join(format!("dtb-io-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dtbtrc");
        std::fs::write(&path, b"this is not a trace").unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
