//! Trace file I/O: store and load traces in the binary format.
//!
//! Separating workload generation from simulation lets expensive traces be
//! generated once and replayed many times (the `tracegen` binary does
//! exactly that from the command line).

use crate::event::{Event, ObjectId, Trace, TraceError, TraceMeta};
use crate::format::{self, FormatError};
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::{Path, PathBuf};

/// An I/O, format, or semantic failure while reading a trace file.
///
/// Every variant names the offending file, so a bad trace in a batch of
/// hundreds is diagnosable from the rendered message alone.
#[derive(Debug)]
pub enum TraceIoError {
    /// Filesystem-level failure.
    Io {
        /// Offending file.
        path: PathBuf,
        /// The underlying filesystem error.
        error: io::Error,
    },
    /// The file is not a valid trace.
    Format {
        /// Offending file.
        path: PathBuf,
        /// The format-level failure.
        error: FormatError,
    },
    /// The file decoded, but its event stream is semantically malformed
    /// (e.g. a double free or an allocation-clock overflow).
    Invalid {
        /// Offending file.
        path: PathBuf,
        /// The event-stream failure.
        error: TraceError,
    },
}

impl TraceIoError {
    /// The file the failure was observed on.
    pub fn path(&self) -> &Path {
        match self {
            TraceIoError::Io { path, .. }
            | TraceIoError::Format { path, .. }
            | TraceIoError::Invalid { path, .. } => path,
        }
    }
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io { path, error } => {
                write!(f, "{}: trace file i/o error: {error}", path.display())
            }
            TraceIoError::Format { path, error } => {
                write!(f, "{}: trace file malformed: {error}", path.display())
            }
            TraceIoError::Invalid { path, error } => {
                write!(f, "{}: trace file inconsistent: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io { error, .. } => Some(error),
            TraceIoError::Format { error, .. } => Some(error),
            TraceIoError::Invalid { error, .. } => Some(error),
        }
    }
}

fn io_err(path: &Path, error: io::Error) -> TraceIoError {
    TraceIoError::Io {
        path: path.to_path_buf(),
        error,
    }
}

fn format_err(path: &Path, error: FormatError) -> TraceIoError {
    TraceIoError::Format {
        path: path.to_path_buf(),
        error,
    }
}

/// Writes a trace to `path` in the binary format.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace(path: impl AsRef<Path>, trace: &Trace) -> Result<(), TraceIoError> {
    let path = path.as_ref();
    std::fs::write(path, format::encode(trace)).map_err(|e| io_err(path, e))
}

/// Reads a trace from `path` and validates its event stream.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on filesystem failure,
/// [`TraceIoError::Format`] when the file is not a valid trace, and
/// [`TraceIoError::Invalid`] when the file decodes but its events are
/// semantically malformed ([`Trace::validate`]) — so a corrupt file
/// surfaces one precise diagnostic here instead of a failure downstream.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    let path = path.as_ref();
    let data = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let trace = format::decode(&data).map_err(|e| format_err(path, e))?;
    trace.validate().map_err(|error| TraceIoError::Invalid {
        path: path.to_path_buf(),
        error,
    })?;
    Ok(trace)
}

/// Streaming reader over the *events* of a `DTBTRC01` trace file.
///
/// [`read_trace`] slurps the whole file and materializes every event;
/// for out-of-core processing (the `DTBCTC01` two-pass converter) this
/// reader decodes one event at a time through a [`BufReader`], keeping
/// memory independent of trace length. Event-stream *semantics* (double
/// frees, clock overflow, …) are **not** checked here — callers that
/// need them validate as they consume.
pub struct TraceEventReader {
    reader: BufReader<File>,
    path: PathBuf,
    meta: TraceMeta,
    remaining: u64,
    expected_id: u64,
}

impl TraceEventReader {
    /// Opens `path` and decodes the header (magic, metadata, event count).
    ///
    /// # Errors
    ///
    /// [`TraceIoError::Io`] on filesystem failure, [`TraceIoError::Format`]
    /// when the header is malformed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceIoError> {
        let path = path.as_ref().to_path_buf();
        let mut reader = BufReader::new(File::open(&path).map_err(|e| io_err(&path, e))?);
        let mut magic = [0u8; 8];
        match reader.read_exact(&mut magic) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(format_err(&path, FormatError::BadMagic))
            }
            Err(e) => return Err(io_err(&path, e)),
        }
        if &magic != format::MAGIC {
            return Err(format_err(&path, FormatError::BadMagic));
        }
        let name = read_string(&mut reader, &path)?;
        let description = read_string(&mut reader, &path)?;
        let mut raw = [0u8; 8];
        read_exact_or_truncated(&mut reader, &mut raw, &path)?;
        let exec_seconds = f64::from_be_bytes(raw);
        let remaining = read_varint(&mut reader, &path)?;
        Ok(TraceEventReader {
            reader,
            path,
            meta: TraceMeta {
                name,
                description,
                exec_seconds,
            },
            remaining,
            expected_id: 0,
        })
    }

    /// The trace metadata decoded from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Events not yet read (from the header count).
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Decodes the next event, or `Ok(None)` once the header count is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// [`TraceIoError::Format`] when a record is malformed or the file
    /// ends early, [`TraceIoError::Io`] on filesystem failure.
    pub fn next_event(&mut self) -> Result<Option<Event>, TraceIoError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut tag = [0u8; 1];
        read_exact_or_truncated(&mut self.reader, &mut tag, &self.path)?;
        match tag[0] {
            format::TAG_ALLOC => {
                let delta = read_varint(&mut self.reader, &self.path)?;
                let id = self.expected_id.wrapping_add(delta);
                self.expected_id = id.wrapping_add(1);
                let size = read_varint(&mut self.reader, &self.path)? as u32;
                Ok(Some(Event::Alloc {
                    id: ObjectId(id),
                    size,
                }))
            }
            format::TAG_FREE => {
                let id = read_varint(&mut self.reader, &self.path)?;
                Ok(Some(Event::Free { id: ObjectId(id) }))
            }
            tag => Err(format_err(&self.path, FormatError::BadTag(tag))),
        }
    }
}

/// `read_exact` that maps a clean EOF to [`FormatError::Truncated`].
fn read_exact_or_truncated(
    reader: &mut impl Read,
    buf: &mut [u8],
    path: &Path,
) -> Result<(), TraceIoError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            format_err(path, FormatError::Truncated)
        } else {
            io_err(path, e)
        }
    })
}

/// Incremental LEB128 decode matching `format::get_varint`.
fn read_varint(reader: &mut impl Read, path: &Path) -> Result<u64, TraceIoError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        read_exact_or_truncated(reader, &mut byte, path)?;
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(format_err(path, FormatError::Truncated));
        }
    }
}

/// Incremental string decode matching `format::get_string`. Reads through
/// a `Take` so a corrupt length varint cannot trigger a huge up-front
/// allocation.
fn read_string(reader: &mut impl Read, path: &Path) -> Result<String, TraceIoError> {
    let len = read_varint(reader, path)?;
    let mut raw = Vec::with_capacity(len.min(1 << 16) as usize);
    let took = reader
        .by_ref()
        .take(len)
        .read_to_end(&mut raw)
        .map_err(|e| io_err(path, e))?;
    if (took as u64) < len {
        return Err(format_err(path, FormatError::Truncated));
    }
    String::from_utf8(raw).map_err(|_| format_err(path, FormatError::BadString))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("dtb-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dtbtrc");
        let mut b = TraceBuilder::new("file-io");
        let id = b.alloc(128);
        b.free(id);
        let trace = b.finish();
        write_trace(&path, &trace).unwrap();
        let loaded = read_trace(&path).unwrap();
        assert_eq!(loaded, trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reports_io_error_with_path() {
        let err = read_trace("/nonexistent/definitely/not/here.dtbtrc").unwrap_err();
        assert!(matches!(err, TraceIoError::Io { .. }));
        let msg = err.to_string();
        assert!(msg.contains("i/o"), "message: {msg}");
        assert!(
            msg.contains("/nonexistent/definitely/not/here.dtbtrc"),
            "message does not name the file: {msg}"
        );
    }

    #[test]
    fn semantically_malformed_file_reports_invalid_with_path() {
        use crate::event::{Event, ObjectId, TraceMeta};
        let dir = std::env::temp_dir().join(format!("dtb-io-inv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv.dtbtrc");
        // Encodes fine (the format is a plain event list) but double-frees.
        let trace = Trace {
            meta: TraceMeta::named("inv"),
            events: vec![
                Event::Alloc {
                    id: ObjectId(0),
                    size: 8,
                },
                Event::Free { id: ObjectId(0) },
                Event::Free { id: ObjectId(0) },
            ],
        };
        std::fs::write(&path, crate::format::encode(&trace)).unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::Invalid {
                error: TraceError::DoubleFree { .. },
                ..
            }
        ));
        let msg = err.to_string();
        assert!(msg.contains("inconsistent"), "message: {msg}");
        assert!(msg.contains("inv.dtbtrc"), "message: {msg}");
        assert_eq!(err.path(), path);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_reader_matches_slurped_events() {
        let dir = std::env::temp_dir().join(format!("dtb-io-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.dtbtrc");
        let mut b = TraceBuilder::new("stream-io");
        b.exec_seconds(2.5).description("streamed");
        let a = b.alloc(300);
        b.alloc(7);
        b.free(a);
        b.alloc(64);
        let trace = b.finish();
        write_trace(&path, &trace).unwrap();

        let mut reader = TraceEventReader::open(&path).unwrap();
        assert_eq!(reader.meta(), &trace.meta);
        assert_eq!(reader.remaining(), trace.events.len() as u64);
        let mut events = Vec::new();
        while let Some(e) = reader.next_event().unwrap() {
            events.push(e);
        }
        assert_eq!(events, trace.events);
        assert_eq!(reader.remaining(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_reader_detects_truncation_and_names_the_file() {
        let dir = std::env::temp_dir().join(format!("dtb-io-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dtbtrc");
        let mut b = TraceBuilder::new("trunc");
        for _ in 0..10 {
            b.alloc(500);
        }
        let full = crate::format::encode(&b.finish());
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let mut reader = TraceEventReader::open(&path).unwrap();
        let err = loop {
            match reader.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("truncated file should not stream cleanly"),
                Err(e) => break e,
            }
        };
        assert!(matches!(
            err,
            TraceIoError::Format {
                error: FormatError::Truncated,
                ..
            }
        ));
        assert!(err.to_string().contains("t.dtbtrc"), "message: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_file_reports_format_error() {
        let dir = std::env::temp_dir().join(format!("dtb-io-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dtbtrc");
        std::fs::write(&path, b"this is not a trace").unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::Format { .. }));
        assert!(err.to_string().contains("malformed"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
