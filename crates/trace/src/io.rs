//! Trace file I/O: store and load traces in the binary format.
//!
//! Separating workload generation from simulation lets expensive traces be
//! generated once and replayed many times (the `tracegen` binary does
//! exactly that from the command line).

use crate::event::{Event, ObjectId, Trace, TraceError, TraceMeta};
use crate::format::{self, FormatError};
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

/// An I/O, format, or semantic failure while reading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// The file is not a valid trace.
    Format(FormatError),
    /// The file decoded, but its event stream is semantically malformed
    /// (e.g. a double free or an allocation-clock overflow).
    Invalid(TraceError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceIoError::Format(e) => write!(f, "trace file malformed: {e}"),
            TraceIoError::Invalid(e) => write!(f, "trace file inconsistent: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format(e) => Some(e),
            TraceIoError::Invalid(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<FormatError> for TraceIoError {
    fn from(e: FormatError) -> Self {
        TraceIoError::Format(e)
    }
}

/// Writes a trace to `path` in the binary format.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace(path: impl AsRef<Path>, trace: &Trace) -> Result<(), TraceIoError> {
    std::fs::write(path, format::encode(trace))?;
    Ok(())
}

/// Reads a trace from `path` and validates its event stream.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on filesystem failure,
/// [`TraceIoError::Format`] when the file is not a valid trace, and
/// [`TraceIoError::Invalid`] when the file decodes but its events are
/// semantically malformed ([`Trace::validate`]) — so a corrupt file
/// surfaces one precise diagnostic here instead of a failure downstream.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    let data = std::fs::read(path)?;
    let trace = format::decode(&data)?;
    trace.validate().map_err(TraceIoError::Invalid)?;
    Ok(trace)
}

/// Streaming reader over the *events* of a `DTBTRC01` trace file.
///
/// [`read_trace`] slurps the whole file and materializes every event;
/// for out-of-core processing (the `DTBCTC01` two-pass converter) this
/// reader decodes one event at a time through a [`BufReader`], keeping
/// memory independent of trace length. Event-stream *semantics* (double
/// frees, clock overflow, …) are **not** checked here — callers that
/// need them validate as they consume.
pub struct TraceEventReader {
    reader: BufReader<File>,
    meta: TraceMeta,
    remaining: u64,
    expected_id: u64,
}

impl TraceEventReader {
    /// Opens `path` and decodes the header (magic, metadata, event count).
    ///
    /// # Errors
    ///
    /// [`TraceIoError::Io`] on filesystem failure, [`TraceIoError::Format`]
    /// when the header is malformed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceIoError> {
        let mut reader = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        match reader.read_exact(&mut magic) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceIoError::Format(FormatError::BadMagic))
            }
            Err(e) => return Err(TraceIoError::Io(e)),
        }
        if &magic != format::MAGIC {
            return Err(TraceIoError::Format(FormatError::BadMagic));
        }
        let name = read_string(&mut reader)?;
        let description = read_string(&mut reader)?;
        let mut raw = [0u8; 8];
        read_exact_or_truncated(&mut reader, &mut raw)?;
        let exec_seconds = f64::from_be_bytes(raw);
        let remaining = read_varint(&mut reader)?;
        Ok(TraceEventReader {
            reader,
            meta: TraceMeta {
                name,
                description,
                exec_seconds,
            },
            remaining,
            expected_id: 0,
        })
    }

    /// The trace metadata decoded from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Events not yet read (from the header count).
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Decodes the next event, or `Ok(None)` once the header count is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// [`TraceIoError::Format`] when a record is malformed or the file
    /// ends early, [`TraceIoError::Io`] on filesystem failure.
    pub fn next_event(&mut self) -> Result<Option<Event>, TraceIoError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut tag = [0u8; 1];
        read_exact_or_truncated(&mut self.reader, &mut tag)?;
        match tag[0] {
            format::TAG_ALLOC => {
                let delta = read_varint(&mut self.reader)?;
                let id = self.expected_id.wrapping_add(delta);
                self.expected_id = id.wrapping_add(1);
                let size = read_varint(&mut self.reader)? as u32;
                Ok(Some(Event::Alloc {
                    id: ObjectId(id),
                    size,
                }))
            }
            format::TAG_FREE => {
                let id = read_varint(&mut self.reader)?;
                Ok(Some(Event::Free { id: ObjectId(id) }))
            }
            tag => Err(TraceIoError::Format(FormatError::BadTag(tag))),
        }
    }
}

/// `read_exact` that maps a clean EOF to [`FormatError::Truncated`].
fn read_exact_or_truncated(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), TraceIoError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceIoError::Format(FormatError::Truncated)
        } else {
            TraceIoError::Io(e)
        }
    })
}

/// Incremental LEB128 decode matching `format::get_varint`.
fn read_varint(reader: &mut impl Read) -> Result<u64, TraceIoError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        read_exact_or_truncated(reader, &mut byte)?;
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(TraceIoError::Format(FormatError::Truncated));
        }
    }
}

/// Incremental string decode matching `format::get_string`. Reads through
/// a `Take` so a corrupt length varint cannot trigger a huge up-front
/// allocation.
fn read_string(reader: &mut impl Read) -> Result<String, TraceIoError> {
    let len = read_varint(reader)?;
    let mut raw = Vec::with_capacity(len.min(1 << 16) as usize);
    let took = reader.by_ref().take(len).read_to_end(&mut raw)?;
    if (took as u64) < len {
        return Err(TraceIoError::Format(FormatError::Truncated));
    }
    String::from_utf8(raw).map_err(|_| TraceIoError::Format(FormatError::BadString))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("dtb-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dtbtrc");
        let mut b = TraceBuilder::new("file-io");
        let id = b.alloc(128);
        b.free(id);
        let trace = b.finish();
        write_trace(&path, &trace).unwrap();
        let loaded = read_trace(&path).unwrap();
        assert_eq!(loaded, trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = read_trace("/nonexistent/definitely/not/here.dtbtrc").unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn semantically_malformed_file_reports_invalid() {
        use crate::event::{Event, ObjectId, TraceMeta};
        let dir = std::env::temp_dir().join(format!("dtb-io-inv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv.dtbtrc");
        // Encodes fine (the format is a plain event list) but double-frees.
        let trace = Trace {
            meta: TraceMeta::named("inv"),
            events: vec![
                Event::Alloc {
                    id: ObjectId(0),
                    size: 8,
                },
                Event::Free { id: ObjectId(0) },
                Event::Free { id: ObjectId(0) },
            ],
        };
        std::fs::write(&path, crate::format::encode(&trace)).unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::Invalid(TraceError::DoubleFree { .. })
        ));
        assert!(err.to_string().contains("inconsistent"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_reader_matches_slurped_events() {
        let dir = std::env::temp_dir().join(format!("dtb-io-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.dtbtrc");
        let mut b = TraceBuilder::new("stream-io");
        b.exec_seconds(2.5).description("streamed");
        let a = b.alloc(300);
        b.alloc(7);
        b.free(a);
        b.alloc(64);
        let trace = b.finish();
        write_trace(&path, &trace).unwrap();

        let mut reader = TraceEventReader::open(&path).unwrap();
        assert_eq!(reader.meta(), &trace.meta);
        assert_eq!(reader.remaining(), trace.events.len() as u64);
        let mut events = Vec::new();
        while let Some(e) = reader.next_event().unwrap() {
            events.push(e);
        }
        assert_eq!(events, trace.events);
        assert_eq!(reader.remaining(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_reader_detects_truncation() {
        let dir = std::env::temp_dir().join(format!("dtb-io-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dtbtrc");
        let mut b = TraceBuilder::new("trunc");
        for _ in 0..10 {
            b.alloc(500);
        }
        let full = crate::format::encode(&b.finish());
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let mut reader = TraceEventReader::open(&path).unwrap();
        let err = loop {
            match reader.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("truncated file should not stream cleanly"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TraceIoError::Format(FormatError::Truncated)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_file_reports_format_error() {
        let dir = std::env::temp_dir().join(format!("dtb-io-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dtbtrc");
        std::fs::write(&path, b"this is not a trace").unwrap();
        let err = read_trace(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
