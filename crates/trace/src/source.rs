//! Streaming event sources: compiled-trace records one at a time.
//!
//! Everything upstream of the simulation engine used to be resident — a
//! whole [`CompiledTrace`] in memory, borrowed for the duration of a run.
//! [`EventSource`] breaks that coupling: it yields birth-ordered
//! [`ObjectLife`] records **one at a time**, so the engine's memory is
//! bounded by the live set plus a read chunk, not the trace length.
//!
//! Three implementations cover the pipeline:
//!
//! * [`CompiledSource`] — a cursor over an in-memory [`CompiledTrace`].
//!   Replay through it is bit-identical to the resident path; the engine's
//!   `&CompiledTrace` entry points are thin wrappers around it.
//! * [`crate::ctc::ShardReader`] — chunked replay of the on-disk
//!   `DTBCTC01` sharded compiled-trace format, for traces larger than RAM.
//! * [`SynthSource`] — unbounded on-the-fly synthetic generation from a
//!   [`WorkloadSpec`], for workloads that never exist as a file at all.
//!
//! Contract: records come in **strictly increasing birth order** (the
//! engine re-checks and reports violations as typed errors), and
//! [`EventSource::end`] is accurate once the source is exhausted.

use crate::ctc::CtcError;
use crate::event::{CompiledTrace, ObjectId, ObjectLife, TraceMeta};
use crate::synth::{SpecError, WorkloadSpec};
use dtb_core::time::VirtualTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A failure while producing the next record of a streaming source.
#[derive(Clone, Debug, PartialEq)]
pub enum SourceError {
    /// The on-disk shard store failed (I/O, corruption, checksum).
    Shard(CtcError),
    /// A synthetic generator hit an impossible state (e.g. allocation
    /// clock overflow).
    Synth(String),
    /// [`EventSource::seek`] was called on a source that cannot
    /// reposition (the trait's default).
    SeekUnsupported {
        /// Name of the source's trace.
        source: String,
    },
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Shard(e) => write!(f, "shard store: {e}"),
            SourceError::Synth(msg) => write!(f, "synthetic source: {msg}"),
            SourceError::SeekUnsupported { source } => {
                write!(f, "source `{source}` does not support seeking")
            }
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Shard(e) => Some(e),
            SourceError::Synth(_) | SourceError::SeekUnsupported { .. } => None,
        }
    }
}

impl From<CtcError> for SourceError {
    fn from(e: CtcError) -> Self {
        SourceError::Shard(e)
    }
}

/// Default number of records per [`EventBlock`] — sized so a block's
/// four columns (28 bytes of payload per record) fit comfortably in L2
/// while amortizing per-block bookkeeping over ~1k events.
pub const DEFAULT_BLOCK_EVENTS: usize = 1024;

/// A reusable struct-of-arrays batch of lifetime records.
///
/// The block drive loop asks sources for whole blocks
/// ([`EventSource::next_block`]) instead of one record at a time; the
/// four parallel columns are the same flat layout as
/// [`CompiledTrace`]'s and the on-disk `DTBCTC01` records, so bulk
/// fills are column copies and downstream consumers (validation
/// pre-scans, heap index builds) get autovectorizable slices. Death
/// times use [`EventBlock::NO_DEATH`] for immortal objects.
///
/// A mid-block source failure is *deferred*: the good prefix stays in
/// the columns and the error is stashed ([`EventBlock::set_error`])
/// for the consumer to surface after processing the prefix — exactly
/// the order the per-record path observes events and errors in.
#[derive(Debug, Default)]
pub struct EventBlock {
    ids: Vec<u64>,
    births: Vec<u64>,
    sizes: Vec<u32>,
    deaths: Vec<u64>,
    capacity: usize,
    error: Option<SourceError>,
}

impl EventBlock {
    /// Sentinel death time for "lives to the end of the trace" in the
    /// `deaths` column — the `DTBCTC01` on-disk convention. No real
    /// allocation clock reaches it.
    pub const NO_DEATH: u64 = u64::MAX;

    /// An empty block that holds at most `capacity` records per fill
    /// (floored at one).
    pub fn new(capacity: usize) -> EventBlock {
        let capacity = capacity.max(1);
        EventBlock {
            ids: Vec::with_capacity(capacity),
            births: Vec::with_capacity(capacity),
            sizes: Vec::with_capacity(capacity),
            deaths: Vec::with_capacity(capacity),
            capacity,
            error: None,
        }
    }

    /// Number of records currently in the block.
    pub fn len(&self) -> usize {
        self.births.len()
    }

    /// True when the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.births.is_empty()
    }

    /// Maximum records per fill.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Empties the block (and any stashed error) for the next fill.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.births.clear();
        self.sizes.clear();
        self.deaths.clear();
        self.error = None;
    }

    /// Appends one record.
    pub fn push(&mut self, life: ObjectLife) {
        self.ids.push(life.id.0);
        self.births.push(life.birth.as_u64());
        self.sizes.push(life.size);
        self.deaths
            .push(life.death.map_or(Self::NO_DEATH, |d| d.as_u64()));
    }

    /// Bulk-appends records from borrowed column slices (the
    /// [`CompiledSource`] fast path). Births and deaths share the block's
    /// raw-word layout (`NO_DEATH` sentinel included), so three of the
    /// four copies are straight `memcpy`s.
    pub fn push_columns(
        &mut self,
        ids: &[ObjectId],
        births: &[u64],
        sizes: &[u32],
        deaths: &[u64],
    ) {
        debug_assert!(ids.len() == births.len() && ids.len() == sizes.len());
        debug_assert_eq!(ids.len(), deaths.len());
        self.ids.extend(ids.iter().map(|id| id.0));
        self.births.extend_from_slice(births);
        self.sizes.extend_from_slice(sizes);
        self.deaths.extend_from_slice(deaths);
    }

    /// Stashes a deferred source error (see the type docs).
    pub fn set_error(&mut self, error: SourceError) {
        self.error = Some(error);
    }

    /// The stashed error, if any.
    pub fn error(&self) -> Option<&SourceError> {
        self.error.as_ref()
    }

    /// Takes the stashed error, leaving the block clean.
    pub fn take_error(&mut self) -> Option<SourceError> {
        self.error.take()
    }

    /// Object ids, one per record.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Birth clocks, one per record (strictly increasing for a
    /// well-formed stream).
    pub fn births(&self) -> &[u64] {
        &self.births
    }

    /// Object sizes in bytes, one per record.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Death clocks, one per record ([`EventBlock::NO_DEATH`] =
    /// immortal).
    pub fn deaths(&self) -> &[u64] {
        &self.deaths
    }

    /// Reassembles record `i` (the per-event replay path).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn life(&self, i: usize) -> ObjectLife {
        ObjectLife {
            id: ObjectId(self.ids[i]),
            birth: VirtualTime::from_bytes(self.births[i]),
            size: self.sizes[i],
            death: (self.deaths[i] != Self::NO_DEATH)
                .then(|| VirtualTime::from_bytes(self.deaths[i])),
        }
    }
}

/// A stream of birth-ordered object-lifetime records.
///
/// Object-safe: the executor holds sources as `Box<dyn EventSource +
/// Send>`, while the engine's hot path stays generic (and monomorphized)
/// over concrete implementations.
pub trait EventSource {
    /// The trace metadata (name, description, execution seconds).
    fn meta(&self) -> &TraceMeta;

    /// Total record count when known up front (`None` for unbounded
    /// generators). Consumers may use it to size buffers but must not
    /// trust it for correctness.
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// The next record in birth order, `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`SourceError`] when the underlying store or generator
    /// fails; the stream is dead after an error.
    fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError>;

    /// Fills `block` with the next up-to-`capacity` records and returns
    /// how many landed.
    ///
    /// Semantically a loop of [`next_record`](EventSource::next_record)
    /// calls — and that is the default implementation — but concrete
    /// sources override it with bulk column work: [`CompiledSource`]
    /// copies borrowed trace columns, the `DTBCTC01`
    /// [`ShardReader`](crate::ctc::ShardReader) decodes whole shard
    /// chunks in one pass, [`SynthSource`] generates records in a tight
    /// loop. A mid-block failure is stashed in the block (the good
    /// prefix is kept, per [`EventBlock`]'s deferred-error contract);
    /// `0` with no stashed error means end of stream.
    fn next_block(&mut self, block: &mut EventBlock) -> usize {
        block.clear();
        while block.len() < block.capacity() {
            match self.next_record() {
                Ok(Some(life)) => block.push(life),
                Ok(None) => break,
                Err(e) => {
                    block.set_error(e);
                    break;
                }
            }
        }
        block.len()
    }

    /// The end-of-trace allocation clock. Guaranteed accurate only after
    /// [`next_record`](EventSource::next_record) has returned `Ok(None)`;
    /// sources that know the end up front (shard stores, compiled traces)
    /// report it immediately.
    fn end(&self) -> VirtualTime;

    /// Repositions the stream so the next
    /// [`next_record`](EventSource::next_record) call returns the first
    /// record with `birth > clock` (births are strictly increasing, so
    /// `clock` = "last birth already consumed" resumes exactly where a
    /// prior run stopped). Seeking backwards and forwards are both
    /// allowed; checkpoint resume is the motivating caller.
    ///
    /// # Errors
    ///
    /// The default returns [`SourceError::SeekUnsupported`]; seekable
    /// implementations propagate their own store errors.
    fn seek(&mut self, clock: VirtualTime) -> Result<(), SourceError> {
        let _ = clock;
        Err(SourceError::SeekUnsupported {
            source: self.meta().name.clone(),
        })
    }
}

/// In-memory [`EventSource`]: a cursor over a borrowed [`CompiledTrace`].
pub struct CompiledSource<'a> {
    trace: &'a CompiledTrace,
    pos: usize,
}

impl<'a> CompiledSource<'a> {
    /// Starts a cursor at the first record.
    pub fn new(trace: &'a CompiledTrace) -> CompiledSource<'a> {
        CompiledSource { trace, pos: 0 }
    }

    /// The unconsumed remainder of the trace as borrowed column slices
    /// `(ids, births, sizes, deaths)` — zero-copy views straight into the
    /// compiled trace's struct-of-arrays storage. Births and deaths are
    /// raw clock words ([`CompiledTrace::NO_DEATH`] = immortal), the same
    /// layout [`EventBlock`] exposes.
    pub fn columns(&self) -> (&'a [ObjectId], &'a [u64], &'a [u32], &'a [u64]) {
        (
            &self.trace.ids()[self.pos..],
            &self.trace.births()[self.pos..],
            &self.trace.sizes()[self.pos..],
            &self.trace.deaths()[self.pos..],
        )
    }
}

impl EventSource for CompiledSource<'_> {
    fn meta(&self) -> &TraceMeta {
        &self.trace.meta
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.trace.len())
    }

    fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError> {
        if self.pos >= self.trace.len() {
            return Ok(None);
        }
        let life = self.trace.life(self.pos);
        self.pos += 1;
        Ok(Some(life))
    }

    fn next_block(&mut self, block: &mut EventBlock) -> usize {
        block.clear();
        let n = (self.trace.len() - self.pos).min(block.capacity());
        let (ids, births, sizes, deaths) = self.columns();
        block.push_columns(&ids[..n], &births[..n], &sizes[..n], &deaths[..n]);
        self.pos += n;
        n
    }

    fn end(&self) -> VirtualTime {
        self.trace.end
    }

    fn seek(&mut self, clock: VirtualTime) -> Result<(), SourceError> {
        let clock = clock.as_u64();
        self.pos = self.trace.births().partition_point(|&b| b <= clock);
        Ok(())
    }
}

/// Unbounded synthetic [`EventSource`]: generates a [`WorkloadSpec`]'s
/// object stream on the fly, in O(1) memory per record.
///
/// Mirrors [`WorkloadSpec::generate`]'s structure — permanent startup
/// ramp, then the per-class mixture — but resolves each object's death
/// **exactly** at sampling time instead of snapping it to the next `Free`
/// flush point the way the event-stream generator does. The two are
/// therefore *statistically* equivalent, not byte-identical; use
/// [`collect_source`] when a resident copy of exactly this stream is
/// needed (e.g. for differential testing).
///
/// Deterministic: the same spec (including seed) always yields the same
/// stream.
pub struct SynthSource {
    spec: WorkloadSpec,
    meta: TraceMeta,
    rng: StdRng,
    weights: Vec<f64>,
    weight_total: f64,
    clock: u64,
    next_id: u64,
    finished: bool,
    /// One-record lookahead filled by [`EventSource::seek`]: skipping
    /// forward overshoots by exactly one generated record, which is
    /// stashed here and returned by the next `next_record` call.
    peeked: Option<ObjectLife>,
    /// Generator snapshots taken every `seek_stride` records, so `seek`
    /// restores the nearest one and regenerates at most one stride
    /// instead of the whole prefix.
    seek_points: Vec<SeekPoint>,
    /// Record count between seek points.
    seek_stride: u64,
    /// `next_id` at which the next seek point is captured. After a seek
    /// restores an older snapshot this stays past the *last* recorded
    /// point, so replaying through checkpointed territory never records
    /// duplicates.
    next_ckp_at: u64,
    /// Total records ever generated, *including* regeneration work done
    /// inside `seek` — the observable the seek-cost regression test
    /// bounds.
    generated: u64,
}

/// A restorable snapshot of the generator between two records. The
/// stream is a pure function of `(rng, clock, next_id, finished)`, so
/// restoring these four fields replays it exactly.
struct SeekPoint {
    clock: u64,
    next_id: u64,
    rng: StdRng,
    finished: bool,
}

/// Default [`SynthSource`] seek-point stride: ~200 bytes of snapshot per
/// 64k records keeps even multi-billion-record streams' snapshot memory
/// trivial while making `seek` O(stride).
pub const DEFAULT_SEEK_STRIDE: u64 = 65_536;

impl SynthSource {
    /// Validates the spec and positions the stream at its first record.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec fails [`WorkloadSpec::validate`].
    pub fn new(spec: WorkloadSpec) -> Result<SynthSource, SpecError> {
        SynthSource::with_seek_stride(spec, DEFAULT_SEEK_STRIDE)
    }

    /// [`SynthSource::new`] with an explicit seek-point stride (records
    /// between generator snapshots; floored at one). Smaller strides make
    /// [`EventSource::seek`] proportionally cheaper at the cost of more
    /// snapshot memory.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec fails [`WorkloadSpec::validate`].
    pub fn with_seek_stride(spec: WorkloadSpec, stride: u64) -> Result<SynthSource, SpecError> {
        spec.validate()?;
        let meta = TraceMeta {
            name: spec.name.clone(),
            description: spec.description.clone(),
            exec_seconds: spec.exec_seconds,
        };
        let rng = StdRng::seed_from_u64(spec.seed);
        let weights: Vec<f64> = spec
            .classes
            .iter()
            .map(|c| c.byte_fraction / c.size.mean().max(1.0))
            .collect();
        let weight_total = weights.iter().sum();
        let stride = stride.max(1);
        let origin = SeekPoint {
            clock: 0,
            next_id: 0,
            rng: rng.clone(),
            finished: false,
        };
        Ok(SynthSource {
            spec,
            meta,
            rng,
            weights,
            weight_total,
            clock: 0,
            next_id: 0,
            finished: false,
            peeked: None,
            seek_points: vec![origin],
            seek_stride: stride,
            next_ckp_at: stride,
            generated: 0,
        })
    }

    /// Records generated so far.
    pub fn emitted(&self) -> u64 {
        self.next_id
    }

    /// Total generation work performed, in records — unlike
    /// [`SynthSource::emitted`] this keeps counting through `seek`'s
    /// regeneration, so a test can assert a seek cost at most one
    /// stride.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Generates the next record, ignoring the lookahead slot. The whole
    /// generator: startup ramp, steady-state class mixture, seek-point
    /// capture.
    fn gen_next(&mut self) -> Result<Option<ObjectLife>, SourceError> {
        if self.next_id == self.next_ckp_at {
            self.seek_points.push(SeekPoint {
                clock: self.clock,
                next_id: self.next_id,
                rng: self.rng.clone(),
                finished: self.finished,
            });
            self.next_ckp_at += self.seek_stride;
        }
        if self.finished {
            return Ok(None);
        }
        // Startup: the initial permanent structure (never dies).
        if self.clock < self.spec.initial_permanent {
            let size = self
                .spec
                .initial_object_size
                .min((self.spec.initial_permanent - self.clock).max(1) as u32)
                .max(1);
            self.clock += size as u64;
            let id = self.next_id;
            self.next_id += 1;
            self.generated += 1;
            return Ok(Some(ObjectLife {
                id: ObjectId(id),
                birth: VirtualTime::from_bytes(self.clock),
                size,
                death: None,
            }));
        }
        if self.clock >= self.spec.total_alloc || self.weight_total <= 0.0 {
            self.finished = true;
            return Ok(None);
        }
        // Steady state: pick a class by byte-weight, sample size and exact
        // death on the allocation clock.
        let mut pick = self.rng.gen_range(0.0..self.weight_total);
        let mut chosen = self.spec.classes.len() - 1;
        for (i, w) in self.weights.iter().enumerate() {
            if pick < *w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        let class = &self.spec.classes[chosen];
        let size = class.size.sample(&mut self.rng);
        self.clock = self
            .clock
            .checked_add(size as u64)
            .ok_or_else(|| SourceError::Synth("allocation clock overflowed u64".to_string()))?;
        let birth = self.clock;
        let death = if class.lifetime.is_phase_local() {
            let period = self.spec.phase_period.expect("validated at construction");
            Some((birth / period + 1) * period)
        } else {
            class.lifetime.sample(&mut self.rng).map(|l| birth + l)
        };
        let id = self.next_id;
        self.next_id += 1;
        self.generated += 1;
        Ok(Some(ObjectLife {
            id: ObjectId(id),
            birth: VirtualTime::from_bytes(birth),
            size,
            death: death.map(VirtualTime::from_bytes),
        }))
    }
}

impl EventSource for SynthSource {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError> {
        if let Some(life) = self.peeked.take() {
            return Ok(Some(life));
        }
        self.gen_next()
    }

    fn next_block(&mut self, block: &mut EventBlock) -> usize {
        block.clear();
        if let Some(life) = self.peeked.take() {
            block.push(life);
        }
        while block.len() < block.capacity() {
            match self.gen_next() {
                Ok(Some(life)) => block.push(life),
                Ok(None) => break,
                Err(e) => {
                    block.set_error(e);
                    break;
                }
            }
        }
        block.len()
    }

    fn end(&self) -> VirtualTime {
        VirtualTime::from_bytes(self.clock)
    }

    fn seek(&mut self, clock: VirtualTime) -> Result<(), SourceError> {
        // The stream is a pure function of the spec's seed, and the
        // generator snapshots itself every `seek_stride` records: restore
        // the last snapshot at or before the target clock and regenerate
        // forward — at most one stride plus the overshoot distance, never
        // the whole prefix. Records up to (and including) the target clock
        // are discarded; the first overshooting record is kept in the
        // lookahead slot so no record is lost.
        let at = self
            .seek_points
            .partition_point(|p| p.clock <= clock.as_u64());
        // Index 0 holds the origin snapshot (clock 0 <= any target), so a
        // predecessor always exists.
        let point = &self.seek_points[at - 1];
        self.clock = point.clock;
        self.next_id = point.next_id;
        self.rng = point.rng.clone();
        self.finished = point.finished;
        self.peeked = None;
        // Resume snapshotting only past the last recorded point so the
        // replay below never records duplicates.
        self.next_ckp_at = self
            .seek_points
            .last()
            .expect("origin snapshot always present")
            .next_id
            + self.seek_stride;
        loop {
            match self.gen_next()? {
                Some(life) if life.birth <= clock => continue,
                Some(life) => {
                    self.peeked = Some(life);
                    break;
                }
                None => break,
            }
        }
        Ok(())
    }
}

/// Drains a source into a resident [`CompiledTrace`].
///
/// The inverse of [`CompiledSource`]; used by differential tests to get
/// the in-memory twin of a streamed run, and by tools that want to
/// materialize a synthetic stream.
///
/// # Errors
///
/// Propagates the source's [`SourceError`].
pub fn collect_source(
    source: &mut (impl EventSource + ?Sized),
) -> Result<CompiledTrace, SourceError> {
    let meta = source.meta().clone();
    let mut lives = Vec::new();
    while let Some(life) = source.next_record()? {
        lives.push(life);
    }
    Ok(CompiledTrace::from_lives(meta, source.end(), lives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::lifetime::{LifetimeDist, SizeDist};
    use crate::synth::ClassSpec;

    fn compiled() -> CompiledTrace {
        let mut b = TraceBuilder::new("src-test");
        let a = b.alloc(10);
        b.alloc(20);
        b.free(a);
        b.alloc(5);
        b.finish().compile().unwrap()
    }

    #[test]
    fn compiled_source_replays_every_record_in_order() {
        let c = compiled();
        let mut src = CompiledSource::new(&c);
        assert_eq!(src.len_hint(), Some(3));
        assert_eq!(src.meta(), &c.meta);
        assert_eq!(src.end(), c.end);
        let mut seen = Vec::new();
        while let Some(l) = src.next_record().unwrap() {
            seen.push(l);
        }
        assert_eq!(seen, c.lives().collect::<Vec<_>>());
        // Exhausted source stays exhausted.
        assert_eq!(src.next_record().unwrap(), None);
    }

    #[test]
    fn collect_source_round_trips_a_compiled_trace() {
        let c = compiled();
        let back = collect_source(&mut CompiledSource::new(&c)).unwrap();
        assert_eq!(back, c);
    }

    fn synth_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "synth-src".into(),
            description: "streaming generator".into(),
            exec_seconds: 1.0,
            total_alloc: 300_000,
            initial_permanent: 20_000,
            initial_object_size: 512,
            classes: vec![
                ClassSpec::new(
                    "short",
                    0.8,
                    SizeDist::Uniform { min: 16, max: 128 },
                    LifetimeDist::Exponential { mean: 4_000.0 },
                ),
                ClassSpec::new(
                    "immortal",
                    0.2,
                    SizeDist::Fixed(256),
                    LifetimeDist::Immortal,
                ),
            ],
            phase_period: None,
            seed: 11,
        }
    }

    #[test]
    fn synth_source_is_deterministic_and_well_formed() {
        let a = collect_source(&mut SynthSource::new(synth_spec()).unwrap()).unwrap();
        let b = collect_source(&mut SynthSource::new(synth_spec()).unwrap()).unwrap();
        assert_eq!(a, b);
        assert!(a.len() > 1_000);
        a.validate().expect("stream satisfies compiled invariants");
        assert!(a.births_strictly_increasing());
    }

    #[test]
    fn synth_source_end_matches_total_allocation() {
        let mut src = SynthSource::new(synth_spec()).unwrap();
        let c = collect_source(&mut src).unwrap();
        // End clock = total bytes allocated, within one object of target.
        assert_eq!(c.end, src.end());
        let end = c.end.as_u64();
        assert!((300_000..300_000 + 4_096).contains(&end), "end {end}");
    }

    #[test]
    fn synth_source_startup_objects_are_permanent() {
        let c = collect_source(&mut SynthSource::new(synth_spec()).unwrap()).unwrap();
        for l in c.lives().take_while(|l| l.birth.as_u64() <= 20_000) {
            assert_eq!(l.death, None, "startup object {:?} died", l.id);
        }
    }

    #[test]
    fn synth_source_phase_local_deaths_land_on_phase_boundaries() {
        let spec = WorkloadSpec {
            name: "phases".into(),
            description: String::new(),
            exec_seconds: 1.0,
            total_alloc: 100_000,
            initial_permanent: 0,
            initial_object_size: 1,
            classes: vec![ClassSpec::new(
                "pass",
                1.0,
                SizeDist::Fixed(100),
                LifetimeDist::PhaseLocal,
            )],
            phase_period: Some(10_000),
            seed: 3,
        };
        let c = collect_source(&mut SynthSource::new(spec).unwrap()).unwrap();
        for l in c.lives() {
            let d = l.death.expect("phase-local objects always die").as_u64();
            assert_eq!(d % 10_000, 0, "death {d} not on a phase boundary");
            assert!(d > l.birth.as_u64());
        }
    }

    #[test]
    fn synth_source_rejects_invalid_specs() {
        let mut spec = synth_spec();
        spec.total_alloc = 0;
        assert!(SynthSource::new(spec).is_err());
    }

    /// Drains `src` after seeking to `clock` and checks the tail equals
    /// the records of an untouched twin with `birth > clock`.
    fn assert_seek_matches_skip(mut src: impl EventSource, mut twin: impl EventSource, clock: u64) {
        let clock = VirtualTime::from_bytes(clock);
        src.seek(clock).unwrap();
        let mut tail = Vec::new();
        while let Some(l) = src.next_record().unwrap() {
            tail.push(l);
        }
        let mut expected = Vec::new();
        while let Some(l) = twin.next_record().unwrap() {
            if l.birth > clock {
                expected.push(l);
            }
        }
        assert_eq!(tail, expected, "seek({clock:?})");
    }

    #[test]
    fn compiled_source_seek_resumes_after_clock() {
        let c = compiled();
        for clock in [0u64, 5, 10, 29, 30, 31, 35, 100] {
            assert_seek_matches_skip(CompiledSource::new(&c), CompiledSource::new(&c), clock);
        }
        // Seeking backwards after exhaustion rewinds.
        let mut src = CompiledSource::new(&c);
        while src.next_record().unwrap().is_some() {}
        src.seek(VirtualTime::ZERO).unwrap();
        assert_eq!(
            collect_source(&mut src).unwrap().lives().count(),
            c.lives().count()
        );
    }

    #[test]
    fn synth_source_seek_resumes_after_clock() {
        for clock in [0u64, 1, 19_999, 20_000, 150_000, 299_000, 400_000] {
            assert_seek_matches_skip(
                SynthSource::new(synth_spec()).unwrap(),
                SynthSource::new(synth_spec()).unwrap(),
                clock,
            );
        }
    }

    #[test]
    fn synth_source_seek_mid_stream_discards_consumed_state() {
        // Seek must reposition absolutely, not relative to what was read.
        let mut a = SynthSource::new(synth_spec()).unwrap();
        for _ in 0..500 {
            a.next_record().unwrap();
        }
        assert_seek_matches_skip(a, SynthSource::new(synth_spec()).unwrap(), 40_000);
    }

    #[test]
    fn synth_source_seek_cost_is_bounded_by_one_stride() {
        // The stride checkpoints must make seek O(stride): restoring the
        // nearest snapshot and replaying forward regenerates at most one
        // stride of records (plus the single overshoot record), no matter
        // how deep into the stream the target is.
        let stride = 256u64;
        let mut src = SynthSource::with_seek_stride(synth_spec(), stride).unwrap();
        while src.next_record().unwrap().is_some() {}
        let drained = src.generated();
        assert!(drained > 4 * stride, "stream too short to be probative");
        for clock in [1u64, 25_000, 150_000, 290_000] {
            let before = src.generated();
            src.seek(VirtualTime::from_bytes(clock)).unwrap();
            let cost = src.generated() - before;
            assert!(
                cost <= stride + 1,
                "seek({clock}) regenerated {cost} records, stride {stride}"
            );
        }
        // Sanity: without checkpoints a seek near the end would have
        // regenerated nearly the whole stream.
        assert!(drained > 2 * (stride + 1));
    }

    /// Hides an [`EventSource`]'s `next_block` override so the trait's
    /// per-record default is what gets tested.
    struct DefaultBlocking<S>(S);

    impl<S: EventSource> EventSource for DefaultBlocking<S> {
        fn meta(&self) -> &TraceMeta {
            self.0.meta()
        }
        fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError> {
            self.0.next_record()
        }
        fn end(&self) -> VirtualTime {
            self.0.end()
        }
        fn seek(&mut self, clock: VirtualTime) -> Result<(), SourceError> {
            self.0.seek(clock)
        }
    }

    /// Drains `blocked` via `next_block` at the given capacity and checks
    /// the record stream equals draining `recorded` one record at a time.
    fn assert_blocks_match_records(
        mut blocked: impl EventSource,
        mut recorded: impl EventSource,
        capacity: usize,
    ) {
        let mut block = EventBlock::new(capacity);
        let mut via_blocks = Vec::new();
        loop {
            let n = blocked.next_block(&mut block);
            assert!(block.take_error().is_none());
            if n == 0 {
                break;
            }
            assert!(n <= block.capacity());
            for i in 0..n {
                via_blocks.push(block.life(i));
            }
        }
        let mut via_records = Vec::new();
        while let Some(l) = recorded.next_record().unwrap() {
            via_records.push(l);
        }
        assert_eq!(via_blocks, via_records, "capacity {capacity}");
    }

    #[test]
    fn next_block_matches_next_record_for_every_source() {
        let c = compiled();
        for cap in [1usize, 3, 7, 1024] {
            assert_blocks_match_records(CompiledSource::new(&c), CompiledSource::new(&c), cap);
            assert_blocks_match_records(
                DefaultBlocking(CompiledSource::new(&c)),
                CompiledSource::new(&c),
                cap,
            );
            assert_blocks_match_records(
                SynthSource::new(synth_spec()).unwrap(),
                SynthSource::new(synth_spec()).unwrap(),
                cap,
            );
        }
    }

    #[test]
    fn next_block_after_seek_starts_with_the_lookahead_record() {
        // A seek stashes the first overshooting record in the lookahead
        // slot; block reads must surface it first, exactly once.
        for cap in [1usize, 5, 64] {
            let mut blocked = SynthSource::new(synth_spec()).unwrap();
            blocked.seek(VirtualTime::from_bytes(40_000)).unwrap();
            let mut recorded = SynthSource::new(synth_spec()).unwrap();
            recorded.seek(VirtualTime::from_bytes(40_000)).unwrap();
            assert_blocks_match_records(blocked, recorded, cap);
        }
    }

    #[test]
    fn event_block_clamps_capacity_and_resets_cleanly() {
        let mut b = EventBlock::new(0);
        assert_eq!(b.capacity(), 1);
        assert!(b.is_empty());
        b.push(ObjectLife {
            id: ObjectId(7),
            birth: VirtualTime::from_bytes(10),
            size: 4,
            death: None,
        });
        b.set_error(SourceError::Synth("boom".into()));
        assert_eq!(b.len(), 1);
        assert_eq!(b.deaths()[0], EventBlock::NO_DEATH);
        assert_eq!(b.life(0).death, None);
        b.clear();
        assert!(b.is_empty());
        assert!(b.error().is_none());
    }
}
