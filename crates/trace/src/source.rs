//! Streaming event sources: compiled-trace records one at a time.
//!
//! Everything upstream of the simulation engine used to be resident — a
//! whole [`CompiledTrace`] in memory, borrowed for the duration of a run.
//! [`EventSource`] breaks that coupling: it yields birth-ordered
//! [`ObjectLife`] records **one at a time**, so the engine's memory is
//! bounded by the live set plus a read chunk, not the trace length.
//!
//! Three implementations cover the pipeline:
//!
//! * [`CompiledSource`] — a cursor over an in-memory [`CompiledTrace`].
//!   Replay through it is bit-identical to the resident path; the engine's
//!   `&CompiledTrace` entry points are thin wrappers around it.
//! * [`crate::ctc::ShardReader`] — chunked replay of the on-disk
//!   `DTBCTC01` sharded compiled-trace format, for traces larger than RAM.
//! * [`SynthSource`] — unbounded on-the-fly synthetic generation from a
//!   [`WorkloadSpec`], for workloads that never exist as a file at all.
//!
//! Contract: records come in **strictly increasing birth order** (the
//! engine re-checks and reports violations as typed errors), and
//! [`EventSource::end`] is accurate once the source is exhausted.

use crate::ctc::CtcError;
use crate::event::{CompiledTrace, ObjectId, ObjectLife, TraceMeta};
use crate::synth::{SpecError, WorkloadSpec};
use dtb_core::time::VirtualTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A failure while producing the next record of a streaming source.
#[derive(Clone, Debug, PartialEq)]
pub enum SourceError {
    /// The on-disk shard store failed (I/O, corruption, checksum).
    Shard(CtcError),
    /// A synthetic generator hit an impossible state (e.g. allocation
    /// clock overflow).
    Synth(String),
    /// [`EventSource::seek`] was called on a source that cannot
    /// reposition (the trait's default).
    SeekUnsupported {
        /// Name of the source's trace.
        source: String,
    },
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Shard(e) => write!(f, "shard store: {e}"),
            SourceError::Synth(msg) => write!(f, "synthetic source: {msg}"),
            SourceError::SeekUnsupported { source } => {
                write!(f, "source `{source}` does not support seeking")
            }
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Shard(e) => Some(e),
            SourceError::Synth(_) | SourceError::SeekUnsupported { .. } => None,
        }
    }
}

impl From<CtcError> for SourceError {
    fn from(e: CtcError) -> Self {
        SourceError::Shard(e)
    }
}

/// A stream of birth-ordered object-lifetime records.
///
/// Object-safe: the executor holds sources as `Box<dyn EventSource +
/// Send>`, while the engine's hot path stays generic (and monomorphized)
/// over concrete implementations.
pub trait EventSource {
    /// The trace metadata (name, description, execution seconds).
    fn meta(&self) -> &TraceMeta;

    /// Total record count when known up front (`None` for unbounded
    /// generators). Consumers may use it to size buffers but must not
    /// trust it for correctness.
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// The next record in birth order, `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`SourceError`] when the underlying store or generator
    /// fails; the stream is dead after an error.
    fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError>;

    /// The end-of-trace allocation clock. Guaranteed accurate only after
    /// [`next_record`](EventSource::next_record) has returned `Ok(None)`;
    /// sources that know the end up front (shard stores, compiled traces)
    /// report it immediately.
    fn end(&self) -> VirtualTime;

    /// Repositions the stream so the next
    /// [`next_record`](EventSource::next_record) call returns the first
    /// record with `birth > clock` (births are strictly increasing, so
    /// `clock` = "last birth already consumed" resumes exactly where a
    /// prior run stopped). Seeking backwards and forwards are both
    /// allowed; checkpoint resume is the motivating caller.
    ///
    /// # Errors
    ///
    /// The default returns [`SourceError::SeekUnsupported`]; seekable
    /// implementations propagate their own store errors.
    fn seek(&mut self, clock: VirtualTime) -> Result<(), SourceError> {
        let _ = clock;
        Err(SourceError::SeekUnsupported {
            source: self.meta().name.clone(),
        })
    }
}

/// In-memory [`EventSource`]: a cursor over a borrowed [`CompiledTrace`].
pub struct CompiledSource<'a> {
    trace: &'a CompiledTrace,
    pos: usize,
}

impl<'a> CompiledSource<'a> {
    /// Starts a cursor at the first record.
    pub fn new(trace: &'a CompiledTrace) -> CompiledSource<'a> {
        CompiledSource { trace, pos: 0 }
    }
}

impl EventSource for CompiledSource<'_> {
    fn meta(&self) -> &TraceMeta {
        &self.trace.meta
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.trace.len())
    }

    fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError> {
        if self.pos >= self.trace.len() {
            return Ok(None);
        }
        let life = self.trace.life(self.pos);
        self.pos += 1;
        Ok(Some(life))
    }

    fn end(&self) -> VirtualTime {
        self.trace.end
    }

    fn seek(&mut self, clock: VirtualTime) -> Result<(), SourceError> {
        self.pos = self.trace.births().partition_point(|b| *b <= clock);
        Ok(())
    }
}

/// Unbounded synthetic [`EventSource`]: generates a [`WorkloadSpec`]'s
/// object stream on the fly, in O(1) memory per record.
///
/// Mirrors [`WorkloadSpec::generate`]'s structure — permanent startup
/// ramp, then the per-class mixture — but resolves each object's death
/// **exactly** at sampling time instead of snapping it to the next `Free`
/// flush point the way the event-stream generator does. The two are
/// therefore *statistically* equivalent, not byte-identical; use
/// [`collect_source`] when a resident copy of exactly this stream is
/// needed (e.g. for differential testing).
///
/// Deterministic: the same spec (including seed) always yields the same
/// stream.
pub struct SynthSource {
    spec: WorkloadSpec,
    meta: TraceMeta,
    rng: StdRng,
    weights: Vec<f64>,
    weight_total: f64,
    clock: u64,
    next_id: u64,
    finished: bool,
    /// One-record lookahead filled by [`EventSource::seek`]: skipping
    /// forward overshoots by exactly one generated record, which is
    /// stashed here and returned by the next `next_record` call.
    peeked: Option<ObjectLife>,
}

impl SynthSource {
    /// Validates the spec and positions the stream at its first record.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec fails [`WorkloadSpec::validate`].
    pub fn new(spec: WorkloadSpec) -> Result<SynthSource, SpecError> {
        spec.validate()?;
        let meta = TraceMeta {
            name: spec.name.clone(),
            description: spec.description.clone(),
            exec_seconds: spec.exec_seconds,
        };
        let rng = StdRng::seed_from_u64(spec.seed);
        let weights: Vec<f64> = spec
            .classes
            .iter()
            .map(|c| c.byte_fraction / c.size.mean().max(1.0))
            .collect();
        let weight_total = weights.iter().sum();
        Ok(SynthSource {
            spec,
            meta,
            rng,
            weights,
            weight_total,
            clock: 0,
            next_id: 0,
            finished: false,
            peeked: None,
        })
    }

    /// Records generated so far.
    pub fn emitted(&self) -> u64 {
        self.next_id
    }
}

impl EventSource for SynthSource {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn next_record(&mut self) -> Result<Option<ObjectLife>, SourceError> {
        if let Some(life) = self.peeked.take() {
            return Ok(Some(life));
        }
        if self.finished {
            return Ok(None);
        }
        // Startup: the initial permanent structure (never dies).
        if self.clock < self.spec.initial_permanent {
            let size = self
                .spec
                .initial_object_size
                .min((self.spec.initial_permanent - self.clock).max(1) as u32)
                .max(1);
            self.clock += size as u64;
            let id = self.next_id;
            self.next_id += 1;
            return Ok(Some(ObjectLife {
                id: ObjectId(id),
                birth: VirtualTime::from_bytes(self.clock),
                size,
                death: None,
            }));
        }
        if self.clock >= self.spec.total_alloc || self.weight_total <= 0.0 {
            self.finished = true;
            return Ok(None);
        }
        // Steady state: pick a class by byte-weight, sample size and exact
        // death on the allocation clock.
        let mut pick = self.rng.gen_range(0.0..self.weight_total);
        let mut chosen = self.spec.classes.len() - 1;
        for (i, w) in self.weights.iter().enumerate() {
            if pick < *w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        let class = &self.spec.classes[chosen];
        let size = class.size.sample(&mut self.rng);
        self.clock = self
            .clock
            .checked_add(size as u64)
            .ok_or_else(|| SourceError::Synth("allocation clock overflowed u64".to_string()))?;
        let birth = self.clock;
        let death = if class.lifetime.is_phase_local() {
            let period = self.spec.phase_period.expect("validated at construction");
            Some((birth / period + 1) * period)
        } else {
            class.lifetime.sample(&mut self.rng).map(|l| birth + l)
        };
        let id = self.next_id;
        self.next_id += 1;
        Ok(Some(ObjectLife {
            id: ObjectId(id),
            birth: VirtualTime::from_bytes(birth),
            size,
            death: death.map(VirtualTime::from_bytes),
        }))
    }

    fn end(&self) -> VirtualTime {
        VirtualTime::from_bytes(self.clock)
    }

    fn seek(&mut self, clock: VirtualTime) -> Result<(), SourceError> {
        // The stream is a pure function of the spec's seed: regenerate
        // from the start and discard records up to (and including) the
        // target clock. The first overshooting record is kept in the
        // lookahead slot so no record is lost.
        let mut fresh =
            SynthSource::new(self.spec.clone()).map_err(|e| SourceError::Synth(e.to_string()))?;
        loop {
            match fresh.next_record()? {
                Some(life) if life.birth <= clock => continue,
                Some(life) => {
                    fresh.peeked = Some(life);
                    break;
                }
                None => break,
            }
        }
        *self = fresh;
        Ok(())
    }
}

/// Drains a source into a resident [`CompiledTrace`].
///
/// The inverse of [`CompiledSource`]; used by differential tests to get
/// the in-memory twin of a streamed run, and by tools that want to
/// materialize a synthetic stream.
///
/// # Errors
///
/// Propagates the source's [`SourceError`].
pub fn collect_source(
    source: &mut (impl EventSource + ?Sized),
) -> Result<CompiledTrace, SourceError> {
    let meta = source.meta().clone();
    let mut lives = Vec::new();
    while let Some(life) = source.next_record()? {
        lives.push(life);
    }
    Ok(CompiledTrace::from_lives(meta, source.end(), lives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::lifetime::{LifetimeDist, SizeDist};
    use crate::synth::ClassSpec;

    fn compiled() -> CompiledTrace {
        let mut b = TraceBuilder::new("src-test");
        let a = b.alloc(10);
        b.alloc(20);
        b.free(a);
        b.alloc(5);
        b.finish().compile().unwrap()
    }

    #[test]
    fn compiled_source_replays_every_record_in_order() {
        let c = compiled();
        let mut src = CompiledSource::new(&c);
        assert_eq!(src.len_hint(), Some(3));
        assert_eq!(src.meta(), &c.meta);
        assert_eq!(src.end(), c.end);
        let mut seen = Vec::new();
        while let Some(l) = src.next_record().unwrap() {
            seen.push(l);
        }
        assert_eq!(seen, c.lives().collect::<Vec<_>>());
        // Exhausted source stays exhausted.
        assert_eq!(src.next_record().unwrap(), None);
    }

    #[test]
    fn collect_source_round_trips_a_compiled_trace() {
        let c = compiled();
        let back = collect_source(&mut CompiledSource::new(&c)).unwrap();
        assert_eq!(back, c);
    }

    fn synth_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "synth-src".into(),
            description: "streaming generator".into(),
            exec_seconds: 1.0,
            total_alloc: 300_000,
            initial_permanent: 20_000,
            initial_object_size: 512,
            classes: vec![
                ClassSpec::new(
                    "short",
                    0.8,
                    SizeDist::Uniform { min: 16, max: 128 },
                    LifetimeDist::Exponential { mean: 4_000.0 },
                ),
                ClassSpec::new(
                    "immortal",
                    0.2,
                    SizeDist::Fixed(256),
                    LifetimeDist::Immortal,
                ),
            ],
            phase_period: None,
            seed: 11,
        }
    }

    #[test]
    fn synth_source_is_deterministic_and_well_formed() {
        let a = collect_source(&mut SynthSource::new(synth_spec()).unwrap()).unwrap();
        let b = collect_source(&mut SynthSource::new(synth_spec()).unwrap()).unwrap();
        assert_eq!(a, b);
        assert!(a.len() > 1_000);
        a.validate().expect("stream satisfies compiled invariants");
        assert!(a.births_strictly_increasing());
    }

    #[test]
    fn synth_source_end_matches_total_allocation() {
        let mut src = SynthSource::new(synth_spec()).unwrap();
        let c = collect_source(&mut src).unwrap();
        // End clock = total bytes allocated, within one object of target.
        assert_eq!(c.end, src.end());
        let end = c.end.as_u64();
        assert!((300_000..300_000 + 4_096).contains(&end), "end {end}");
    }

    #[test]
    fn synth_source_startup_objects_are_permanent() {
        let c = collect_source(&mut SynthSource::new(synth_spec()).unwrap()).unwrap();
        for l in c.lives().take_while(|l| l.birth.as_u64() <= 20_000) {
            assert_eq!(l.death, None, "startup object {:?} died", l.id);
        }
    }

    #[test]
    fn synth_source_phase_local_deaths_land_on_phase_boundaries() {
        let spec = WorkloadSpec {
            name: "phases".into(),
            description: String::new(),
            exec_seconds: 1.0,
            total_alloc: 100_000,
            initial_permanent: 0,
            initial_object_size: 1,
            classes: vec![ClassSpec::new(
                "pass",
                1.0,
                SizeDist::Fixed(100),
                LifetimeDist::PhaseLocal,
            )],
            phase_period: Some(10_000),
            seed: 3,
        };
        let c = collect_source(&mut SynthSource::new(spec).unwrap()).unwrap();
        for l in c.lives() {
            let d = l.death.expect("phase-local objects always die").as_u64();
            assert_eq!(d % 10_000, 0, "death {d} not on a phase boundary");
            assert!(d > l.birth.as_u64());
        }
    }

    #[test]
    fn synth_source_rejects_invalid_specs() {
        let mut spec = synth_spec();
        spec.total_alloc = 0;
        assert!(SynthSource::new(spec).is_err());
    }

    /// Drains `src` after seeking to `clock` and checks the tail equals
    /// the records of an untouched twin with `birth > clock`.
    fn assert_seek_matches_skip(mut src: impl EventSource, mut twin: impl EventSource, clock: u64) {
        let clock = VirtualTime::from_bytes(clock);
        src.seek(clock).unwrap();
        let mut tail = Vec::new();
        while let Some(l) = src.next_record().unwrap() {
            tail.push(l);
        }
        let mut expected = Vec::new();
        while let Some(l) = twin.next_record().unwrap() {
            if l.birth > clock {
                expected.push(l);
            }
        }
        assert_eq!(tail, expected, "seek({clock:?})");
    }

    #[test]
    fn compiled_source_seek_resumes_after_clock() {
        let c = compiled();
        for clock in [0u64, 5, 10, 29, 30, 31, 35, 100] {
            assert_seek_matches_skip(CompiledSource::new(&c), CompiledSource::new(&c), clock);
        }
        // Seeking backwards after exhaustion rewinds.
        let mut src = CompiledSource::new(&c);
        while src.next_record().unwrap().is_some() {}
        src.seek(VirtualTime::ZERO).unwrap();
        assert_eq!(
            collect_source(&mut src).unwrap().lives().count(),
            c.lives().count()
        );
    }

    #[test]
    fn synth_source_seek_resumes_after_clock() {
        for clock in [0u64, 1, 19_999, 20_000, 150_000, 299_000, 400_000] {
            assert_seek_matches_skip(
                SynthSource::new(synth_spec()).unwrap(),
                SynthSource::new(synth_spec()).unwrap(),
                clock,
            );
        }
    }

    #[test]
    fn synth_source_seek_mid_stream_discards_consumed_state() {
        // Seek must reposition absolutely, not relative to what was read.
        let mut a = SynthSource::new(synth_spec()).unwrap();
        for _ in 0..500 {
            a.next_record().unwrap();
        }
        assert_seek_matches_skip(a, SynthSource::new(synth_spec()).unwrap(), 40_000);
    }
}
