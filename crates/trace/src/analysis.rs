//! Workload lifetime analysis: survival curves and age demographics.
//!
//! Generational collection works exactly when "most dynamically allocated
//! objects cease to be used very shortly after their creation"; the
//! dynamic threatening boundary works when the *survival function* —
//! the fraction of allocated bytes still live at age `a` — drops steeply
//! and then flattens. This module computes that function and related
//! demographics from a compiled trace, so a workload can be characterized
//! before choosing constraints (see the `workload_analysis` example).

use crate::event::CompiledTrace;
use dtb_core::time::Bytes;
use serde::{Deserialize, Serialize};

/// The byte-weighted survival function of a trace, tabulated at fixed age
/// checkpoints.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurvivalCurve {
    /// Ages (bytes of allocation after birth) at which survival is
    /// tabulated, ascending.
    pub ages: Vec<u64>,
    /// `survival[i]`: fraction of allocated bytes (0–1) that live at
    /// least `ages[i]` bytes of further allocation.
    ///
    /// Objects still live at trace end are treated as surviving any age
    /// up to their observed lifespan, and counted as survivors beyond it
    /// (right-censored data, resolved optimistically — matching how a
    /// collector experiences them).
    pub survival: Vec<f64>,
}

impl SurvivalCurve {
    /// Computes the survival function at the given age checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `ages` is empty or not strictly ascending.
    pub fn compute(trace: &CompiledTrace, ages: &[u64]) -> SurvivalCurve {
        assert!(!ages.is_empty(), "need at least one age checkpoint");
        assert!(
            ages.windows(2).all(|w| w[0] < w[1]),
            "age checkpoints must be strictly ascending"
        );
        let mut surviving_bytes = vec![0u64; ages.len()];
        let mut total: u64 = 0;
        for life in trace.lives() {
            total += life.size as u64;
            let lifespan = match life.death {
                Some(d) => d.as_u64() - life.birth.as_u64(),
                // Right-censored: survives everything we can observe.
                None => u64::MAX,
            };
            for (i, age) in ages.iter().enumerate() {
                if lifespan >= *age {
                    surviving_bytes[i] += life.size as u64;
                }
            }
        }
        SurvivalCurve {
            ages: ages.to_vec(),
            survival: surviving_bytes
                .into_iter()
                .map(|s| {
                    if total == 0 {
                        0.0
                    } else {
                        s as f64 / total as f64
                    }
                })
                .collect(),
        }
    }

    /// The paper-relevant checkpoints: fractions and multiples of the 1 MB
    /// scavenge interval.
    pub fn at_paper_checkpoints(trace: &CompiledTrace) -> SurvivalCurve {
        SurvivalCurve::compute(
            trace,
            &[
                10_000, 100_000, 500_000, 1_000_000, // one scavenge interval
                2_000_000, 4_000_000, // the FIXED4 horizon
                8_000_000, 16_000_000,
            ],
        )
    }

    /// Survival fraction at the first checkpoint ≥ `age`, if any.
    pub fn at(&self, age: u64) -> Option<f64> {
        self.ages
            .iter()
            .position(|a| *a >= age)
            .map(|i| self.survival[i])
    }

    /// True when survival never increases with age (a sanity invariant of
    /// any survival function).
    pub fn is_monotone_nonincreasing(&self) -> bool {
        self.survival.windows(2).all(|w| w[0] >= w[1] + -1e-12)
    }
}

/// Aggregate workload demographics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Demographics {
    /// Total allocated bytes.
    pub total: Bytes,
    /// Bytes whose objects die within one 1 MB scavenge interval.
    pub dies_young: Bytes,
    /// Bytes that survive at least one interval but die within the trace.
    pub medium_lived: Bytes,
    /// Bytes still live at the end of the trace.
    pub immortal: Bytes,
}

impl Demographics {
    /// Computes demographics with the paper's 1 MB interval.
    pub fn compute(trace: &CompiledTrace) -> Demographics {
        let mut dies_young = 0u64;
        let mut medium = 0u64;
        let mut immortal = 0u64;
        for life in trace.lives() {
            match life.death {
                None => immortal += life.size as u64,
                Some(d) => {
                    if d.as_u64() - life.birth.as_u64() < 1_000_000 {
                        dies_young += life.size as u64;
                    } else {
                        medium += life.size as u64;
                    }
                }
            }
        }
        Demographics {
            total: trace.total_allocated(),
            dies_young: Bytes::new(dies_young),
            medium_lived: Bytes::new(medium),
            immortal: Bytes::new(immortal),
        }
    }

    /// Fraction of bytes dying within one scavenge interval — the "weak
    /// generational hypothesis" number.
    pub fn young_death_fraction(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.dies_young.as_u64() as f64 / self.total.as_u64() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::programs::Program;

    fn small_trace() -> CompiledTrace {
        let mut b = TraceBuilder::new("a");
        let x = b.alloc(100); // dies at age 200
        b.alloc(100);
        b.alloc(100);
        b.free(x);
        b.alloc(100); // three survivors (immortal)
        b.finish().compile().unwrap()
    }

    #[test]
    fn survival_counts_censored_objects_as_survivors() {
        let c = small_trace();
        let curve = SurvivalCurve::compute(&c, &[1, 100, 200, 1_000]);
        // All 4 objects (400 bytes) survive age 1 and 100... object x dies
        // at age 200 exactly: lifespan 200 ≥ 200 counts as surviving 200.
        assert_eq!(curve.survival[0], 1.0);
        assert_eq!(curve.survival[2], 1.0);
        // At age 1000 only the 3 immortals remain.
        assert_eq!(curve.survival[3], 0.75);
        assert!(curve.is_monotone_nonincreasing());
    }

    #[test]
    fn at_finds_first_checkpoint() {
        let c = small_trace();
        let curve = SurvivalCurve::compute(&c, &[100, 1_000]);
        assert_eq!(curve.at(50), Some(1.0));
        assert_eq!(curve.at(500), Some(0.75));
        assert_eq!(curve.at(5_000), None);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_checkpoints_rejected() {
        let c = small_trace();
        let _ = SurvivalCurve::compute(&c, &[100, 100]);
    }

    #[test]
    fn demographics_partition_totals() {
        let d = Demographics::compute(&small_trace());
        assert_eq!(d.total, d.dies_young + d.medium_lived + d.immortal);
        assert_eq!(d.dies_young, Bytes::new(100));
        assert_eq!(d.immortal, Bytes::new(300));
    }

    #[test]
    fn presets_obey_the_generational_hypothesis() {
        // Every preset except SIS allocates mostly short-lived data.
        let d = Demographics::compute(&Program::Cfrac.generate().compile().unwrap());
        assert!(
            d.young_death_fraction() > 0.9,
            "CFRAC young-death fraction {:.2}",
            d.young_death_fraction()
        );
        let curve =
            SurvivalCurve::at_paper_checkpoints(&Program::Cfrac.generate().compile().unwrap());
        assert!(curve.is_monotone_nonincreasing());
        // Survival at one scavenge interval is small.
        assert!(curve.at(1_000_000).unwrap() < 0.1);
    }
}
