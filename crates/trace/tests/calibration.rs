//! Calibration of the synthetic workloads against the paper's published
//! per-program statistics (Table 2's LIVE / No GC rows, Table 6).
//!
//! Run with `--nocapture` to see the measured-vs-paper comparison for
//! every preset.

use dtb_trace::programs::Program;
use dtb_trace::stats::TraceStats;

fn pct_err(measured: u64, target: u64) -> f64 {
    if target == 0 {
        return 0.0;
    }
    (measured as f64 - target as f64).abs() / target as f64 * 100.0
}

#[test]
fn live_profiles_match_paper_within_tolerance() {
    // GHOST/ESPRESSO/SIS profiles must land close to the paper's LIVE row;
    // CFRAC is tiny (10–21 KB) so granularity noise is proportionally
    // larger and the paper itself calls it "less interesting".
    for p in Program::ALL {
        let prof = p.paper_profile();
        let stats = TraceStats::compute(&p.generate());
        let mean_err = pct_err(stats.live_mean.as_u64(), prof.live_mean);
        let max_err = pct_err(stats.live_max.as_u64(), prof.live_max);
        println!(
            "{:12} live mean {:>9} vs paper {:>9} ({:5.1}%)  max {:>9} vs {:>9} ({:5.1}%)",
            p.label(),
            stats.live_mean.as_u64(),
            prof.live_mean,
            mean_err,
            stats.live_max.as_u64(),
            prof.live_max,
            max_err,
        );
        let tolerance = if p == Program::Cfrac { 45.0 } else { 15.0 };
        assert!(
            mean_err < tolerance,
            "{}: live mean off by {mean_err:.1}%",
            p.label()
        );
        assert!(
            max_err < tolerance,
            "{}: live max off by {max_err:.1}%",
            p.label()
        );
    }
}

#[test]
fn totals_and_collections_match_table6() {
    for p in Program::ALL {
        let prof = p.paper_profile();
        let stats = TraceStats::compute(&p.generate());
        // Total allocation within one object of the spec target.
        assert!(
            stats.total_allocated.as_u64() >= prof.total_alloc
                && stats.total_allocated.as_u64() < prof.total_alloc + 4096,
            "{}: total {}",
            p.label(),
            stats.total_allocated.as_u64()
        );
        // Collection count at the 1 MB trigger within rounding of Table 6.
        assert!(
            stats.collections_at_1mb.abs_diff(prof.collections) <= 3,
            "{}: {} collections vs paper {}",
            p.label(),
            stats.collections_at_1mb,
            prof.collections
        );
        assert_eq!(stats.exec_seconds, prof.exec_seconds);
    }
}

#[test]
fn generation_is_reproducible_across_runs() {
    let a = Program::Espresso1.generate();
    let b = Program::Espresso1.generate();
    assert_eq!(a, b);
}

#[test]
fn nogc_mean_is_about_half_total() {
    // No-GC memory is the allocation ramp; its time-average is ~total/2.
    for p in [Program::Cfrac, Program::Espresso1] {
        let stats = TraceStats::compute(&p.generate());
        let ratio = stats.nogc_mean.as_u64() as f64 / stats.total_allocated.as_u64() as f64;
        assert!(
            (0.45..0.55).contains(&ratio),
            "{}: nogc mean ratio {ratio:.3}",
            p.label()
        );
    }
}
