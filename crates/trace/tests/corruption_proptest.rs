//! Property tests: no byte-level corruption of a serialized trace may
//! panic the parser. Decoding either fails with a typed `FormatError` or
//! yields a trace, and validation of whatever decodes is decisive.

use dtb_trace::corrupt::{flipped_byte_encoding, truncated_encoding};
use dtb_trace::{format, Trace, TraceBuilder};
use proptest::prelude::*;

/// A small well-formed trace driven by an op list: `0` allocates, `1`
/// frees the oldest live object (or allocates when none is live).
fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec((1u32..=10_000, 0u8..=1), 1..80).prop_map(|ops| {
        let mut b = TraceBuilder::new("prop");
        let mut live = Vec::new();
        for (size, op) in ops {
            if op == 0 || live.is_empty() {
                live.push(b.alloc(size));
            } else {
                b.free(live.remove(0));
            }
        }
        b.finish()
    })
}

proptest! {
    #[test]
    fn single_byte_flips_never_panic_the_parser(
        t in trace_strategy(),
        idx in 0usize..=1_000_000,
        mask in 0u8..=255,
    ) {
        let data = flipped_byte_encoding(&t, idx, mask);
        if let Ok(decoded) = format::decode(&data) {
            // Either verdict is fine; reaching one without panicking is
            // the property.
            let _ = decoded.validate();
        }
    }

    #[test]
    fn truncations_never_panic_the_parser(
        t in trace_strategy(),
        cut in 0usize..=1_000_000,
    ) {
        let full_len = format::encode(&t).len();
        let data = truncated_encoding(&t, cut % (full_len + 1));
        if let Ok(decoded) = format::decode(&data) {
            let _ = decoded.validate();
        }
    }

    #[test]
    fn multi_byte_mutations_never_panic_the_parser(
        t in trace_strategy(),
        flips in prop::collection::vec((0usize..=1_000_000, 0u8..=255), 1..8),
    ) {
        let mut data = format::encode(&t).to_vec();
        for (idx, mask) in flips {
            if !data.is_empty() {
                let i = idx % data.len();
                data[i] ^= mask | 1; // |1 so the flip is never a no-op
            }
        }
        if let Ok(decoded) = format::decode(&data) {
            let _ = decoded.validate();
        }
    }

    #[test]
    fn uncorrupted_round_trip_always_validates(t in trace_strategy()) {
        let decoded = format::decode(&format::encode(&t)).expect("round trip");
        prop_assert_eq!(&decoded, &t);
        prop_assert!(decoded.validate().is_ok());
    }
}
