//! Property tests for the `DTBCKP01` checkpoint container: round trips
//! are byte-exact for any payload, and no byte-level damage — flips,
//! truncations, trailing garbage — may panic the reader. Every damaged
//! file yields a typed [`CkpError`]; because the trailing FNV-1a
//! checksum covers every byte before it, a *single*-byte flip is always
//! detected, never silently accepted.

use dtb_trace::ckp::{read_blob, write_blob, CkpError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh file path per proptest case: tests run concurrently, and a
/// reused path would mix payloads from different cases.
fn temp_file(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dtb-ckp-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{tag}-{n}.dtbckp"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write + read is the identity on payload bytes, including the
    /// empty payload and payloads containing the magic or fake trailers.
    #[test]
    fn round_trip_is_exact(payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let path = temp_file("rt");
        write_blob(&path, &payload).expect("write checkpoint");
        prop_assert_eq!(read_blob(&path).expect("read checkpoint"), payload);
        let _ = std::fs::remove_file(&path);
    }

    /// Any single-byte flip anywhere in the file — magic, payload, or
    /// trailer — is detected as a typed error. FNV-1a's per-byte steps
    /// are invertible, so a one-byte change in the body always changes
    /// the computed checksum, and a flip in the trailer changes the
    /// recorded one; either way the two disagree (or the magic breaks).
    #[test]
    fn single_byte_flips_are_always_detected(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        offset in 0usize..=1_000_000,
        mask in 1u8..=255,
    ) {
        let path = temp_file("flip");
        write_blob(&path, &payload).expect("write checkpoint");
        let mut raw = std::fs::read(&path).expect("read raw file");
        let i = offset % raw.len();
        raw[i] ^= mask;
        std::fs::write(&path, &raw).expect("write corrupted");
        let err = read_blob(&path).expect_err("corruption must be detected");
        prop_assert!(
            matches!(
                err,
                CkpError::ChecksumMismatch { .. } | CkpError::BadMagic { .. }
            ),
            "unexpected error class: {err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Truncating the file at any point is a typed error, never a panic
    /// and never a silently short payload.
    #[test]
    fn truncations_are_typed_errors(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        cut in 0usize..=1_000_000,
    ) {
        let path = temp_file("cut");
        write_blob(&path, &payload).expect("write checkpoint");
        let raw = std::fs::read(&path).expect("read raw file");
        let keep = cut % raw.len(); // strictly shorter than the original
        std::fs::write(&path, &raw[..keep]).expect("truncate");
        let err = read_blob(&path).expect_err("truncation must be detected");
        prop_assert!(
            matches!(
                err,
                CkpError::Truncated { .. } | CkpError::ChecksumMismatch { .. }
            ),
            "unexpected error class: {err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Appending garbage after the trailer is detected too: the trailer
    /// is located from the end of the file, so extra bytes shift it off
    /// the real checksum.
    #[test]
    fn trailing_garbage_is_detected(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let path = temp_file("tail");
        write_blob(&path, &payload).expect("write checkpoint");
        let mut raw = std::fs::read(&path).expect("read raw file");
        raw.extend_from_slice(&garbage);
        std::fs::write(&path, &raw).expect("append garbage");
        prop_assert!(read_blob(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
