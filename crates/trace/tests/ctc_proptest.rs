//! Property tests for the `DTBCTC01` sharded compiled-trace store: round
//! trips are exact for any stride, the two-pass converter agrees with the
//! in-memory compiler, and no byte-level corruption of a store may panic
//! the reader — it either still round-trips or fails with a typed
//! [`CtcError`] (mirroring `corruption_proptest.rs` for the event
//! format).

use dtb_trace::ctc::{self, CtcError};
use dtb_trace::{collect_source, io, ShardReader, Trace, TraceBuilder};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A small well-formed trace driven by an op list: `0` allocates, `1`
/// frees the oldest live object (or allocates when none is live).
fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec((1u32..=10_000, 0u8..=1), 1..80).prop_map(|ops| {
        let mut b = TraceBuilder::new("ctc-prop");
        b.exec_seconds(2.0);
        let mut live = Vec::new();
        for (size, op) in ops {
            if op == 0 || live.is_empty() {
                live.push(b.alloc(size));
            } else {
                b.free(live.remove(0));
            }
        }
        b.finish()
    })
}

/// A fresh store directory per proptest case: tests run concurrently, and
/// a reused directory would mix shards from different cases.
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dtb-ctc-prop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every regular file in the store, sorted for deterministic indexing.
fn store_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    files
}

/// Drains a possibly corrupted store; any outcome is fine as long as it
/// is a value, not a panic. Reads record-by-record (not through
/// `collect_source`) so even streams whose records would no longer form a
/// valid trace are fully exercised.
fn drain_store(dir: &PathBuf) -> Result<usize, CtcError> {
    use dtb_trace::EventSource;
    let mut reader = ShardReader::open(dir)?;
    let mut n = 0usize;
    loop {
        match reader.next_record() {
            Ok(Some(_)) => n += 1,
            Ok(None) => return Ok(n),
            Err(dtb_trace::SourceError::Shard(e)) => return Err(e),
            Err(other) => panic!("shard reader raised a non-shard error: {other}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shard + replay is the identity on compiled traces, whatever the
    /// stride — one giant shard, one record per shard, or anything odd in
    /// between.
    #[test]
    fn round_trip_is_exact_for_any_stride(
        t in trace_strategy(),
        // Edge strides: one record per shard, odd strides, one giant
        // shard (u64::MAX never rotates).
        stride in (0u64..=15).prop_map(|i| match i {
            0 => 1,
            1 => 64,
            2 => u64::MAX,
            odd => odd,
        }),
    ) {
        let trace = t.compile().expect("builder traces are valid");
        let dir = temp_dir("rt");
        ctc::write_shards(&dir, &trace, stride).expect("write store");
        let mut reader = ShardReader::open(&dir).expect("open store");
        let replayed = collect_source(&mut reader).expect("replay store");
        prop_assert_eq!(&replayed, &trace);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The streaming two-pass converter (raw `.dtbtrc` file → store)
    /// produces byte-identical shards to compiling in memory and sharding
    /// the result.
    #[test]
    fn converter_agrees_with_in_memory_compilation(
        t in trace_strategy(),
        stride in 1u64..=50,
    ) {
        let trace = t.compile().expect("builder traces are valid");
        let src = temp_dir("cv-src").with_extension("dtbtrc");
        io::write_trace(&src, &t).expect("write event file");
        let via_file = temp_dir("cv-a");
        let via_memory = temp_dir("cv-b");
        let m1 = ctc::convert_trace_file(&src, &via_file, stride).expect("convert");
        let m2 = ctc::write_shards(&via_memory, &trace, stride).expect("shard");
        prop_assert_eq!(m1, m2);
        for (a, b) in store_files(&via_file).iter().zip(store_files(&via_memory).iter()) {
            prop_assert_eq!(
                std::fs::read(a).expect("read converted"),
                std::fs::read(b).expect("read sharded"),
                "{} differs from {}", a.display(), b.display()
            );
        }
        let _ = std::fs::remove_file(&src);
        let _ = std::fs::remove_dir_all(&via_file);
        let _ = std::fs::remove_dir_all(&via_memory);
    }

    /// Single-byte flips anywhere in the store — manifest or shard —
    /// never panic the reader: replay yields records or a typed error.
    #[test]
    fn single_byte_flips_never_panic_the_reader(
        t in trace_strategy(),
        stride in 1u64..=64,
        file_pick in 0usize..=1_000,
        offset in 0usize..=1_000_000,
        mask in 1u8..=255,
    ) {
        let trace = t.compile().expect("builder traces are valid");
        let dir = temp_dir("flip");
        ctc::write_shards(&dir, &trace, stride).expect("write store");
        let files = store_files(&dir);
        let victim = &files[file_pick % files.len()];
        let mut bytes = std::fs::read(victim).expect("read victim");
        prop_assume!(!bytes.is_empty());
        let i = offset % bytes.len();
        bytes[i] ^= mask;
        std::fs::write(victim, &bytes).expect("write corrupted");
        // Either verdict is fine; reaching one without panicking is the
        // property.
        let _ = drain_store(&dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating any file of the store never panics the reader.
    #[test]
    fn truncations_never_panic_the_reader(
        t in trace_strategy(),
        stride in 1u64..=64,
        file_pick in 0usize..=1_000,
        cut in 0usize..=1_000_000,
    ) {
        let trace = t.compile().expect("builder traces are valid");
        let dir = temp_dir("cut");
        ctc::write_shards(&dir, &trace, stride).expect("write store");
        let files = store_files(&dir);
        let victim = &files[file_pick % files.len()];
        let bytes = std::fs::read(victim).expect("read victim");
        std::fs::write(victim, &bytes[..cut % (bytes.len() + 1)]).expect("truncate");
        let _ = drain_store(&dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Deleting a shard out from under the manifest is a typed error,
    /// not a panic (the manifest says how many records must exist).
    #[test]
    fn missing_shard_is_a_typed_error(
        t in trace_strategy(),
        stride in 1u64..=8,
    ) {
        let trace = t.compile().expect("builder traces are valid");
        let dir = temp_dir("gone");
        let manifest = ctc::write_shards(&dir, &trace, stride).expect("write store");
        prop_assume!(manifest.shards.len() > 1);
        std::fs::remove_file(ctc::shard_path(&dir, manifest.shards.len() - 1))
            .expect("remove last shard");
        prop_assert!(drain_store(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
