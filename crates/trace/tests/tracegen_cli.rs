//! Bad-path behaviour of the `tracegen` CLI: every failure is a stderr
//! message and a nonzero exit code, never a panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tracegen(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tracegen"))
        .args(args)
        .output()
        .expect("spawn tracegen")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtb-tracegen-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let out = tracegen(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = tracegen(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
}

#[test]
fn gen_with_invalid_preset_name_fails_cleanly() {
    let out = tracegen(&["gen", "NOTAPROGRAM", "/tmp/never-written.dtbtrc"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("unknown program"), "stderr: {err}");
    assert!(err.contains("tracegen list"), "stderr: {err}");
}

#[test]
fn info_with_missing_file_fails_cleanly() {
    let out = tracegen(&["info", "/nonexistent/definitely/not/here.dtbtrc"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("i/o"), "stderr: {}", stderr(&out));
}

#[test]
fn info_with_garbage_file_fails_cleanly() {
    let path = temp_path("garbage.dtbtrc");
    std::fs::write(&path, b"definitely not a trace file").unwrap();
    let out = tracegen(&["info", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("malformed"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn info_with_truncated_trace_fails_cleanly() {
    use dtb_trace::corrupt::truncated_encoding;
    use dtb_trace::TraceBuilder;

    let mut b = TraceBuilder::new("trunc");
    for _ in 0..50 {
        let id = b.alloc(1000);
        b.free(id);
    }
    let trace = b.finish();
    let path = temp_path("truncated.dtbtrc");
    let full_len = dtb_trace::format::encode(&trace).len();
    std::fs::write(&path, truncated_encoding(&trace, full_len / 2)).unwrap();
    let out = tracegen(&["info", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("malformed"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn survival_with_semantically_invalid_trace_fails_cleanly() {
    use dtb_trace::corrupt::stray_free;
    use dtb_trace::event::ObjectId;
    use dtb_trace::TraceBuilder;

    let mut b = TraceBuilder::new("stray");
    let id = b.alloc(64);
    b.free(id);
    let bad = stray_free(&b.finish(), ObjectId(4096));
    let path = temp_path("stray.dtbtrc");
    // Bypass write-side validation concerns by encoding directly.
    std::fs::write(&path, dtb_trace::format::encode(&bad)).unwrap();
    let out = tracegen(&["survival", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("inconsistent"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn good_path_still_works_end_to_end() {
    let path = temp_path("good.dtbtrc");
    let gen = tracegen(&["gen", "cfrac", path.to_str().unwrap()]);
    assert!(gen.status.success(), "stderr: {}", stderr(&gen));
    let info = tracegen(&["info", path.to_str().unwrap()]);
    assert!(info.status.success(), "stderr: {}", stderr(&info));
    let stdout = String::from_utf8_lossy(&info.stdout).into_owned();
    assert!(stdout.contains("total allocated"), "stdout: {stdout}");
}

#[test]
fn compile_and_shard_produce_replayable_stores() {
    use dtb_trace::{collect_source, ShardReader};

    let src = temp_path("convert-me.dtbtrc");
    let gen = tracegen(&["gen", "cfrac", src.to_str().unwrap()]);
    assert!(gen.status.success(), "stderr: {}", stderr(&gen));

    let one_shard = temp_path("store-compile");
    let out = tracegen(&[
        "compile",
        src.to_str().unwrap(),
        one_shard.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("1 shard"), "stdout: {stdout}");

    let sharded = temp_path("store-shard");
    let out = tracegen(&[
        "shard",
        src.to_str().unwrap(),
        sharded.to_str().unwrap(),
        "10000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Both stores replay to the same records as the source event file.
    let expected = dtb_trace::io::read_trace(&src).unwrap().compile().unwrap();
    for dir in [&one_shard, &sharded] {
        let mut reader = ShardReader::open(dir).expect("open store");
        assert_eq!(collect_source(&mut reader).expect("replay"), expected);
    }
}

#[test]
fn shard_with_bad_stride_fails_cleanly() {
    let out = tracegen(&["shard", "/tmp/in.dtbtrc", "/tmp/out-dir", "banana"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("records-per-shard"),
        "stderr: {}",
        stderr(&out)
    );
    let out = tracegen(&["shard", "/tmp/in.dtbtrc", "/tmp/out-dir", "0"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("at least 1"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn verify_accepts_a_clean_store_and_names_a_corrupted_shard() {
    let src = temp_path("verify-me.dtbtrc");
    let gen = tracegen(&["gen", "cfrac", src.to_str().unwrap()]);
    assert!(gen.status.success(), "stderr: {}", stderr(&gen));
    let store = temp_path("store-verify");
    let out = tracegen(&[
        "shard",
        src.to_str().unwrap(),
        store.to_str().unwrap(),
        "10000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Clean store: exit 0, every shard reported OK.
    let out = tracegen(&["verify", store.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("store ok"), "stdout: {stdout}");
    assert!(stdout.contains("shard-00001"), "stdout: {stdout}");

    // Flip one payload byte in the second shard: exit nonzero, the bad
    // shard is named, and the healthy shards still report OK.
    let victim = store.join("shard-00001.dtbctc");
    let mut raw = std::fs::read(&victim).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x40;
    std::fs::write(&victim, raw).unwrap();
    let out = tracegen(&["verify", store.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let err = stderr(&out);
    assert!(
        stdout.contains("shard-00001.dtbctc: FAILED"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("shard-00000.dtbctc: OK"),
        "stdout: {stdout}"
    );
    assert!(err.contains("shard-00001"), "stderr: {err}");
    assert!(err.contains("failed verification"), "stderr: {err}");
}

#[test]
fn verify_with_missing_store_fails_cleanly() {
    let out = tracegen(&["verify", "/nonexistent/not/a/store"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("cannot verify"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn compile_with_missing_source_fails_cleanly() {
    let out = tracegen(&["compile", "/nonexistent/not/here.dtbtrc", "/tmp/out-dir"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("cannot convert"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn compile_with_wrong_arity_prints_usage() {
    let out = tracegen(&["compile", "only-one-arg"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
    let out = tracegen(&["shard", "a", "b"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
}
