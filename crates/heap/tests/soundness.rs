//! Collector soundness under randomized mutation: no reachable object is
//! ever reclaimed, unreachable objects eventually are, and boundary
//! behaviour (tenuring, untenuring, nepotism) matches the model.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_core::time::Bytes;
use dtb_heap::{collect_now, configure, heap_stats, Gc, GcCell, HeapConfig, Trace, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A graph node with a label and up to two outgoing edges.
struct Node {
    label: u64,
    left: GcCell<Option<Gc<Node>>>,
    right: GcCell<Option<Gc<Node>>>,
    _ballast: [u8; 40],
}

// SAFETY: both edge cells are visited in all three walks.
unsafe impl Trace for Node {
    fn trace(&self, t: &mut Tracer) {
        self.left.trace(t);
        self.right.trace(t);
    }
    fn root(&self) {
        self.left.root();
        self.right.root();
    }
    fn unroot(&self) {
        self.left.unroot();
        self.right.unroot();
    }
}

fn node(label: u64) -> Gc<Node> {
    Gc::new(Node {
        label,
        left: GcCell::new(None),
        right: GcCell::new(None),
        _ballast: [0; 40],
    })
}

/// Collects the labels reachable from `root` (the oracle reachability
/// walk, done mutator-side).
fn reachable_labels(root: &Gc<Node>) -> Vec<u64> {
    let mut seen = std::collections::BTreeSet::new();
    let mut stack = vec![root.clone()];
    while let Some(n) = stack.pop() {
        if !seen.insert(n.label) {
            continue;
        }
        if let Some(l) = n.left.borrow().clone() {
            stack.push(l);
        }
        if let Some(r) = n.right.borrow().clone() {
            stack.push(r);
        }
    }
    seen.into_iter().collect()
}

/// Random graph churn against one policy; verify reachability after every
/// collection.
#[allow(clippy::explicit_counter_loop)]
fn churn_with_policy(policy: PolicyKind, seed: u64) {
    configure(
        HeapConfig::default()
            .with_policy(policy)
            .with_budgets(PolicyConfig::new(Bytes::new(2_000), Bytes::new(60_000)))
            .with_trigger(Bytes::new(4_000)),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let root = node(0);
    let mut label = 1u64;
    // Keep a rotating set of stack handles too (extra roots).
    let mut extra: Vec<Gc<Node>> = Vec::new();

    for step in 0..400 {
        // Mutate: attach a new node somewhere reachable, or drop edges.
        let fresh = node(label);
        label += 1;
        // Walk a short random path from the root and attach.
        let mut cur = root.clone();
        for _ in 0..rng.gen_range(0..4) {
            let next = if rng.gen_bool(0.5) {
                cur.left.borrow().clone()
            } else {
                cur.right.borrow().clone()
            };
            match next {
                Some(n) => cur = n,
                None => break,
            }
        }
        if rng.gen_bool(0.5) {
            cur.left.set(&cur, Some(fresh.clone()));
        } else {
            cur.right.set(&cur, Some(fresh.clone()));
        }
        if rng.gen_bool(0.3) {
            extra.push(fresh.clone());
        }
        if extra.len() > 8 {
            extra.remove(0);
        }
        // Occasionally sever a subtree (creating garbage).
        if rng.gen_bool(0.2) {
            if rng.gen_bool(0.5) {
                cur.left.set(&cur, None);
            } else {
                cur.right.set(&cur, None);
            }
        }

        if step % 25 == 24 {
            let before = reachable_labels(&root);
            collect_now();
            let after = reachable_labels(&root);
            assert_eq!(
                before, after,
                "{policy:?} seed {seed}: reachable set changed across collection"
            );
            // Extra stack handles must still dereference fine.
            for g in &extra {
                let _ = g.label;
            }
        }
    }
}

#[test]
fn full_policy_never_loses_reachable_objects() {
    churn_with_policy(PolicyKind::Full, 11);
}

#[test]
fn fixed1_policy_never_loses_reachable_objects() {
    churn_with_policy(PolicyKind::Fixed1, 22);
}

#[test]
fn fixed4_policy_never_loses_reachable_objects() {
    churn_with_policy(PolicyKind::Fixed4, 33);
}

#[test]
fn dtbfm_policy_never_loses_reachable_objects() {
    churn_with_policy(PolicyKind::DtbFm, 44);
}

#[test]
fn dtbmem_policy_never_loses_reachable_objects() {
    churn_with_policy(PolicyKind::DtbMem, 55);
}

#[test]
fn feedmed_policy_never_loses_reachable_objects() {
    churn_with_policy(PolicyKind::FeedMed, 66);
}

#[test]
fn unreachable_garbage_is_fully_reclaimed_by_full_collection() {
    configure(HeapConfig::manual_full());
    let root = node(0);
    collect_now();
    let baseline = heap_stats().mem_in_use;
    // Build a big subtree, then sever it.
    let sub = node(1);
    root.left.set(&root, Some(sub.clone()));
    let mut cur = sub.clone();
    for i in 2..100 {
        let n = node(i);
        cur.left.set(&cur, Some(n.clone()));
        cur = n;
    }
    drop(sub);
    drop(cur);
    root.left.set(&root, None);
    let out = collect_now();
    assert!(out.reclaimed.as_u64() > 0);
    assert_eq!(heap_stats().mem_in_use, baseline);
}

#[test]
fn nepotism_retains_threatened_garbage_pointed_at_by_immune_garbage() {
    // Figure 1's object F: threatened and unreachable, but kept alive
    // because immune (tenured) garbage points at it.
    configure(HeapConfig::manual_fixed1());
    let old = node(1);
    collect_now();
    collect_now(); // `old` is now immune under FIXED1
    let young = node(2);
    old.left.set(&old, Some(young.clone()));
    let young_birth = young.birth();
    // Make BOTH unreachable from the mutator: drop every stack handle.
    let old_birth = old.birth();
    drop(old);
    drop(young);
    let out = collect_now();
    // `old` is immune (dead tenured garbage); it protects `young` even
    // though `young` is threatened and unreachable: nepotism.
    assert!(out.boundary >= old_birth);
    assert!(out.boundary < young_birth);
    let stats = heap_stats();
    assert!(
        stats.mem_in_use.as_u64() > 0,
        "nepotism should retain the pair"
    );
    // An untenuring full collection reclaims both.
    configure(HeapConfig::manual_full());
    let out = collect_now();
    assert!(out.reclaimed.as_u64() > 0);
}

#[test]
fn untenuring_reclaims_stranded_garbage_when_boundary_moves_back() {
    // The central DTB move (Figure 1): garbage tenured by an eager
    // boundary is reclaimed later when the boundary moves backward.
    configure(HeapConfig::manual_fixed1());
    let junk = node(7);
    let junk_birth = junk.birth();
    collect_now(); // junk survives (rooted)
    collect_now(); // boundary passes junk's birth: junk immune
    drop(junk); // now garbage, but tenured
    let out = collect_now();
    assert!(out.boundary >= junk_birth, "junk should be immune");
    let before = heap_stats().mem_in_use;
    // Switch to FULL — equivalent to a DTB policy choosing TB = 0.
    configure(HeapConfig::manual_full());
    let out = collect_now();
    assert_eq!(out.boundary.as_u64(), 0);
    assert!(heap_stats().mem_in_use < before, "untenured junk reclaimed");
}

#[test]
fn auto_collect_fires_on_trigger() {
    configure(
        HeapConfig::default()
            .with_policy(PolicyKind::Full)
            .with_trigger(Bytes::new(2_000)),
    );
    let collections_before = dtb_heap::history().len();
    let mut keep = Vec::new();
    for i in 0..200 {
        keep.push(node(i)); // ~100+ bytes each → several triggers
        if keep.len() > 4 {
            keep.remove(0);
        }
    }
    assert!(
        dtb_heap::history().len() > collections_before,
        "automatic scavenges should have fired"
    );
}

#[test]
fn pause_stats_reflect_traced_bytes() {
    configure(HeapConfig::manual_full());
    let _keep: Vec<Gc<Node>> = (0..50).map(node).collect();
    let out = collect_now();
    let mut pauses = dtb_heap::pause_stats();
    let last = pauses.max().unwrap();
    assert!(last >= out.pause_ms - 1e-9);
    assert!(out.traced.as_u64() >= 50 * std::mem::size_of::<Node>() as u64);
}
