//! Edge cases of the real collector: deep structures, cycles, borrow
//! discipline, and reconfiguration mid-run.

use dtb_core::policy::PolicyKind;
use dtb_core::time::Bytes;
use dtb_heap::{
    collect_now, configure, heap_stats, history, impl_trace_fields, Gc, GcCell, HeapConfig,
};

struct Link {
    id: u64,
    next: GcCell<Option<Gc<Link>>>,
}
impl_trace_fields!(Link { next });

fn link(id: u64) -> Gc<Link> {
    Gc::new(Link {
        id,
        next: GcCell::new(None),
    })
}

#[test]
fn deep_chain_survives_marking_without_stack_overflow() {
    // The marker is an explicit worklist, so a 100 000-deep chain must
    // not recurse the native stack.
    configure(HeapConfig::manual_full());
    let head = link(0);
    let mut cur = head.clone();
    for i in 1..100_000u64 {
        let n = link(i);
        cur.next.set(&cur, Some(n.clone()));
        cur = n;
    }
    drop(cur);
    let out = collect_now();
    assert_eq!(out.reclaimed.as_u64(), 0, "whole chain reachable");
    // Walk a prefix to make sure it is intact.
    let mut walk = head.clone();
    for expect in 0..1_000u64 {
        assert_eq!(walk.id, expect);
        let next = walk.next.borrow().clone();
        walk = next.unwrap();
    }
}

#[test]
fn cycles_are_collected_when_unreachable() {
    // Reference cycles defeat reference counting; a tracing collector
    // must reclaim them.
    configure(HeapConfig::manual_full());
    collect_now();
    let baseline = heap_stats().mem_in_use;
    {
        let a = link(1);
        let b = link(2);
        a.next.set(&a, Some(b.clone()));
        b.next.set(&b, Some(a.clone())); // cycle a → b → a
    }
    let out = collect_now();
    assert!(out.reclaimed.as_u64() > 0, "cycle should be reclaimed");
    assert_eq!(heap_stats().mem_in_use, baseline);
}

#[test]
fn reachable_cycle_survives() {
    configure(HeapConfig::manual_full());
    let a = link(1);
    let b = link(2);
    a.next.set(&a, Some(b.clone()));
    b.next.set(&b, Some(a.clone()));
    drop(b);
    collect_now();
    // a is rooted; the cycle hangs off it and must be intact.
    let b_again = a.next.borrow().clone().unwrap();
    let a_again = b_again.next.borrow().clone().unwrap();
    assert!(Gc::ptr_eq(&a, &a_again));
}

#[test]
#[should_panic(expected = "already")]
fn double_mutable_borrow_panics() {
    configure(HeapConfig::manual_full());
    let a = link(1);
    let _g1 = a.next.borrow_mut(&a);
    let _g2 = a.next.borrow_mut(&a); // RefCell discipline
}

#[test]
fn borrow_mut_guard_roots_contents_across_collection() {
    // Allocating (and collecting) while a mutable borrow is open must not
    // collect the borrowed contents.
    configure(
        HeapConfig::default()
            .with_policy(PolicyKind::Full)
            .with_trigger(Bytes::new(2_000)),
    );
    let a = link(1);
    let target = link(2);
    a.next.set(&a, Some(target));
    {
        let guard = a.next.borrow_mut(&a);
        // Trigger several automatic collections while the cell is open.
        for i in 0..100 {
            let _churn = link(1000 + i);
        }
        assert_eq!(guard.as_ref().unwrap().id, 2);
    }
    assert_eq!(a.next.borrow().as_ref().unwrap().id, 2);
}

#[test]
fn reconfiguring_mid_run_keeps_history_and_objects() {
    configure(HeapConfig::manual_fixed1());
    let keep = link(7);
    collect_now();
    let collections_before = history().len();
    let objects_before = heap_stats().object_count;
    // Switch policies; nothing about the heap contents may change.
    configure(HeapConfig::manual_full());
    assert_eq!(history().len(), collections_before);
    assert!(heap_stats().object_count >= 1);
    let _ = objects_before;
    assert_eq!(keep.id, 7);
}

#[test]
fn replace_reroots_the_extracted_value() {
    configure(HeapConfig::manual_full());
    let a = link(1);
    let b = link(2);
    a.next.set(&a, Some(b));
    // Extract b: the returned handle must root it again.
    let extracted = a.next.replace(&a, None).unwrap();
    collect_now(); // b is only reachable through `extracted`
    assert_eq!(extracted.id, 2);
}

#[test]
fn take_empties_the_cell() {
    configure(HeapConfig::manual_full());
    let a = link(1);
    let b = link(2);
    a.next.set(&a, Some(b));
    let taken = a.next.take(&a);
    assert_eq!(taken.unwrap().id, 2);
    assert!(a.next.borrow().is_none());
}

#[test]
fn wide_fanout_marks_every_child() {
    struct Hub {
        spokes: GcCell<Vec<Gc<Link>>>,
    }
    impl_trace_fields!(Hub { spokes });

    configure(HeapConfig::manual_full());
    let hub = Gc::new(Hub {
        spokes: GcCell::new(Vec::new()),
    });
    {
        let mut spokes = hub.spokes.borrow_mut(&hub);
        for i in 0..5_000 {
            spokes.push(link(i));
        }
    }
    collect_now();
    let spokes = hub.spokes.borrow();
    assert_eq!(spokes.len(), 5_000);
    for (i, s) in spokes.iter().enumerate() {
        assert_eq!(s.id, i as u64);
    }
}

#[test]
fn dtb_policies_drive_the_real_heap_within_constraints() {
    // DTBFM on the real heap: median pause near its (tiny) budget.
    configure(
        HeapConfig::default()
            .with_policy(PolicyKind::DtbFm)
            .with_budgets(dtb_core::policy::PolicyConfig::new(
                Bytes::new(5_000),
                Bytes::from_kb(512),
            ))
            .with_trigger(Bytes::new(20_000)),
    );
    let root = link(0);
    let mut cur = root.clone();
    for i in 1..20_000u64 {
        let n = link(i);
        // Keep a short live window; older links become garbage.
        if i % 8 == 0 {
            cur.next.set(&cur, Some(n.clone()));
        }
        cur = n;
    }
    let hist = history();
    assert!(hist.len() > 10, "auto scavenges ran");
    // The boundary moved around (dynamic!), not pinned at one place.
    let boundaries: std::collections::BTreeSet<u64> = hist
        .iter()
        .map(|r| r.at.as_u64() - r.boundary.as_u64())
        .collect();
    assert!(
        boundaries.len() > 3,
        "DTBFM should vary its boundary distance: {boundaries:?}"
    );
}
