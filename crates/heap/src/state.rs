//! The per-thread collector state: allocation, the remembered set, and the
//! dynamic-threatening-boundary mark–sweep scavenge.

use crate::config::HeapConfig;
use crate::gc::{ErasedGcBox, Gc, GcBox, Header};
use crate::trace_trait::{Trace, Tracer};
use dtb_core::history::{ScavengeHistory, ScavengeRecord};
use dtb_core::policy::{ScavengeContext, SurvivalEstimator, TbPolicy};
use dtb_core::stats::SampleStats;
use dtb_core::time::{Bytes, VirtualTime};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::ptr::NonNull;

thread_local! {
    static STATE: RefCell<GcState> = RefCell::new(GcState::new(HeapConfig::default()));
}

/// Runs `f` with this thread's collector state.
///
/// # Panics
///
/// Panics on re-entrant use: allocating or mutating cells from inside a
/// `Drop` impl that runs during collection is not supported.
pub(crate) fn with_state<R>(f: impl FnOnce(&mut GcState) -> R) -> R {
    STATE.with(|s| {
        f(&mut s
            .try_borrow_mut()
            .expect("re-entrant heap use (allocation inside Drop during collection?)"))
    })
}

/// The outcome of one scavenge of the real heap.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollectionOutcome {
    /// Allocation-clock time of the scavenge.
    pub at: VirtualTime,
    /// The threatening boundary the policy selected.
    pub boundary: VirtualTime,
    /// Bytes of threatened storage traced (marked live).
    pub traced: Bytes,
    /// Bytes reclaimed.
    pub reclaimed: Bytes,
    /// Bytes surviving.
    pub surviving: Bytes,
    /// Pause attributed under the configured cost model, milliseconds.
    pub pause_ms: f64,
}

/// A point-in-time summary of the heap.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeapStats {
    /// Total bytes ever allocated (the allocation clock).
    pub allocated_total: Bytes,
    /// Bytes currently in use (live + uncollected garbage).
    pub mem_in_use: Bytes,
    /// Objects currently in the heap.
    pub object_count: usize,
    /// Scavenges performed so far.
    pub collections: usize,
    /// Objects registered in the remembered set.
    pub remembered_count: usize,
    /// Boundary-policy failures degraded to full collections: when the
    /// policy errors, the collector falls back to `TB = 0` (collect
    /// everything) rather than leak or crash, and counts the incident
    /// here.
    pub policy_failures: usize,
}

pub(crate) struct GcState {
    config: HeapConfig,
    policy: Box<dyn TbPolicy>,
    /// All heap objects, in birth order.
    objects: Vec<NonNull<ErasedGcBox>>,
    /// Objects that have performed a barriered store (candidate sources of
    /// forward-in-time pointers). One entry per object.
    remembered: Vec<NonNull<ErasedGcBox>>,
    clock: u64,
    since_gc: u64,
    mem_in_use: u64,
    history: ScavengeHistory,
    pauses: SampleStats,
    collecting: bool,
    policy_failures: usize,
}

impl GcState {
    fn new(config: HeapConfig) -> GcState {
        let policy = config.policy.build(&config.budgets);
        GcState {
            config,
            policy,
            objects: Vec::new(),
            remembered: Vec::new(),
            clock: 0,
            since_gc: 0,
            mem_in_use: 0,
            history: ScavengeHistory::new(),
            pauses: SampleStats::new(),
            collecting: false,
            policy_failures: 0,
        }
    }

    pub(crate) fn reconfigure(&mut self, config: HeapConfig) {
        self.policy = config.policy.build(&config.budgets);
        self.config = config;
    }

    pub(crate) fn allocate<T: Trace + 'static>(&mut self, value: T) -> Gc<T> {
        let size = std::mem::size_of::<GcBox<T>>();
        assert!(size < u32::MAX as usize, "object too large for this heap");

        if self.config.auto_collect
            && !self.collecting
            && self.since_gc >= self.config.gc_trigger.as_u64()
        {
            self.collect();
        }

        // The value moves into the heap: its handles stop being roots.
        value.unroot();
        self.clock += size as u64;
        self.since_gc += size as u64;
        self.mem_in_use += size as u64;
        let boxed = Box::new(GcBox {
            header: Header {
                birth: VirtualTime::from_bytes(self.clock),
                size: size as u32,
                roots: Cell::new(1), // the handle we are about to return
                marked: Cell::new(false),
                remembered: Cell::new(false),
            },
            value,
        });
        let raw: *mut GcBox<T> = Box::into_raw(boxed);
        // SAFETY: Box::into_raw never returns null.
        let ptr = unsafe { NonNull::new_unchecked(raw) };
        self.objects
            .push(unsafe { NonNull::new_unchecked(raw as *mut ErasedGcBox) });
        Gc {
            ptr,
            rooted: Cell::new(true),
        }
    }

    /// Registers `src` as a possible source of forward-in-time pointers.
    pub(crate) fn remember(&mut self, src: NonNull<ErasedGcBox>) {
        // SAFETY: the caller holds a live handle to `src`.
        let header = unsafe { &src.as_ref().header };
        if !header.remembered.get() {
            header.remembered.set(true);
            self.remembered.push(src);
        }
    }

    pub(crate) fn stats(&self) -> HeapStats {
        HeapStats {
            allocated_total: Bytes::new(self.clock),
            mem_in_use: Bytes::new(self.mem_in_use),
            object_count: self.objects.len(),
            collections: self.history.len(),
            remembered_count: self.remembered.len(),
            policy_failures: self.policy_failures,
        }
    }

    pub(crate) fn history(&self) -> ScavengeHistory {
        self.history.clone()
    }

    pub(crate) fn pause_stats(&self) -> SampleStats {
        self.pauses.clone()
    }

    /// Performs one scavenge with the configured boundary policy.
    pub(crate) fn collect(&mut self) -> CollectionOutcome {
        assert!(!self.collecting, "re-entrant collection");
        self.collecting = true;

        let now = VirtualTime::from_bytes(self.clock);
        let mem_before = Bytes::new(self.mem_in_use);
        let snapshot = HeapSnapshot::capture(&self.objects);
        let ctx = ScavengeContext {
            now,
            mem_before,
            history: &self.history,
            survival: &snapshot,
        };
        // A failing policy must not leak memory or crash the mutator: fall
        // back to a full collection (TB = 0 threatens everything) and
        // count the incident in the stats.
        let tb = match self.policy.select_boundary(&ctx) {
            Ok(tb) => tb.min(now),
            Err(_) => {
                self.policy_failures += 1;
                VirtualTime::ZERO
            }
        };

        let traced = self.mark(tb);
        let reclaimed = self.sweep(tb);

        self.mem_in_use -= reclaimed.as_u64();
        let surviving = Bytes::new(self.mem_in_use);
        let record = ScavengeRecord {
            at: now,
            boundary: tb,
            traced,
            surviving,
            reclaimed,
            mem_before,
        };
        debug_assert!(record.is_consistent());
        let pause_ms = self.config.cost.pause_ms(traced);
        self.pauses.record(pause_ms);
        self.history.push(record);
        self.since_gc = 0;
        self.collecting = false;
        CollectionOutcome {
            at: now,
            boundary: tb,
            traced,
            reclaimed,
            surviving,
            pause_ms,
        }
    }

    /// Mark phase: from the root set (stack-rooted objects) and the
    /// remembered set (immune objects that may hold forward-in-time
    /// pointers), mark every reachable *threatened* object. Immune objects
    /// are never traversed transitively: their outgoing forward edges are
    /// covered by the remembered set, because a forward-in-time pointer
    /// can only be created by a barriered mutation (at construction time
    /// an object can only point at objects older than itself).
    fn mark(&mut self, tb: VirtualTime) -> Bytes {
        let mut traced = 0u64;
        let mut tracer = Tracer::new();
        let mut grey: Vec<NonNull<ErasedGcBox>> = Vec::new();

        let shade =
            |ptr: NonNull<ErasedGcBox>, grey: &mut Vec<NonNull<ErasedGcBox>>, traced: &mut u64| {
                // SAFETY: objects in the registry are live allocations.
                let b = unsafe { ptr.as_ref() };
                if b.is_threatened(tb) && !b.header.marked.get() {
                    b.header.marked.set(true);
                    *traced += b.header.size as u64;
                    grey.push(ptr);
                }
            };

        for &ptr in &self.objects {
            // SAFETY: registry objects are live.
            let b = unsafe { ptr.as_ref() };
            b.header.marked.set(false);
            if b.header.roots.get() > 0 {
                if b.is_threatened(tb) {
                    // Re-set below in shade (cleared just above).
                    shade(ptr, &mut grey, &mut traced);
                } else {
                    // Rooted immune object: its children are roots.
                    b.value.trace(&mut tracer);
                }
            }
        }
        for &src in &self.remembered {
            // SAFETY: remembered entries are purged at sweep, so live.
            let b = unsafe { src.as_ref() };
            if !b.is_threatened(tb) {
                b.value.trace(&mut tracer);
            }
        }

        loop {
            for edge in std::mem::take(&mut tracer.reached) {
                shade(edge, &mut grey, &mut traced);
            }
            let Some(ptr) = grey.pop() else {
                if tracer.reached.is_empty() {
                    break;
                }
                continue;
            };
            // SAFETY: marked objects are live.
            unsafe { ptr.as_ref() }.value.trace(&mut tracer);
        }
        Bytes::new(traced)
    }

    /// Sweep phase: free unmarked threatened objects; purge remembered
    /// entries whose object was freed.
    fn sweep(&mut self, tb: VirtualTime) -> Bytes {
        let mut reclaimed = 0u64;
        let mut freed: HashSet<usize> = HashSet::new();
        self.objects.retain(|&ptr| {
            // SAFETY: registry objects are live until this very retain
            // decides to free them.
            let b = unsafe { ptr.as_ref() };
            if b.is_threatened(tb) && !b.header.marked.get() {
                reclaimed += b.header.size as u64;
                freed.insert(ptr.as_ptr() as *const u8 as usize);
                // SAFETY: unreachable object; no rooted handle exists and
                // no reachable object points at it. Dropping reclaims it.
                drop(unsafe { Box::from_raw(ptr.as_ptr()) });
                false
            } else {
                true
            }
        });
        if !freed.is_empty() {
            self.remembered
                .retain(|&src| !freed.contains(&(src.as_ptr() as *const u8 as usize)));
        }
        Bytes::new(reclaimed)
    }
}

/// The policy estimator over the real heap: **all** bytes born after the
/// boundary, live or not — a real collector cannot consult a death oracle,
/// so it over-estimates (and therefore never under-mediates).
struct HeapSnapshot {
    births: Vec<VirtualTime>,
    size_suffix: Vec<u64>,
}

impl HeapSnapshot {
    fn capture(objects: &[NonNull<ErasedGcBox>]) -> HeapSnapshot {
        let mut births = Vec::with_capacity(objects.len());
        let mut sizes = Vec::with_capacity(objects.len());
        for &ptr in objects {
            // SAFETY: registry objects are live.
            let b = unsafe { ptr.as_ref() };
            births.push(b.header.birth);
            sizes.push(b.header.size as u64);
        }
        let mut size_suffix = vec![0u64; sizes.len() + 1];
        for i in (0..sizes.len()).rev() {
            size_suffix[i] = size_suffix[i + 1] + sizes[i];
        }
        HeapSnapshot {
            births,
            size_suffix,
        }
    }
}

impl SurvivalEstimator for HeapSnapshot {
    fn surviving_born_after(&self, tb: VirtualTime) -> Bytes {
        let idx = self.births.partition_point(|b| *b <= tb);
        Bytes::new(self.size_suffix[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{collect_now, configure, heap_stats};
    use crate::cell::GcCell;

    struct Node {
        next: GcCell<Option<Gc<Node>>>,
        _payload: [u8; 64],
    }
    // SAFETY: `next` is the only Gc-bearing field.
    unsafe impl Trace for Node {
        fn trace(&self, t: &mut Tracer) {
            self.next.trace(t);
        }
        fn root(&self) {
            self.next.root();
        }
        fn unroot(&self) {
            self.next.unroot();
        }
    }

    fn node() -> Gc<Node> {
        Gc::new(Node {
            next: GcCell::new(None),
            _payload: [0; 64],
        })
    }

    #[test]
    fn unreachable_objects_are_reclaimed_by_full_collection() {
        configure(HeapConfig::manual_full());
        let keep = node();
        let before = heap_stats().mem_in_use;
        {
            let _drop_me = node();
            let _and_me = node();
        }
        let out = collect_now();
        assert!(
            out.reclaimed >= Bytes::new(128),
            "reclaimed {:?}",
            out.reclaimed
        );
        assert!(heap_stats().mem_in_use < before + Bytes::new(200));
        // The rooted object survived.
        assert!(keep.next.borrow().is_none());
    }

    #[test]
    fn reachable_chain_survives_collection() {
        configure(HeapConfig::manual_full());
        let head = node();
        let mid = node();
        let tail = node();
        head.next.set(&head, Some(mid.clone()));
        mid.next.set(&mid, Some(tail.clone()));
        drop(mid);
        drop(tail);
        collect_now();
        // Walk the chain through the only root.
        let mid_ref = head.next.borrow().clone().unwrap();
        let tail_ref = mid_ref.next.borrow().clone().unwrap();
        assert!(tail_ref.next.borrow().is_none());
    }

    #[test]
    fn forward_pointer_across_boundary_is_kept_by_remembered_set() {
        // FIXED1-style boundary: the old object is immune, the young one
        // threatened; only the remembered set can keep the young one.
        configure(HeapConfig::manual_fixed1());
        let old = node();
        collect_now(); // old becomes "previous scavenge" material
        collect_now(); // boundary now ≥ old's birth ⇒ old immune
        let young = node();
        old.next.set(&old, Some(young.clone()));
        let young_birth = young.birth();
        drop(young); // no stack root: only the heap edge keeps it
        let out = collect_now();
        assert!(out.boundary < young_birth, "young must be threatened");
        assert!(out.boundary >= old.birth(), "old must be immune");
        // The young object survived via the remembered set.
        assert!(old.next.borrow().is_some());
        let again = old.next.borrow().clone().unwrap();
        assert_eq!(again.birth(), young_birth);
    }

    #[test]
    fn heap_snapshot_suffix_sums_match_naive() {
        configure(HeapConfig::manual_full());
        let _a = node();
        let _b = node();
        let _c = node();
        with_state(|s| {
            let snap = HeapSnapshot::capture(&s.objects);
            for tb in [0u64, 1, 10_000_000] {
                let tb = VirtualTime::from_bytes(tb);
                let naive: u64 = s
                    .objects
                    .iter()
                    .map(|&p| unsafe { p.as_ref() })
                    .filter(|b| b.header.birth > tb)
                    .map(|b| b.header.size as u64)
                    .sum();
                assert_eq!(snap.surviving_born_after(tb), Bytes::new(naive));
            }
        });
    }
}
