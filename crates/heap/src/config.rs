//! Heap configuration: the two user-facing knobs plus machine parameters.

use dtb_core::cost::CostModel;
use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_core::time::Bytes;
use serde::{Deserialize, Serialize};

/// Configuration of the per-thread garbage-collected heap.
///
/// True to the paper's thesis, the tuning surface is two
/// directly-meaningful budgets inside [`PolicyConfig`] — a pause-time
/// budget (as `Trace_max`) or a memory budget (`Mem_max`) — selected by
/// the [`PolicyKind`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeapConfig {
    /// The boundary-selection policy.
    pub policy: PolicyKind,
    /// Budgets consumed by the constrained policies.
    pub budgets: PolicyConfig,
    /// Allocation between automatic scavenges.
    pub gc_trigger: Bytes,
    /// Machine model used to attribute pause times.
    pub cost: CostModel,
    /// When false, scavenges only run on explicit
    /// [`collect_now`](crate::collect_now) calls.
    pub auto_collect: bool,
}

impl HeapConfig {
    /// The paper's configuration with the pause-constrained `DTBFM`
    /// policy: 100 ms pauses, 1 MB trigger.
    pub fn paper_dtbfm() -> HeapConfig {
        HeapConfig {
            policy: PolicyKind::DtbFm,
            budgets: PolicyConfig::paper(),
            gc_trigger: Bytes::new(1_000_000),
            cost: CostModel::paper(),
            auto_collect: true,
        }
    }

    /// The paper's configuration with the memory-constrained `DTBMEM`
    /// policy: 3000 KB memory budget, 1 MB trigger.
    pub fn paper_dtbmem() -> HeapConfig {
        HeapConfig {
            policy: PolicyKind::DtbMem,
            ..HeapConfig::paper_dtbfm()
        }
    }

    /// Manual-only full collection (tests and deterministic examples).
    pub fn manual_full() -> HeapConfig {
        HeapConfig {
            policy: PolicyKind::Full,
            auto_collect: false,
            ..HeapConfig::paper_dtbfm()
        }
    }

    /// Manual-only `FIXED1` generational collection (tests).
    pub fn manual_fixed1() -> HeapConfig {
        HeapConfig {
            policy: PolicyKind::Fixed1,
            auto_collect: false,
            ..HeapConfig::paper_dtbfm()
        }
    }

    /// Sets the policy, keeping everything else.
    pub fn with_policy(mut self, policy: PolicyKind) -> HeapConfig {
        self.policy = policy;
        self
    }

    /// Sets the budgets, keeping everything else.
    pub fn with_budgets(mut self, budgets: PolicyConfig) -> HeapConfig {
        self.budgets = budgets;
        self
    }

    /// Sets the automatic-collection trigger, keeping everything else.
    pub fn with_trigger(mut self, trigger: Bytes) -> HeapConfig {
        self.gc_trigger = trigger;
        self
    }
}

impl Default for HeapConfig {
    /// Defaults to the paper's `DTBFM` configuration.
    fn default() -> Self {
        HeapConfig::paper_dtbfm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_where_stated() {
        let fm = HeapConfig::paper_dtbfm();
        let mem = HeapConfig::paper_dtbmem();
        assert_eq!(fm.policy, PolicyKind::DtbFm);
        assert_eq!(mem.policy, PolicyKind::DtbMem);
        assert_eq!(fm.gc_trigger, mem.gc_trigger);
        assert!(fm.auto_collect);
        assert!(!HeapConfig::manual_full().auto_collect);
    }

    #[test]
    fn builders_compose() {
        let c = HeapConfig::default()
            .with_policy(PolicyKind::Fixed4)
            .with_trigger(Bytes::new(500));
        assert_eq!(c.policy, PolicyKind::Fixed4);
        assert_eq!(c.gc_trigger, Bytes::new(500));
    }
}
