//! `GcCell`: interior mutability with a write barrier.
//!
//! Mutating a heap object can create **forward-in-time pointers** (an old
//! object pointing at a younger one). With a movable threatening boundary,
//! any such pointer may cross a future boundary, so the collector keeps a
//! *single remembered set* of every object that has performed such a store
//! (Section 4.2 of the paper). `GcCell` is the only way to mutate data
//! inside the heap, and every mutating method takes the **owning object's
//! handle** so the barrier can register the source.
//!
//! The owner argument is validated: the cell must lie inside the owner's
//! allocation, so passing the wrong owner panics instead of corrupting
//! the remembered set.

use crate::gc::Gc;
use crate::state::with_state;
use crate::trace_trait::{Trace, Tracer};
use std::cell::{Ref, RefCell, RefMut};

/// A mutable slot inside a garbage-collected object.
///
/// # Example
///
/// ```
/// use dtb_heap::{Gc, GcCell, Trace, Tracer};
///
/// struct Node {
///     next: GcCell<Option<Gc<Node>>>,
/// }
/// // SAFETY: `next` is the only field holding Gc edges.
/// unsafe impl Trace for Node {
///     fn trace(&self, t: &mut Tracer) { self.next.trace(t) }
///     fn root(&self) { self.next.root() }
///     fn unroot(&self) { self.next.unroot() }
/// }
///
/// let first = Gc::new(Node { next: GcCell::new(None) });
/// let second = Gc::new(Node { next: GcCell::new(None) });
/// // The write barrier records `first` (the owner) in the remembered set.
/// first.next.set(&first, Some(second.clone()));
/// assert!(Gc::ptr_eq(
///     first.next.borrow().as_ref().unwrap(),
///     &second,
/// ));
/// ```
pub struct GcCell<T: Trace> {
    inner: RefCell<T>,
}

impl<T: Trace> GcCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> GcCell<T> {
        GcCell {
            inner: RefCell::new(value),
        }
    }

    /// Immutably borrows the contents.
    ///
    /// # Panics
    ///
    /// Panics if the cell is currently mutably borrowed.
    pub fn borrow(&self) -> Ref<'_, T> {
        self.inner.borrow()
    }

    /// Checks that this cell lives inside `owner`'s allocation; the write
    /// barrier depends on the owner being the true containing object.
    fn assert_owned_by<O: Trace + 'static>(&self, owner: &Gc<O>) {
        let cell_addr = self as *const _ as usize;
        let erased = owner.erased();
        // SAFETY: owner is a live handle; reading its header is valid.
        let (base, size) = unsafe {
            let b = erased.as_ref();
            (
                erased.as_ptr() as *const u8 as usize,
                b.header.size as usize,
            )
        };
        assert!(
            cell_addr >= base && cell_addr < base + size,
            "write barrier: the cell at {cell_addr:#x} is not inside the \
             claimed owner object [{base:#x}, {:#x}); pass the Gc handle of \
             the object that directly contains this GcCell",
            base + size
        );
    }

    /// Replaces the contents, registering `owner` in the remembered set.
    ///
    /// `owner` must be the heap object that directly contains this cell.
    ///
    /// # Panics
    ///
    /// Panics if `owner` does not contain this cell, or if the cell is
    /// currently borrowed.
    pub fn set<O: Trace + 'static>(&self, owner: &Gc<O>, value: T) {
        drop(self.replace(owner, value));
    }

    /// Replaces the contents and returns the old value (re-rooted for use
    /// on the stack).
    ///
    /// # Panics
    ///
    /// See [`GcCell::set`].
    pub fn replace<O: Trace + 'static>(&self, owner: &Gc<O>, value: T) -> T {
        self.assert_owned_by(owner);
        with_state(|s| s.remember(owner.erased()));
        // The new value moves into the heap: its handles stop rooting.
        value.unroot();
        let old = self.inner.replace(value);
        // The old value moves out to the caller's stack: re-root it.
        old.root();
        old
    }

    /// Mutably borrows the contents, registering `owner` in the remembered
    /// set. The contents are rooted for the duration of the borrow, so a
    /// scavenge triggered by allocation inside the borrow scope cannot
    /// collect them.
    ///
    /// # Panics
    ///
    /// See [`GcCell::set`]; also panics if already borrowed.
    pub fn borrow_mut<O: Trace + 'static>(&self, owner: &Gc<O>) -> GcCellRefMut<'_, T> {
        self.assert_owned_by(owner);
        with_state(|s| s.remember(owner.erased()));
        let guard = self.inner.borrow_mut();
        // Root the contents while the mutator can replace heap edges.
        guard.root();
        GcCellRefMut { guard }
    }
}

impl<T: Trace + Default> GcCell<T> {
    /// Takes the contents, leaving `T::default()`.
    ///
    /// # Panics
    ///
    /// See [`GcCell::set`].
    pub fn take<O: Trace + 'static>(&self, owner: &Gc<O>) -> T {
        self.replace(owner, T::default())
    }
}

/// The guard returned by [`GcCell::borrow_mut`]; contents stay rooted
/// until it drops.
pub struct GcCellRefMut<'a, T: Trace> {
    guard: RefMut<'a, T>,
}

impl<T: Trace> std::ops::Deref for GcCellRefMut<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: Trace> std::ops::DerefMut for GcCellRefMut<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: Trace> Drop for GcCellRefMut<'_, T> {
    fn drop(&mut self) {
        // The contents are back inside the heap only.
        self.guard.unroot();
    }
}

// SAFETY: delegates to the contents. A mutably-borrowed cell is skipped:
// its contents are rooted by the outstanding guard, so the collector
// reaches them through the root set instead.
unsafe impl<T: Trace> Trace for GcCell<T> {
    fn trace(&self, tracer: &mut Tracer) {
        if let Ok(v) = self.inner.try_borrow() {
            v.trace(tracer);
        }
    }
    fn root(&self) {
        if let Ok(v) = self.inner.try_borrow() {
            v.root();
        }
    }
    fn unroot(&self) {
        if let Ok(v) = self.inner.try_borrow() {
            v.unroot();
        }
    }
}

impl<T: Trace + std::fmt::Debug> std::fmt::Debug for GcCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_borrow() {
            Ok(v) => f.debug_tuple("GcCell").field(&*v).finish(),
            Err(_) => f.write_str("GcCell(<mutably borrowed>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_trace_for_pod;

    struct Holder {
        slot: GcCell<Option<Gc<u64>>>,
        counter: GcCell<u32>,
    }
    // SAFETY: both cells are traced.
    unsafe impl Trace for Holder {
        fn trace(&self, t: &mut Tracer) {
            self.slot.trace(t);
            self.counter.trace(t);
        }
        fn root(&self) {
            self.slot.root();
            self.counter.root();
        }
        fn unroot(&self) {
            self.slot.unroot();
            self.counter.unroot();
        }
    }

    struct Unrelated(#[allow(dead_code)] u8);
    impl_trace_for_pod!(Unrelated);

    fn holder() -> Gc<Holder> {
        Gc::new(Holder {
            slot: GcCell::new(None),
            counter: GcCell::new(0),
        })
    }

    #[test]
    fn set_and_borrow_round_trip() {
        let h = holder();
        let target = Gc::new(99u64);
        h.slot.set(&h, Some(target.clone()));
        assert!(Gc::ptr_eq(h.slot.borrow().as_ref().unwrap(), &target));
    }

    #[test]
    fn replace_returns_old_value() {
        let h = holder();
        let first = Gc::new(1u64);
        let second = Gc::new(2u64);
        h.slot.set(&h, Some(first.clone()));
        let old = h.slot.replace(&h, Some(second));
        assert!(Gc::ptr_eq(old.as_ref().unwrap(), &first));
    }

    #[test]
    fn borrow_mut_guard_mutates() {
        let h = holder();
        *h.counter.borrow_mut(&h) = 5;
        assert_eq!(*h.counter.borrow(), 5);
    }

    #[test]
    #[should_panic(expected = "not inside the claimed owner")]
    fn wrong_owner_is_rejected() {
        let h = holder();
        let imposter = Gc::new(Unrelated(0));
        h.counter.set(&imposter, 1);
    }

    #[test]
    fn debug_formats() {
        let h = holder();
        assert!(format!("{:?}", h.counter).contains("GcCell"));
    }
}
