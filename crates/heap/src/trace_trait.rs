//! The `Trace` trait: how the collector walks object graphs.
//!
//! Every type stored in the garbage-collected heap implements [`Trace`].
//! The collector uses three recursive walks:
//!
//! * [`Trace::trace`] — visit every [`Gc`](crate::Gc) edge (marking);
//! * [`Trace::unroot`] — a value is moving *into* the heap; its `Gc`
//!   handles stop being stack roots;
//! * [`Trace::root`] — a value is moving *out* of the heap back onto the
//!   stack; its `Gc` handles become stack roots again.
//!
//! # Safety
//!
//! `Trace` is an `unsafe trait`: an implementation that fails to visit
//! every reachable `Gc` edge in all three walks can cause the collector to
//! free a reachable object. Implement it by delegating to every field, or
//! use the [`impl_trace_for_pod!`](crate::impl_trace_for_pod) macro for
//! types with no `Gc` edges.

use crate::gc::ErasedGcBox;
use std::ptr::NonNull;

/// The marking visitor handed to [`Trace::trace`].
#[derive(Debug, Default)]
pub struct Tracer {
    pub(crate) reached: Vec<NonNull<ErasedGcBox>>,
}

impl Tracer {
    pub(crate) fn new() -> Tracer {
        Tracer::default()
    }

    /// Called by `Gc`'s `Trace` impl: records an edge to a heap object.
    pub(crate) fn edge(&mut self, target: NonNull<ErasedGcBox>) {
        self.reached.push(target);
    }
}

/// Types that can live in the garbage-collected heap.
///
/// # Safety
///
/// All three methods must visit **every** `Gc` handle reachable through
/// `self` (exactly once each). Missing an edge in `trace` can free live
/// objects; missing one in `root`/`unroot` corrupts root counts.
pub unsafe trait Trace {
    /// Visits every `Gc` edge for marking.
    fn trace(&self, tracer: &mut Tracer);
    /// Transitions every `Gc` handle to non-root (value moved into heap).
    fn root(&self);
    /// Transitions every `Gc` handle to root (value moved out of heap).
    fn unroot(&self);
}

/// Implements [`Trace`] as a no-op for plain-old-data types containing no
/// `Gc` handles.
///
/// ```
/// # use dtb_heap::impl_trace_for_pod;
/// struct Rgb(u8, u8, u8);
/// impl_trace_for_pod!(Rgb);
/// ```
#[macro_export]
macro_rules! impl_trace_for_pod {
    ($($ty:ty),* $(,)?) => {
        $(
            // SAFETY: the caller asserts the type holds no Gc handles.
            unsafe impl $crate::Trace for $ty {
                fn trace(&self, _tracer: &mut $crate::Tracer) {}
                fn root(&self) {}
                fn unroot(&self) {}
            }
        )*
    };
}

impl_trace_for_pod!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    &'static str
);

// SAFETY: delegates to the payload when present.
unsafe impl<T: Trace> Trace for Option<T> {
    fn trace(&self, tracer: &mut Tracer) {
        if let Some(v) = self {
            v.trace(tracer);
        }
    }
    fn root(&self) {
        if let Some(v) = self {
            v.root();
        }
    }
    fn unroot(&self) {
        if let Some(v) = self {
            v.unroot();
        }
    }
}

// SAFETY: delegates to every element.
unsafe impl<T: Trace> Trace for Vec<T> {
    fn trace(&self, tracer: &mut Tracer) {
        for v in self {
            v.trace(tracer);
        }
    }
    fn root(&self) {
        for v in self {
            v.root();
        }
    }
    fn unroot(&self) {
        for v in self {
            v.unroot();
        }
    }
}

// SAFETY: delegates to the boxed value.
unsafe impl<T: Trace + ?Sized> Trace for Box<T> {
    fn trace(&self, tracer: &mut Tracer) {
        (**self).trace(tracer);
    }
    fn root(&self) {
        (**self).root();
    }
    fn unroot(&self) {
        (**self).unroot();
    }
}

// SAFETY: delegates to every element.
unsafe impl<T: Trace, const N: usize> Trace for [T; N] {
    fn trace(&self, tracer: &mut Tracer) {
        for v in self {
            v.trace(tracer);
        }
    }
    fn root(&self) {
        for v in self {
            v.root();
        }
    }
    fn unroot(&self) {
        for v in self {
            v.unroot();
        }
    }
}

macro_rules! impl_trace_tuple {
    ($($name:ident : $idx:tt),+) => {
        // SAFETY: delegates to every component.
        unsafe impl<$($name: Trace),+> Trace for ($($name,)+) {
            fn trace(&self, tracer: &mut Tracer) {
                $(self.$idx.trace(tracer);)+
            }
            fn root(&self) {
                $(self.$idx.root();)+
            }
            fn unroot(&self) {
                $(self.$idx.unroot();)+
            }
        }
    };
}

impl_trace_tuple!(A: 0);
impl_trace_tuple!(A: 0, B: 1);
impl_trace_tuple!(A: 0, B: 1, C: 2);
impl_trace_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_impls_do_nothing() {
        let mut t = Tracer::new();
        42u64.trace(&mut t);
        "hi".trace(&mut t);
        String::from("x").trace(&mut t);
        assert!(t.reached.is_empty());
    }

    #[test]
    fn containers_delegate() {
        // Containers of POD values also produce no edges but must compile
        // and recurse without panicking.
        let mut t = Tracer::new();
        Some(1u8).trace(&mut t);
        vec![1u32, 2, 3].trace(&mut t);
        [1u8; 4].trace(&mut t);
        (1u8, 2u16, 3u32).trace(&mut t);
        Box::new(7i64).trace(&mut t);
        assert!(t.reached.is_empty());
    }
}

/// Implements [`Trace`] for a struct by delegating to the listed fields.
///
/// List **every** field that can reach a [`Gc`](crate::Gc) handle; fields
/// holding only plain data may be omitted. This removes the main
/// boilerplate (and the main source of mistakes) in hand-written `Trace`
/// impls.
///
/// # Safety
///
/// The expansion is an `unsafe impl Trace`: by invoking the macro you
/// assert the listed fields cover every `Gc` edge reachable through the
/// type. Omitting one can make the collector free a live object.
///
/// ```
/// use dtb_heap::{impl_trace_fields, Gc, GcCell};
///
/// struct Pair {
///     label: String,                       // no Gc edges: not listed
///     left: GcCell<Option<Gc<u64>>>,
///     right: GcCell<Option<Gc<u64>>>,
/// }
/// impl_trace_fields!(Pair { left, right });
///
/// let p = Gc::new(Pair {
///     label: "p".into(),
///     left: GcCell::new(None),
///     right: GcCell::new(None),
/// });
/// p.left.set(&p, Some(Gc::new(1)));
/// assert_eq!(p.label, "p");
/// ```
#[macro_export]
macro_rules! impl_trace_fields {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        // SAFETY: the macro invoker asserts the listed fields cover every
        // Gc edge reachable through the type.
        unsafe impl $crate::Trace for $ty {
            fn trace(&self, tracer: &mut $crate::Tracer) {
                let _ = &tracer; // empty field lists leave tracer unused
                $($crate::Trace::trace(&self.$field, tracer);)*
            }
            fn root(&self) {
                $($crate::Trace::root(&self.$field);)*
            }
            fn unroot(&self) {
                $($crate::Trace::unroot(&self.$field);)*
            }
        }
    };
}

#[cfg(test)]
mod field_macro_tests {
    use crate::{collect_now, configure, Gc, GcCell, HeapConfig};

    struct Wide {
        _meta: u32,
        a: GcCell<Option<Gc<u64>>>,
        b: GcCell<Option<Gc<u64>>>,
    }
    impl_trace_fields!(Wide { a, b });

    #[test]
    fn macro_generated_impl_keeps_edges_alive() {
        configure(HeapConfig::manual_full());
        let w = Gc::new(Wide {
            _meta: 0,
            a: GcCell::new(None),
            b: GcCell::new(None),
        });
        let x = Gc::new(7u64);
        let y = Gc::new(9u64);
        w.a.set(&w, Some(x));
        w.b.set(&w, Some(y));
        collect_now();
        assert_eq!(**w.a.borrow().as_ref().unwrap(), 7);
        assert_eq!(**w.b.borrow().as_ref().unwrap(), 9);
    }

    #[test]
    fn macro_accepts_trailing_comma_and_empty_list() {
        struct NoEdges {
            _x: u8,
        }
        impl_trace_fields!(NoEdges {});
        struct Trailing {
            c: GcCell<Option<Gc<u64>>>,
        }
        impl_trace_fields!(Trailing { c });
        configure(HeapConfig::manual_full());
        let t = Gc::new(Trailing {
            c: GcCell::new(None),
        });
        let _n = Gc::new(NoEdges { _x: 1 });
        t.c.set(&t, Some(Gc::new(3)));
        collect_now();
        assert_eq!(**t.c.borrow().as_ref().unwrap(), 3);
    }
}
