//! The heap-level public API: configuration, explicit collection, and
//! introspection of this thread's heap.

use crate::config::HeapConfig;
use crate::state::{with_state, CollectionOutcome, HeapStats};
use dtb_core::history::ScavengeHistory;
use dtb_core::stats::SampleStats;

/// Reconfigures this thread's heap (policy, budgets, trigger).
///
/// Existing objects are kept; only future boundary decisions change. The
/// scavenge history carries over, so a newly-installed policy sees the
/// past collections.
///
/// # Example
///
/// ```
/// use dtb_heap::{configure, HeapConfig};
/// use dtb_core::policy::{PolicyConfig, PolicyKind};
/// use dtb_core::time::Bytes;
///
/// configure(
///     HeapConfig::default()
///         .with_policy(PolicyKind::DtbMem)
///         .with_budgets(PolicyConfig::new(Bytes::new(50_000), Bytes::from_kb(3000))),
/// );
/// ```
pub fn configure(config: HeapConfig) {
    with_state(|s| s.reconfigure(config));
}

/// Runs a scavenge now, with the configured boundary policy.
pub fn collect_now() -> CollectionOutcome {
    with_state(|s| s.collect())
}

/// A snapshot of this thread's heap counters.
pub fn heap_stats() -> HeapStats {
    with_state(|s| s.stats())
}

/// The full scavenge history of this thread's heap.
pub fn history() -> ScavengeHistory {
    with_state(|s| s.history())
}

/// Pause-time samples (milliseconds) of every scavenge so far.
pub fn pause_stats() -> SampleStats {
    with_state(|s| s.pause_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gc;

    #[test]
    fn stats_track_allocation() {
        configure(HeapConfig::manual_full());
        let before = heap_stats();
        let _g = Gc::new([0u8; 256]);
        let after = heap_stats();
        assert!(after.allocated_total > before.allocated_total);
        assert!(after.mem_in_use > before.mem_in_use);
        assert_eq!(after.object_count, before.object_count + 1);
    }

    #[test]
    fn collect_now_records_history_and_pauses() {
        configure(HeapConfig::manual_full());
        let n = history().len();
        collect_now();
        assert_eq!(history().len(), n + 1);
        assert_eq!(pause_stats().len(), n + 1);
    }
}
