//! `Gc<T>`: the garbage-collected pointer, and the heap object layout.
//!
//! Every heap object is a [`GcBox`]: a header (birth time on the
//! allocation clock, root count, mark bit) followed by the value. A
//! [`Gc<T>`] handle on the stack counts as a *root* for its target; a
//! `Gc` stored inside another heap object does not (the collector finds it
//! by tracing). The transition between the two states happens through
//! [`Trace::root`]/[`Trace::unroot`] as values move in and out of the
//! heap — the same design as the `rust-gc` crate, which keeps the public
//! API safe: an object can only be collected when no stack handle and no
//! heap path can reach it.

use crate::state::with_state;
use crate::trace_trait::{Trace, Tracer};
use dtb_core::time::VirtualTime;
use std::cell::Cell;
use std::fmt;
use std::ops::Deref;
use std::ptr::NonNull;

/// Per-object collector metadata.
pub(crate) struct Header {
    /// Allocation-clock birth time: the coordinate the threatening
    /// boundary is compared against.
    pub(crate) birth: VirtualTime,
    /// Total allocation size of the box (header + value), in bytes.
    pub(crate) size: u32,
    /// Number of stack handles rooting this object.
    pub(crate) roots: Cell<u32>,
    /// Mark bit for the current scavenge.
    pub(crate) marked: Cell<bool>,
    /// Set when this object has been registered in the remembered set.
    pub(crate) remembered: Cell<bool>,
}

/// A heap object: header + value, `repr(C)` so the header can be read
/// through a type-erased pointer.
#[repr(C)]
pub(crate) struct GcBox<T: Trace + ?Sized + 'static> {
    pub(crate) header: Header,
    pub(crate) value: T,
}

/// The type-erased form of [`GcBox`] the collector works with.
pub(crate) type ErasedGcBox = GcBox<dyn Trace>;

impl ErasedGcBox {
    pub(crate) fn is_threatened(&self, tb: VirtualTime) -> bool {
        self.header.birth > tb
    }
}

/// A pointer to a garbage-collected `T`.
///
/// `Gc` is `Clone` (cheap pointer copy) but deliberately not `Copy`: the
/// handle tracks whether it is currently a root, and clone/drop maintain
/// the target's root count. It dereferences to `&T`; interior mutability
/// (and the write barrier) comes from [`GcCell`](crate::GcCell).
///
/// `Gc` is not `Send`/`Sync`: each thread has its own heap.
///
/// # Example
///
/// ```
/// use dtb_heap::Gc;
///
/// let answer = Gc::new(42u64);
/// assert_eq!(*answer, 42);
/// let alias = answer.clone();
/// assert!(Gc::ptr_eq(&answer, &alias));
/// ```
pub struct Gc<T: Trace + 'static> {
    pub(crate) ptr: NonNull<GcBox<T>>,
    /// Whether *this handle* currently contributes to the target's root
    /// count (true on the stack, false once moved into the heap).
    pub(crate) rooted: Cell<bool>,
}

impl<T: Trace + 'static> Gc<T> {
    /// Allocates `value` in this thread's garbage-collected heap.
    ///
    /// May trigger a scavenge first (if the allocation trigger has been
    /// reached); the new object is born *after* that scavenge and cannot
    /// be collected by it.
    pub fn new(value: T) -> Gc<T> {
        with_state(|s| s.allocate(value))
    }
}

impl<T: Trace + 'static> Gc<T> {
    fn header(&self) -> &Header {
        // SAFETY: a rooted or heap-reachable handle always points at a
        // live box; the collector never frees rooted or reachable objects.
        unsafe { &self.ptr.as_ref().header }
    }

    /// The object's birth time on the allocation clock.
    pub fn birth(&self) -> VirtualTime {
        self.header().birth
    }

    /// Pointer identity: true when both handles address the same object.
    pub fn ptr_eq(a: &Gc<T>, b: &Gc<T>) -> bool {
        std::ptr::eq(a.ptr.as_ptr() as *const u8, b.ptr.as_ptr() as *const u8)
    }

    pub(crate) fn erased(&self) -> NonNull<ErasedGcBox> {
        // SAFETY: the pointer is valid; this only unsizes it.
        unsafe { NonNull::new_unchecked(self.ptr.as_ptr() as *mut ErasedGcBox) }
    }
}

impl<T: Trace + 'static> Deref for Gc<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: see `header` — reachable objects are never freed.
        unsafe { &self.ptr.as_ref().value }
    }
}

impl<T: Trace + 'static> Clone for Gc<T> {
    fn clone(&self) -> Gc<T> {
        // A fresh handle lives on the stack, so it roots the target.
        self.header().roots.set(self.header().roots.get() + 1);
        Gc {
            ptr: self.ptr,
            rooted: Cell::new(true),
        }
    }
}

impl<T: Trace + 'static> Drop for Gc<T> {
    fn drop(&mut self) {
        if self.rooted.get() {
            let header = self.header();
            header.roots.set(header.roots.get() - 1);
        }
        // Unrooted handles live inside heap objects; they are dropped by
        // the collector after their target may already be gone, so they
        // must not touch the target. No-op is exactly right.
    }
}

// SAFETY: `trace` reports the single edge; root/unroot maintain the
// handle-state ↔ root-count invariant.
unsafe impl<T: Trace + 'static> Trace for Gc<T> {
    fn trace(&self, tracer: &mut Tracer) {
        tracer.edge(self.erased());
    }

    fn root(&self) {
        if !self.rooted.get() {
            self.rooted.set(true);
            let header = self.header();
            header.roots.set(header.roots.get() + 1);
        }
    }

    fn unroot(&self) {
        if self.rooted.get() {
            self.rooted.set(false);
            let header = self.header();
            header.roots.set(header.roots.get() - 1);
        }
    }
}

impl<T: Trace + fmt::Debug + 'static> fmt::Debug for Gc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Gc").field(&&**self).finish()
    }
}

impl<T: Trace + fmt::Display + 'static> fmt::Display for Gc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: Trace + PartialEq + 'static> PartialEq for Gc<T> {
    fn eq(&self, other: &Gc<T>) -> bool {
        **self == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deref_reads_value() {
        let g = Gc::new(123u64);
        assert_eq!(*g, 123);
    }

    #[test]
    fn clone_is_pointer_identity() {
        let a = Gc::new(String::from("hello"));
        let b = a.clone();
        assert!(Gc::ptr_eq(&a, &b));
        assert_eq!(*a, *b);
        let c = Gc::new(String::from("hello"));
        assert!(!Gc::ptr_eq(&a, &c));
        assert_eq!(a, c); // value equality
    }

    #[test]
    fn birth_times_increase_with_allocation() {
        let a = Gc::new(1u8);
        let b = Gc::new(2u8);
        assert!(a.birth() < b.birth());
    }

    #[test]
    fn debug_and_display_format() {
        let g = Gc::new(7u32);
        assert_eq!(format!("{g:?}"), "Gc(7)");
        assert_eq!(format!("{g}"), "7");
    }
}
