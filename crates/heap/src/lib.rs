//! A real single-threaded mark–sweep garbage collector with a **dynamic
//! threatening boundary**.
//!
//! This crate demonstrates that the implementation requirements Barrett &
//! Zorn describe in Section 4.2 of the paper are realizable in a working
//! collector:
//!
//! * every object records its **birth time** on the allocation clock
//!   (bytes allocated so far), so the threatened set for any boundary is
//!   decidable at scavenge time;
//! * a **single remembered set** records every object that may hold a
//!   forward-in-time pointer (old → young), installed by the write
//!   barrier in [`GcCell`]; with a movable boundary, any such pointer may
//!   cross a future boundary, so all of them are remembered — not just the
//!   ones crossing the current boundary;
//! * before each scavenge the configured
//!   [`TbPolicy`](dtb_core::policy::TbPolicy) picks the boundary: objects
//!   born after it are traced and reclaimable, older objects are immune.
//!   Boundaries may move **backward**, untenuring garbage that an eager
//!   earlier boundary stranded — the move generational promotion cannot
//!   make.
//!
//! The pointer API follows the `rust-gc` design so that it stays entirely
//! safe: [`Gc`] handles on the stack are roots (maintained by
//! `Clone`/`Drop`), handles inside the heap are found by tracing
//! ([`Trace`]), and all mutation goes through [`GcCell`], whose methods
//! take the owning object's handle to feed the write barrier (validated:
//! the cell must lie inside the owner's allocation).
//!
//! # Quick start
//!
//! ```
//! use dtb_heap::{collect_now, configure, Gc, GcCell, HeapConfig, Trace, Tracer};
//!
//! struct Node {
//!     label: u32,
//!     next: GcCell<Option<Gc<Node>>>,
//! }
//! // SAFETY: `next` is the only field containing Gc edges.
//! unsafe impl Trace for Node {
//!     fn trace(&self, t: &mut Tracer) { self.next.trace(t) }
//!     fn root(&self) { self.next.root() }
//!     fn unroot(&self) { self.next.unroot() }
//! }
//!
//! configure(HeapConfig::manual_full());
//! let head = Gc::new(Node { label: 0, next: GcCell::new(None) });
//! let tail = Gc::new(Node { label: 1, next: GcCell::new(None) });
//! head.next.set(&head, Some(tail)); // write barrier: head is remembered
//! let outcome = collect_now();
//! assert_eq!(outcome.reclaimed.as_u64(), 0); // everything reachable
//! assert_eq!(head.next.borrow().as_ref().unwrap().label, 1);
//! ```
//!
//! # Limitations
//!
//! * Single-threaded: each thread owns an independent heap; [`Gc`] is
//!   neither `Send` nor `Sync`.
//! * `Drop` impls of collected objects must not dereference their `Gc`
//!   fields (the targets may already be gone) and must not allocate.
//! * A [`GcCell`] must be stored directly inside its owner's allocation
//!   (not behind a `Vec`/`Box` indirection) for the write-barrier owner
//!   check to pass.

#![warn(missing_docs)]
// This crate is the one place in the workspace where `unsafe` is earned:
// a garbage collector must manage object lifetimes itself.

mod api;
mod cell;
mod config;
mod gc;
mod state;
mod trace_trait;

pub use api::{collect_now, configure, heap_stats, history, pause_stats};
pub use cell::{GcCell, GcCellRefMut};
pub use config::HeapConfig;
pub use gc::Gc;
pub use state::{CollectionOutcome, HeapStats};
pub use trace_trait::{Trace, Tracer};
