//! The global event bus: a lock-free bounded MPSC ring fanned out to
//! registered sinks by a single drainer thread.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** [`emit`] is a single relaxed load
//!    and branch when no sink is installed — the event-constructing
//!    closure never runs, no allocation, no atomics beyond the flag.
//!    The drainer thread does not exist until the first sink is
//!    installed.
//! 2. **Never block the engine.** Producers push into a bounded
//!    lock-free ring (Vyukov MPMC algorithm, restricted here to a
//!    single consumer). When the ring is full the event is *dropped
//!    and counted*, never waited on: telemetry must not perturb the
//!    simulation it observes.
//! 3. **Ordered delivery.** Sequence numbers are assigned from one
//!    global counter at emit time; the drainer delivers batches in ring
//!    order, so a single-threaded emitter observes its own events in
//!    order and gaps in `seq` are an explicit drop signal.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::event::{Envelope, Event};
use crate::sink::Sink;

/// Ring capacity in envelopes. Power of two is not required; 64Ki
/// envelopes absorb multi-millisecond sink stalls at engine emit rates.
const RING_CAPACITY: u64 = 1 << 16;

/// Max envelopes handed to sinks per batch.
const DRAIN_BATCH: usize = 1024;

/// One ring slot: a stamp that sequences hand-off (see [`Ring`]) and
/// the possibly-uninitialized payload it guards.
struct Slot {
    stamp: AtomicU64,
    value: UnsafeCell<MaybeUninit<Envelope>>,
}

/// Bounded multi-producer single-consumer ring (Vyukov's bounded queue
/// with the consumer side simplified to one thread).
///
/// Protocol: slot `i` starts with `stamp == i`. A producer that wins
/// the CAS on `tail` from `t` to `t+1` owns slot `t % cap`, writes the
/// value, then publishes with `stamp = t + 1`. The consumer at `head ==
/// h` may read slot `h % cap` iff `stamp == h + 1`, and releases it for
/// the next lap with `stamp = h + cap`. `stamp < tail` at a push means
/// the consumer is a full lap behind: the ring is full.
///
/// # Safety
///
/// `value` is only written by the producer that won the CAS for that
/// exact stamp value, and only read by the single consumer after
/// observing (Acquire) the stamp the producer released. Stamps
/// therefore totally order every access to a slot's `value`, so no two
/// threads touch it concurrently. `pop` must only ever be called from
/// one thread at a time (here: the drainer, or `Drop`).
struct Ring {
    head: AtomicU64,
    tail: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: see the protocol description on `Ring` — the stamp protocol
// serializes all access to each `UnsafeCell`.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(cap: u64) -> Ring {
        assert!(cap >= 2);
        let slots = (0..cap)
            .map(|i| Slot {
                stamp: AtomicU64::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            slots,
        }
    }

    fn cap(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Attempts to enqueue; returns the value back when the ring is full.
    fn push(&self, value: Envelope) -> Result<(), Envelope> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(tail % self.cap()) as usize];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == tail {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS for `tail` grants
                        // exclusive write access to this slot until we
                        // publish the new stamp below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.stamp.store(tail + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if stamp < tail {
                // Consumer is a full lap behind: full.
                return Err(value);
            } else {
                // Another producer claimed this slot; chase the tail.
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues one envelope. Single-consumer: callers must ensure only
    /// one thread pops at a time.
    fn pop(&self) -> Option<Envelope> {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.cap()) as usize];
        let stamp = slot.stamp.load(Ordering::Acquire);
        if stamp == head + 1 {
            // SAFETY: the stamp says the producer published this slot
            // and no other consumer exists; we take the value out and
            // release the slot for the next lap.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            slot.stamp.store(head + self.cap(), Ordering::Release);
            self.head.store(head + 1, Ordering::Relaxed);
            Some(value)
        } else {
            None
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

/// Bus-wide counters, exposed by [`stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusStats {
    /// Envelopes assigned a sequence number (emitted while enabled).
    pub emitted: u64,
    /// Envelopes handed to sinks by the drainer.
    pub delivered: u64,
    /// Envelopes dropped because the ring was full.
    pub dropped: u64,
}

struct Bus {
    ring: Ring,
    seq: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    sinks: Mutex<Vec<(u64, Arc<dyn Sink>)>>,
    sink_count: AtomicUsize,
    next_sink_id: AtomicU64,
}

static BUS: OnceLock<&'static Bus> = OnceLock::new();

fn bus() -> &'static Bus {
    BUS.get_or_init(|| {
        let bus: &'static Bus = Box::leak(Box::new(Bus {
            ring: Ring::new(RING_CAPACITY),
            seq: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            sinks: Mutex::new(Vec::new()),
            sink_count: AtomicUsize::new(0),
            next_sink_id: AtomicU64::new(1),
        }));
        std::thread::Builder::new()
            .name("dtb-obs-drain".into())
            .spawn(move || drain_loop(bus))
            .expect("spawn obs drainer");
        bus
    })
}

fn drain_loop(bus: &'static Bus) {
    let mut batch: Vec<Envelope> = Vec::with_capacity(DRAIN_BATCH);
    loop {
        batch.clear();
        while batch.len() < DRAIN_BATCH {
            match bus.ring.pop() {
                Some(env) => batch.push(env),
                None => break,
            }
        }
        if batch.is_empty() {
            std::thread::park_timeout(Duration::from_millis(1));
            continue;
        }
        // Snapshot the sinks so `accept` runs outside the lock: a slow
        // sink must not block install/uninstall.
        let sinks: Vec<Arc<dyn Sink>> = {
            let guard = bus.sinks.lock().unwrap_or_else(|e| e.into_inner());
            guard.iter().map(|(_, s)| Arc::clone(s)).collect()
        };
        for sink in &sinks {
            sink.accept(&batch);
        }
        bus.delivered
            .fetch_add(batch.len() as u64, Ordering::Release);
    }
}

/// True when at least one sink is installed (same flag the `note_*`
/// facade in `dtb-core` reads).
#[inline]
pub fn enabled() -> bool {
    dtb_core::obs::enabled()
}

/// Emits an event. When no sink is installed this is one relaxed load
/// and a branch: `make` never runs. When enabled, the event is stamped
/// with the next global sequence number and the current thread's run
/// scope and pushed (never blocking; dropped and counted if the ring is
/// full).
#[inline]
pub fn emit<F: FnOnce() -> Event>(make: F) {
    if !dtb_core::obs::enabled() {
        return;
    }
    emit_always(make());
}

/// The enabled-path body of [`emit`], out of line so the disabled fast
/// path stays tiny.
#[cold]
fn emit_always(event: Event) {
    let bus = bus();
    let seq = bus.seq.fetch_add(1, Ordering::Relaxed) + 1;
    let env = Envelope {
        seq,
        scope: crate::scope::current(),
        event,
    };
    if bus.ring.push(env).is_err() {
        bus.dropped.fetch_add(1, Ordering::Release);
    }
}

/// Current bus counters.
pub fn stats() -> BusStats {
    let bus = bus();
    BusStats {
        emitted: bus.seq.load(Ordering::Acquire),
        delivered: bus.delivered.load(Ordering::Acquire),
        dropped: bus.dropped.load(Ordering::Acquire),
    }
}

/// Blocks until everything emitted before this call has been delivered
/// to sinks (or dropped), or until ~5 s have passed. Returns `true` if
/// fully drained.
pub fn flush() -> bool {
    let bus = bus();
    let target = bus.seq.load(Ordering::Acquire);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let done = bus.delivered.load(Ordering::Acquire) + bus.dropped.load(Ordering::Acquire);
        if done >= target {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Keeps a sink installed; uninstalls (after a flush) on drop.
#[must_use = "dropping the guard uninstalls the sink"]
pub struct SinkGuard {
    id: u64,
}

/// Installs a sink and enables instrumentation everywhere. The sink
/// stays installed until the returned guard is dropped; dropping the
/// last guard disables instrumentation again.
pub fn install(sink: Arc<dyn Sink>) -> SinkGuard {
    let bus = bus();
    let id = bus.next_sink_id.fetch_add(1, Ordering::Relaxed);
    bus.sinks
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((id, sink));
    if bus.sink_count.fetch_add(1, Ordering::SeqCst) == 0 {
        dtb_core::obs::set_enabled(true);
    }
    SinkGuard { id }
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        let bus = bus();
        if bus.sink_count.fetch_sub(1, Ordering::SeqCst) == 1 {
            dtb_core::obs::set_enabled(false);
        }
        // Deliver everything emitted while we were installed. Events
        // racing with the disable flip above may still land in the
        // ring; they go to whatever sinks remain (best effort).
        flush();
        bus.sinks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|(id, _)| *id != self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CaptureSink;
    use std::sync::MutexGuard;

    /// The bus is process-global; tests that install sinks serialize
    /// through this.
    pub(crate) fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn ev(n: u64) -> Event {
        Event::EvalStarted { cells: n }
    }

    #[test]
    fn ring_preserves_fifo_under_concurrent_producers() {
        let ring = Arc::new(Ring::new(64));
        let producers = 4;
        let per = 5_000u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let mut env = Envelope {
                            seq: p * per + i,
                            scope: p,
                            event: ev(i),
                        };
                        loop {
                            match ring.push(env) {
                                Ok(()) => break,
                                Err(back) => {
                                    env = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let mut got = 0u64;
        let mut last_per_scope = vec![None::<u64>; producers as usize];
        while got < producers * per {
            if let Some(env) = ring.pop() {
                // Per-producer order must be preserved.
                let slot = &mut last_per_scope[env.scope as usize];
                if let Some(prev) = *slot {
                    assert!(env.seq > prev, "producer {} reordered", env.scope);
                }
                *slot = Some(env.seq);
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        assert!(ring.pop().is_none());
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn full_ring_rejects_instead_of_blocking() {
        let ring = Ring::new(4);
        for i in 0..4 {
            ring.push(Envelope {
                seq: i,
                scope: 0,
                event: ev(i),
            })
            .unwrap();
        }
        let back = ring
            .push(Envelope {
                seq: 99,
                scope: 0,
                event: ev(99),
            })
            .unwrap_err();
        assert_eq!(back.seq, 99);
        assert_eq!(ring.pop().unwrap().seq, 0);
        // One slot freed: push succeeds again.
        ring.push(back).unwrap();
    }

    #[test]
    fn install_enables_emit_delivers_and_uninstall_disables() {
        let _serial = test_lock();
        assert!(!enabled());
        let mut ran = false;
        emit(|| {
            ran = true;
            ev(0)
        });
        assert!(!ran, "disabled emit must not build the event");

        let sink = Arc::new(CaptureSink::default());
        let before = stats().emitted;
        {
            let _guard = install(Arc::clone(&sink) as Arc<dyn Sink>);
            assert!(enabled());
            for i in 0..100 {
                emit(|| ev(i));
            }
            assert!(flush());
        }
        assert!(!enabled());
        let got = sink.take();
        assert_eq!(got.len(), 100);
        // Sequence numbers are contiguous for a single-threaded emitter.
        for (i, env) in got.iter().enumerate() {
            assert_eq!(env.seq, before + 1 + i as u64);
            assert_eq!(env.event, ev(i as u64));
        }
    }

    #[test]
    fn two_sinks_both_receive() {
        let _serial = test_lock();
        let a = Arc::new(CaptureSink::default());
        let b = Arc::new(CaptureSink::default());
        let _ga = install(Arc::clone(&a) as Arc<dyn Sink>);
        let _gb = install(Arc::clone(&b) as Arc<dyn Sink>);
        emit(|| ev(7));
        assert!(flush());
        assert_eq!(a.take().len(), 1);
        assert_eq!(b.take().len(), 1);
    }
}
