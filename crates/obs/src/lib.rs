//! `dtb-obs` — the unified observability layer.
//!
//! One structured telemetry bus spans every layer of the system: the
//! simulation engine emits per-scavenge spans, the executor emits cell
//! lifecycle events, the trace tools report synthesis progress, and the
//! distributed coordinator publishes sweep/lease lifecycle — all as one
//! typed [`Event`] enum flowing through one global bounded MPSC ring to
//! pluggable [`Sink`]s.
//!
//! # Usage
//!
//! Instrumented code calls [`emit`] with a closure; the closure only
//! runs when a sink is installed:
//!
//! ```
//! use dtb_obs::{emit, install, flush, Event, CaptureSink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(CaptureSink::default());
//! let guard = install(sink.clone());
//! emit(|| Event::EvalStarted { cells: 54 });
//! flush();
//! assert_eq!(sink.take().len(), 1);
//! drop(guard); // uninstalls and disables instrumentation
//! ```
//!
//! # Zero cost when disabled
//!
//! With no sink installed, [`emit`] is a single relaxed atomic load and
//! a branch — no allocation, no event construction, no drainer thread.
//! The engine's zero-allocation regression test and the `bench_dtb`
//! throughput floors both cover the disabled path.
//!
//! # Ordering
//!
//! Every envelope carries a bus-global monotonic `seq` (gaps = drops)
//! and a `scope` tying engine events to the run that emitted them (see
//! [`scope`]). Delivery to sinks is in ring order.

// The lock-free ring in `bus` is the one place this workspace uses
// unsafe code; it is documented at each site and every unsafe operation
// must be inside an explicitly-scoped unsafe block.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod bus;
pub mod encode;
pub mod event;
pub mod scope;
pub mod sink;

pub use bus::{emit, enabled, flush, install, stats, BusStats, SinkGuard};
pub use encode::{decode_binary, encode_binary, encode_json, DecodeError};
pub use event::{CellOutcome, Envelope, Event};
pub use scope::{add_run_probes, next_run_id, run_probes, RunScope};
pub use sink::{CaptureSink, FileSink, FnSink, Sink};
