//! Sinks: where delivered event batches go.
//!
//! The drainer thread calls [`Sink::accept`] with batches in bus
//! order. Sinks run off the hot path but should still be quick — a
//! stalled sink grows the ring until events start dropping (counted,
//! never blocking the emitters).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::encode::{encode_binary, encode_json};
use crate::event::Envelope;

/// A consumer of delivered event batches.
pub trait Sink: Send + Sync + 'static {
    /// Receives one batch in bus order.
    fn accept(&self, batch: &[Envelope]);
}

/// Buffers every envelope in memory; used by tests and by callers that
/// post-process a run's events (e.g. the worker's relay).
#[derive(Default)]
pub struct CaptureSink {
    buf: Mutex<Vec<Envelope>>,
}

impl CaptureSink {
    /// Drains and returns everything captured so far.
    pub fn take(&self) -> Vec<Envelope> {
        std::mem::take(&mut self.buf.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of envelopes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been captured (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for CaptureSink {
    fn accept(&self, batch: &[Envelope]) {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(batch);
    }
}

/// Calls a closure per envelope. The closure must be quick; it runs on
/// the drainer thread.
pub struct FnSink<F>(pub F);

impl<F: Fn(&Envelope) + Send + Sync + 'static> Sink for FnSink<F> {
    fn accept(&self, batch: &[Envelope]) {
        for env in batch {
            (self.0)(env);
        }
    }
}

/// On-disk capture format for [`FileSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileFormat {
    /// One JSON object per line.
    JsonLines,
    /// Concatenated binary frames (see `encode`).
    Binary,
}

/// Writes every envelope to a file: JSON lines by default, the compact
/// binary framing when the path ends in `.bin`.
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
    format: FileFormat,
}

impl FileSink {
    /// Creates (truncating) the capture file. A `.bin` extension
    /// selects the binary framing; anything else writes JSON lines.
    pub fn create(path: &Path) -> io::Result<FileSink> {
        let format = match path.extension().and_then(|e| e.to_str()) {
            Some("bin") => FileFormat::Binary,
            _ => FileFormat::JsonLines,
        };
        let file = File::create(path)?;
        Ok(FileSink {
            writer: Mutex::new(BufWriter::new(file)),
            format,
        })
    }
}

impl Sink for FileSink {
    fn accept(&self, batch: &[Envelope]) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let result = (|| -> io::Result<()> {
            match self.format {
                FileFormat::JsonLines => {
                    for env in batch {
                        w.write_all(encode_json(env).as_bytes())?;
                        w.write_all(b"\n")?;
                    }
                }
                FileFormat::Binary => {
                    let mut buf = Vec::with_capacity(batch.len() * 64);
                    for env in batch {
                        encode_binary(env, &mut buf);
                    }
                    w.write_all(&buf)?;
                }
            }
            // Flush per batch so `--events PATH` captures survive an
            // abrupt exit; batches are large enough to amortize this.
            w.flush()
        })();
        if let Err(err) = result {
            eprintln!("dtb-obs: capture write failed: {err}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode_binary;
    use crate::event::Event;

    fn env(seq: u64) -> Envelope {
        Envelope {
            seq,
            scope: 0,
            event: Event::EvalStarted { cells: seq },
        }
    }

    #[test]
    fn capture_sink_accumulates_and_drains() {
        let sink = CaptureSink::default();
        sink.accept(&[env(1), env(2)]);
        sink.accept(&[env(3)]);
        assert_eq!(sink.len(), 3);
        let got = sink.take();
        assert_eq!(got.len(), 3);
        assert!(sink.is_empty());
    }

    #[test]
    fn file_sink_writes_json_lines() {
        let dir = std::env::temp_dir().join(format!("dtb-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = FileSink::create(&path).unwrap();
        sink.accept(&[env(1), env(2)]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":1,"));
        assert!(lines[1].contains("\"type\":\"eval_started\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_sink_writes_binary_frames_for_bin_extension() {
        let dir = std::env::temp_dir().join(format!("dtb-obs-test-bin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.bin");
        let sink = FileSink::create(&path).unwrap();
        sink.accept(&[env(1), env(2)]);
        let bytes = std::fs::read(&path).unwrap();
        let (first, used) = decode_binary(&bytes).unwrap();
        assert_eq!(first, env(1));
        let (second, used2) = decode_binary(&bytes[used..]).unwrap();
        assert_eq!(second, env(2));
        assert_eq!(used + used2, bytes.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
