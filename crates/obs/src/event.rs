//! The typed event taxonomy.
//!
//! One flat enum covers every layer: engine scavenge spans, executor
//! cell lifecycle, trace tooling progress, and the distributed
//! service's sweep/lease lifecycle. The variants are deliberately
//! plain-old-data — integers and short strings — so that encoding is
//! allocation-light and payload equality is meaningful across engine
//! configurations (the determinism suite compares `Event` values
//! directly).
//!
//! Two fields are worth calling out on [`Event::Scavenge`]:
//!
//! * `events` — the absolute event-stream position at the trigger, i.e.
//!   the block-segment boundary the drive loop cut at. Identical across
//!   the per-event, block, and parallel engines (they cut at the same
//!   triggers by construction).
//! * `inverse_queries` — how many times the policy invoked the
//!   estimator's inverse survival query while selecting this boundary.
//!   The *call* count is engine-invariant; the per-call probe count is
//!   not (Fenwick descent vs. candidate scan) and is therefore reported
//!   only as a run-level total on [`Event::RunFinished`].

/// How a simulation cell ended, from the executor's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOutcome {
    /// The cell produced a run.
    Completed,
    /// The cell failed permanently (or exhausted its retries).
    Failed,
}

impl CellOutcome {
    /// Stable lowercase label used by both encoders.
    pub fn label(self) -> &'static str {
        match self {
            CellOutcome::Completed => "completed",
            CellOutcome::Failed => "failed",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "completed" => Some(CellOutcome::Completed),
            "failed" => Some(CellOutcome::Failed),
            _ => None,
        }
    }
}

/// A structured telemetry event. See the module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    // ── engine ──────────────────────────────────────────────────────
    /// A simulation run began (`Sim::run` — serial, block, or parallel).
    RunStarted {
        /// Policy name (`TbPolicy::name`).
        policy: String,
        /// Trace/source name from the trace metadata.
        source: String,
        /// Drive threads requested (1 = serial).
        threads: u32,
        /// Block size in events (1 = per-event engine).
        block_events: u64,
    },
    /// One scavenge span: boundary placement and its outcome.
    Scavenge {
        /// 0-based scavenge index within the run.
        collection: u64,
        /// Allocation clock at the trigger (bytes allocated).
        at: u64,
        /// Selected threatening boundary (virtual time).
        boundary: u64,
        /// Bytes traced (threatened survivors).
        traced: u64,
        /// Bytes surviving the scavenge (post-scavenge occupancy).
        surviving: u64,
        /// Bytes reclaimed.
        reclaimed: u64,
        /// Garbage left uncollected behind the boundary (tenured).
        tenured: u64,
        /// Heap occupancy before the scavenge.
        mem_before: u64,
        /// Event-stream position at the trigger (block-segment boundary).
        events: u64,
        /// Estimator inverse-query calls made while placing the boundary.
        inverse_queries: u64,
    },
    /// A simulation run finished (successfully or not).
    RunFinished {
        /// Scavenges performed (0 when the run failed early).
        collections: u64,
        /// Whether the run succeeded.
        ok: bool,
        /// Total estimator probe count (candidate scans / Fenwick
        /// descents). Engine-strategy-dependent; diagnostic only.
        inverse_probes: u64,
    },

    // ── executor ────────────────────────────────────────────────────
    /// A matrix evaluation began.
    EvalStarted {
        /// Cells to run.
        cells: u64,
    },
    /// One attempt at a cell began.
    CellStarted {
        /// Column label (program / trace name).
        column: String,
        /// Row label (policy name).
        row: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A transient failure triggered a retry with backoff.
    CellRetried {
        /// Column label.
        column: String,
        /// Row label.
        row: String,
        /// Attempt that just failed (1-based).
        attempt: u32,
        /// Backoff delay before the next attempt, in nanoseconds.
        delay_ns: u64,
        /// Rendered failure cause.
        cause: String,
    },
    /// A cell reached a final state.
    CellFinished {
        /// Column label.
        column: String,
        /// Row label.
        row: String,
        /// Attempts consumed.
        attempts: u32,
        /// Wall-clock time in nanoseconds.
        elapsed_ns: u64,
        /// Cells finished so far (monotone progress counter).
        completed: u64,
        /// Total cells in the evaluation.
        total: u64,
        /// Final disposition.
        outcome: CellOutcome,
        /// Rendered failure cause (empty for completed cells).
        cause: String,
    },

    // ── trace tooling ───────────────────────────────────────────────
    /// `tracegen` (or another tool) finished synthesizing a trace.
    TraceSynthesized {
        /// Trace name.
        name: String,
        /// Events in the trace.
        events: u64,
        /// Total bytes allocated over the trace.
        allocated: u64,
    },

    // ── distributed service (coordinator side) ──────────────────────
    /// A sweep was accepted by the coordinator.
    SweepSubmitted {
        /// Sweep id.
        sweep: u64,
        /// Tenant name.
        tenant: String,
        /// Cells in the sweep.
        cells: u64,
    },
    /// A cell was leased to a worker.
    CellLeased {
        /// Sweep id.
        sweep: u64,
        /// Cell index within the sweep.
        cell: u64,
        /// Lease token.
        lease: u64,
        /// Worker name.
        worker: String,
        /// Tenant name.
        tenant: String,
        /// 1-based attempt number this lease represents.
        attempt: u32,
    },
    /// A cell completion was recorded (journal-finalized).
    CellRecorded {
        /// Sweep id.
        sweep: u64,
        /// Cell index.
        cell: u64,
        /// Lease token that completed it.
        lease: u64,
        /// Worker name.
        worker: String,
        /// Tenant name.
        tenant: String,
        /// Whether the cell produced a run (false = quarantined).
        ok: bool,
    },
    /// A transient failure was requeued for another lease.
    CellRequeued {
        /// Sweep id.
        sweep: u64,
        /// Cell index.
        cell: u64,
        /// Lease token that failed (0 when a lease expired).
        lease: u64,
        /// Worker name (empty when a lease expired).
        worker: String,
        /// Tenant name.
        tenant: String,
        /// Rendered failure cause.
        cause: String,
    },
    /// A sweep drained: every cell reached a final state.
    SweepDrained {
        /// Sweep id.
        sweep: u64,
        /// Tenant name.
        tenant: String,
        /// Cells that ended quarantined.
        failed: u64,
    },
    /// A coordinator rebuilt its state from durable storage (sweep log,
    /// finalization journals, results store) after a restart.
    CoordinatorRecovered {
        /// The incarnation number this coordinator now runs under.
        epoch: u64,
        /// Sweeps replayed from the sweep log.
        sweeps: u64,
        /// Cells already finalized by earlier incarnations.
        finalized: u64,
        /// Cells still open (re-leasable) after recovery.
        open: u64,
    },
    /// The chaos harness injected one scripted fault.
    ChaosInjected {
        /// Fault kind: `kill`, `restart`, `net`, `disk_journal`,
        /// `disk_results`, `clock_skew`.
        kind: String,
        /// What it hit (process name, store path, worker name).
        target: String,
        /// The plan's trigger point (finalized-cell count or event
        /// index, per the kind).
        at: u64,
    },
}

impl Event {
    /// Stable snake_case type tag used by both encoders.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "run_started",
            Event::Scavenge { .. } => "scavenge",
            Event::RunFinished { .. } => "run_finished",
            Event::EvalStarted { .. } => "eval_started",
            Event::CellStarted { .. } => "cell_started",
            Event::CellRetried { .. } => "cell_retried",
            Event::CellFinished { .. } => "cell_finished",
            Event::TraceSynthesized { .. } => "trace_synthesized",
            Event::SweepSubmitted { .. } => "sweep_submitted",
            Event::CellLeased { .. } => "cell_leased",
            Event::CellRecorded { .. } => "cell_recorded",
            Event::CellRequeued { .. } => "cell_requeued",
            Event::SweepDrained { .. } => "sweep_drained",
            Event::CoordinatorRecovered { .. } => "coordinator_recovered",
            Event::ChaosInjected { .. } => "chaos_injected",
        }
    }
}

/// A bus-stamped event: the event plus its global sequence number and
/// the run scope it was emitted under (0 outside any run).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Monotonic bus-global sequence number (1-based; gaps mean drops).
    pub seq: u64,
    /// Run scope: the engine run id this event belongs to, or 0.
    pub scope: u64,
    /// The event payload.
    pub event: Event,
}
