//! Serde-free wire encoders for [`Envelope`]: a single-line JSON object
//! (human-greppable, used for `--events PATH` capture and the `/events`
//! server-push wire) and a compact length-prefixed binary frame (used
//! for `.bin` capture files), plus a binary decoder so captures can be
//! replayed and round-tripped in tests.
//!
//! # Binary framing
//!
//! Each envelope is one frame:
//!
//! ```text
//! [u8 variant tag][u64 seq][u64 scope][fields in declaration order]
//! ```
//!
//! Integers are little-endian; `bool` is one byte; strings are
//! `u16` LE byte length + UTF-8 bytes. There is no frame-level length:
//! the tag determines the field schema, so frames are self-delimiting.

use crate::event::{CellOutcome, Envelope, Event};

/// Binary variant tags. Stable: append-only.
mod tag {
    pub const RUN_STARTED: u8 = 1;
    pub const SCAVENGE: u8 = 2;
    pub const RUN_FINISHED: u8 = 3;
    pub const EVAL_STARTED: u8 = 4;
    pub const CELL_STARTED: u8 = 5;
    pub const CELL_RETRIED: u8 = 6;
    pub const CELL_FINISHED: u8 = 7;
    pub const TRACE_SYNTHESIZED: u8 = 8;
    pub const SWEEP_SUBMITTED: u8 = 9;
    pub const CELL_LEASED: u8 = 10;
    pub const CELL_RECORDED: u8 = 11;
    pub const CELL_REQUEUED: u8 = 12;
    pub const SWEEP_DRAINED: u8 = 13;
    pub const COORDINATOR_RECOVERED: u8 = 14;
    pub const CHAOS_INJECTED: u8 = 15;
}

// ───────────────────────── JSON ─────────────────────────

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn field_u64(out: &mut String, name: &str, v: u64) {
    out.push(',');
    json_str(out, name);
    out.push(':');
    out.push_str(&v.to_string());
}

fn field_bool(out: &mut String, name: &str, v: bool) {
    out.push(',');
    json_str(out, name);
    out.push(':');
    out.push_str(if v { "true" } else { "false" });
}

fn field_str(out: &mut String, name: &str, v: &str) {
    out.push(',');
    json_str(out, name);
    out.push(':');
    json_str(out, v);
}

/// Encodes one envelope as a single-line JSON object (no trailing
/// newline). The first three keys are always `seq`, `scope`, `type`.
pub fn encode_json(env: &Envelope) -> String {
    let mut out = String::with_capacity(160);
    out.push_str("{\"seq\":");
    out.push_str(&env.seq.to_string());
    out.push_str(",\"scope\":");
    out.push_str(&env.scope.to_string());
    out.push_str(",\"type\":");
    json_str(&mut out, env.event.tag());
    match &env.event {
        Event::RunStarted {
            policy,
            source,
            threads,
            block_events,
        } => {
            field_str(&mut out, "policy", policy);
            field_str(&mut out, "source", source);
            field_u64(&mut out, "threads", u64::from(*threads));
            field_u64(&mut out, "block_events", *block_events);
        }
        Event::Scavenge {
            collection,
            at,
            boundary,
            traced,
            surviving,
            reclaimed,
            tenured,
            mem_before,
            events,
            inverse_queries,
        } => {
            field_u64(&mut out, "collection", *collection);
            field_u64(&mut out, "at", *at);
            field_u64(&mut out, "boundary", *boundary);
            field_u64(&mut out, "traced", *traced);
            field_u64(&mut out, "surviving", *surviving);
            field_u64(&mut out, "reclaimed", *reclaimed);
            field_u64(&mut out, "tenured", *tenured);
            field_u64(&mut out, "mem_before", *mem_before);
            field_u64(&mut out, "events", *events);
            field_u64(&mut out, "inverse_queries", *inverse_queries);
        }
        Event::RunFinished {
            collections,
            ok,
            inverse_probes,
        } => {
            field_u64(&mut out, "collections", *collections);
            field_bool(&mut out, "ok", *ok);
            field_u64(&mut out, "inverse_probes", *inverse_probes);
        }
        Event::EvalStarted { cells } => {
            field_u64(&mut out, "cells", *cells);
        }
        Event::CellStarted {
            column,
            row,
            attempt,
        } => {
            field_str(&mut out, "column", column);
            field_str(&mut out, "row", row);
            field_u64(&mut out, "attempt", u64::from(*attempt));
        }
        Event::CellRetried {
            column,
            row,
            attempt,
            delay_ns,
            cause,
        } => {
            field_str(&mut out, "column", column);
            field_str(&mut out, "row", row);
            field_u64(&mut out, "attempt", u64::from(*attempt));
            field_u64(&mut out, "delay_ns", *delay_ns);
            field_str(&mut out, "cause", cause);
        }
        Event::CellFinished {
            column,
            row,
            attempts,
            elapsed_ns,
            completed,
            total,
            outcome,
            cause,
        } => {
            field_str(&mut out, "column", column);
            field_str(&mut out, "row", row);
            field_u64(&mut out, "attempts", u64::from(*attempts));
            field_u64(&mut out, "elapsed_ns", *elapsed_ns);
            field_u64(&mut out, "completed", *completed);
            field_u64(&mut out, "total", *total);
            field_str(&mut out, "outcome", outcome.label());
            field_str(&mut out, "cause", cause);
        }
        Event::TraceSynthesized {
            name,
            events,
            allocated,
        } => {
            field_str(&mut out, "name", name);
            field_u64(&mut out, "events", *events);
            field_u64(&mut out, "allocated", *allocated);
        }
        Event::SweepSubmitted {
            sweep,
            tenant,
            cells,
        } => {
            field_u64(&mut out, "sweep", *sweep);
            field_str(&mut out, "tenant", tenant);
            field_u64(&mut out, "cells", *cells);
        }
        Event::CellLeased {
            sweep,
            cell,
            lease,
            worker,
            tenant,
            attempt,
        } => {
            field_u64(&mut out, "sweep", *sweep);
            field_u64(&mut out, "cell", *cell);
            field_u64(&mut out, "lease", *lease);
            field_str(&mut out, "worker", worker);
            field_str(&mut out, "tenant", tenant);
            field_u64(&mut out, "attempt", u64::from(*attempt));
        }
        Event::CellRecorded {
            sweep,
            cell,
            lease,
            worker,
            tenant,
            ok,
        } => {
            field_u64(&mut out, "sweep", *sweep);
            field_u64(&mut out, "cell", *cell);
            field_u64(&mut out, "lease", *lease);
            field_str(&mut out, "worker", worker);
            field_str(&mut out, "tenant", tenant);
            field_bool(&mut out, "ok", *ok);
        }
        Event::CellRequeued {
            sweep,
            cell,
            lease,
            worker,
            tenant,
            cause,
        } => {
            field_u64(&mut out, "sweep", *sweep);
            field_u64(&mut out, "cell", *cell);
            field_u64(&mut out, "lease", *lease);
            field_str(&mut out, "worker", worker);
            field_str(&mut out, "tenant", tenant);
            field_str(&mut out, "cause", cause);
        }
        Event::SweepDrained {
            sweep,
            tenant,
            failed,
        } => {
            field_u64(&mut out, "sweep", *sweep);
            field_str(&mut out, "tenant", tenant);
            field_u64(&mut out, "failed", *failed);
        }
        Event::CoordinatorRecovered {
            epoch,
            sweeps,
            finalized,
            open,
        } => {
            field_u64(&mut out, "epoch", *epoch);
            field_u64(&mut out, "sweeps", *sweeps);
            field_u64(&mut out, "finalized", *finalized);
            field_u64(&mut out, "open", *open);
        }
        Event::ChaosInjected { kind, target, at } => {
            field_str(&mut out, "kind", kind);
            field_str(&mut out, "target", target);
            field_u64(&mut out, "at", *at);
        }
    }
    out.push('}');
    out
}

// ───────────────────────── binary ─────────────────────────

/// A malformed binary frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended mid-frame.
    Truncated,
    /// Unknown variant tag.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// An enum label field held an unknown value.
    BadLabel,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::BadTag(t) => write!(f, "unknown event tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::BadLabel => write!(f, "unknown enum label"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).unwrap_or(u16::MAX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..usize::from(len)]);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn boolean(&mut self) -> Result<bool, DecodeError> {
        Ok(self.u8()? != 0)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().unwrap());
        let bytes = self.take(usize::from(len))?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

/// Appends one envelope as a binary frame to `out`.
pub fn encode_binary(env: &Envelope, out: &mut Vec<u8>) {
    let t = match &env.event {
        Event::RunStarted { .. } => tag::RUN_STARTED,
        Event::Scavenge { .. } => tag::SCAVENGE,
        Event::RunFinished { .. } => tag::RUN_FINISHED,
        Event::EvalStarted { .. } => tag::EVAL_STARTED,
        Event::CellStarted { .. } => tag::CELL_STARTED,
        Event::CellRetried { .. } => tag::CELL_RETRIED,
        Event::CellFinished { .. } => tag::CELL_FINISHED,
        Event::TraceSynthesized { .. } => tag::TRACE_SYNTHESIZED,
        Event::SweepSubmitted { .. } => tag::SWEEP_SUBMITTED,
        Event::CellLeased { .. } => tag::CELL_LEASED,
        Event::CellRecorded { .. } => tag::CELL_RECORDED,
        Event::CellRequeued { .. } => tag::CELL_REQUEUED,
        Event::SweepDrained { .. } => tag::SWEEP_DRAINED,
        Event::CoordinatorRecovered { .. } => tag::COORDINATOR_RECOVERED,
        Event::ChaosInjected { .. } => tag::CHAOS_INJECTED,
    };
    out.push(t);
    put_u64(out, env.seq);
    put_u64(out, env.scope);
    match &env.event {
        Event::RunStarted {
            policy,
            source,
            threads,
            block_events,
        } => {
            put_str(out, policy);
            put_str(out, source);
            put_u32(out, *threads);
            put_u64(out, *block_events);
        }
        Event::Scavenge {
            collection,
            at,
            boundary,
            traced,
            surviving,
            reclaimed,
            tenured,
            mem_before,
            events,
            inverse_queries,
        } => {
            for v in [
                collection,
                at,
                boundary,
                traced,
                surviving,
                reclaimed,
                tenured,
                mem_before,
                events,
                inverse_queries,
            ] {
                put_u64(out, *v);
            }
        }
        Event::RunFinished {
            collections,
            ok,
            inverse_probes,
        } => {
            put_u64(out, *collections);
            out.push(u8::from(*ok));
            put_u64(out, *inverse_probes);
        }
        Event::EvalStarted { cells } => put_u64(out, *cells),
        Event::CellStarted {
            column,
            row,
            attempt,
        } => {
            put_str(out, column);
            put_str(out, row);
            put_u32(out, *attempt);
        }
        Event::CellRetried {
            column,
            row,
            attempt,
            delay_ns,
            cause,
        } => {
            put_str(out, column);
            put_str(out, row);
            put_u32(out, *attempt);
            put_u64(out, *delay_ns);
            put_str(out, cause);
        }
        Event::CellFinished {
            column,
            row,
            attempts,
            elapsed_ns,
            completed,
            total,
            outcome,
            cause,
        } => {
            put_str(out, column);
            put_str(out, row);
            put_u32(out, *attempts);
            put_u64(out, *elapsed_ns);
            put_u64(out, *completed);
            put_u64(out, *total);
            put_str(out, outcome.label());
            put_str(out, cause);
        }
        Event::TraceSynthesized {
            name,
            events,
            allocated,
        } => {
            put_str(out, name);
            put_u64(out, *events);
            put_u64(out, *allocated);
        }
        Event::SweepSubmitted {
            sweep,
            tenant,
            cells,
        } => {
            put_u64(out, *sweep);
            put_str(out, tenant);
            put_u64(out, *cells);
        }
        Event::CellLeased {
            sweep,
            cell,
            lease,
            worker,
            tenant,
            attempt,
        } => {
            put_u64(out, *sweep);
            put_u64(out, *cell);
            put_u64(out, *lease);
            put_str(out, worker);
            put_str(out, tenant);
            put_u32(out, *attempt);
        }
        Event::CellRecorded {
            sweep,
            cell,
            lease,
            worker,
            tenant,
            ok,
        } => {
            put_u64(out, *sweep);
            put_u64(out, *cell);
            put_u64(out, *lease);
            put_str(out, worker);
            put_str(out, tenant);
            out.push(u8::from(*ok));
        }
        Event::CellRequeued {
            sweep,
            cell,
            lease,
            worker,
            tenant,
            cause,
        } => {
            put_u64(out, *sweep);
            put_u64(out, *cell);
            put_u64(out, *lease);
            put_str(out, worker);
            put_str(out, tenant);
            put_str(out, cause);
        }
        Event::SweepDrained {
            sweep,
            tenant,
            failed,
        } => {
            put_u64(out, *sweep);
            put_str(out, tenant);
            put_u64(out, *failed);
        }
        Event::CoordinatorRecovered {
            epoch,
            sweeps,
            finalized,
            open,
        } => {
            put_u64(out, *epoch);
            put_u64(out, *sweeps);
            put_u64(out, *finalized);
            put_u64(out, *open);
        }
        Event::ChaosInjected { kind, target, at } => {
            put_str(out, kind);
            put_str(out, target);
            put_u64(out, *at);
        }
    }
}

/// Decodes one binary frame from the front of `buf`, returning the
/// envelope and the number of bytes consumed.
pub fn decode_binary(buf: &[u8]) -> Result<(Envelope, usize), DecodeError> {
    let mut c = Cursor { buf, pos: 0 };
    let t = c.u8()?;
    let seq = c.u64()?;
    let scope = c.u64()?;
    let event = match t {
        tag::RUN_STARTED => Event::RunStarted {
            policy: c.string()?,
            source: c.string()?,
            threads: c.u32()?,
            block_events: c.u64()?,
        },
        tag::SCAVENGE => Event::Scavenge {
            collection: c.u64()?,
            at: c.u64()?,
            boundary: c.u64()?,
            traced: c.u64()?,
            surviving: c.u64()?,
            reclaimed: c.u64()?,
            tenured: c.u64()?,
            mem_before: c.u64()?,
            events: c.u64()?,
            inverse_queries: c.u64()?,
        },
        tag::RUN_FINISHED => Event::RunFinished {
            collections: c.u64()?,
            ok: c.boolean()?,
            inverse_probes: c.u64()?,
        },
        tag::EVAL_STARTED => Event::EvalStarted { cells: c.u64()? },
        tag::CELL_STARTED => Event::CellStarted {
            column: c.string()?,
            row: c.string()?,
            attempt: c.u32()?,
        },
        tag::CELL_RETRIED => Event::CellRetried {
            column: c.string()?,
            row: c.string()?,
            attempt: c.u32()?,
            delay_ns: c.u64()?,
            cause: c.string()?,
        },
        tag::CELL_FINISHED => Event::CellFinished {
            column: c.string()?,
            row: c.string()?,
            attempts: c.u32()?,
            elapsed_ns: c.u64()?,
            completed: c.u64()?,
            total: c.u64()?,
            outcome: {
                let label = c.string()?;
                CellOutcome::from_label(&label).ok_or(DecodeError::BadLabel)?
            },
            cause: c.string()?,
        },
        tag::TRACE_SYNTHESIZED => Event::TraceSynthesized {
            name: c.string()?,
            events: c.u64()?,
            allocated: c.u64()?,
        },
        tag::SWEEP_SUBMITTED => Event::SweepSubmitted {
            sweep: c.u64()?,
            tenant: c.string()?,
            cells: c.u64()?,
        },
        tag::CELL_LEASED => Event::CellLeased {
            sweep: c.u64()?,
            cell: c.u64()?,
            lease: c.u64()?,
            worker: c.string()?,
            tenant: c.string()?,
            attempt: c.u32()?,
        },
        tag::CELL_RECORDED => Event::CellRecorded {
            sweep: c.u64()?,
            cell: c.u64()?,
            lease: c.u64()?,
            worker: c.string()?,
            tenant: c.string()?,
            ok: c.boolean()?,
        },
        tag::CELL_REQUEUED => Event::CellRequeued {
            sweep: c.u64()?,
            cell: c.u64()?,
            lease: c.u64()?,
            worker: c.string()?,
            tenant: c.string()?,
            cause: c.string()?,
        },
        tag::SWEEP_DRAINED => Event::SweepDrained {
            sweep: c.u64()?,
            tenant: c.string()?,
            failed: c.u64()?,
        },
        tag::COORDINATOR_RECOVERED => Event::CoordinatorRecovered {
            epoch: c.u64()?,
            sweeps: c.u64()?,
            finalized: c.u64()?,
            open: c.u64()?,
        },
        tag::CHAOS_INJECTED => Event::ChaosInjected {
            kind: c.string()?,
            target: c.string()?,
            at: c.u64()?,
        },
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok((Envelope { seq, scope, event }, c.pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Envelope> {
        let events = vec![
            Event::RunStarted {
                policy: "DTBFM".into(),
                source: "cfrac".into(),
                threads: 4,
                block_events: 4096,
            },
            Event::Scavenge {
                collection: 3,
                at: 4_194_304,
                boundary: 3_100_000,
                traced: 120_000,
                surviving: 90_000,
                reclaimed: 30_000,
                tenured: 1_024,
                mem_before: 210_000,
                events: 88_123,
                inverse_queries: 2,
            },
            Event::RunFinished {
                collections: 12,
                ok: true,
                inverse_probes: 37,
            },
            Event::EvalStarted { cells: 54 },
            Event::CellStarted {
                column: "espresso".into(),
                row: "FIXED(1)".into(),
                attempt: 1,
            },
            Event::CellRetried {
                column: "gs".into(),
                row: "DTBMEM".into(),
                attempt: 2,
                delay_ns: 1_500_000,
                cause: "deadline: exceeded 1s at 42".into(),
            },
            Event::CellFinished {
                column: "cfrac".into(),
                row: "FULL".into(),
                attempts: 1,
                elapsed_ns: 9_999,
                completed: 7,
                total: 54,
                outcome: CellOutcome::Completed,
                cause: String::new(),
            },
            Event::CellFinished {
                column: "perl".into(),
                row: "DUAL".into(),
                attempts: 3,
                elapsed_ns: 123,
                completed: 8,
                total: 54,
                outcome: CellOutcome::Failed,
                cause: "weird \"quoted\"\ncause".into(),
            },
            Event::TraceSynthesized {
                name: "synth-server".into(),
                events: 1_000_000,
                allocated: 1 << 32,
            },
            Event::SweepSubmitted {
                sweep: 1,
                tenant: "repro".into(),
                cells: 54,
            },
            Event::CellLeased {
                sweep: 1,
                cell: 9,
                lease: 17,
                worker: "w-1".into(),
                tenant: "repro".into(),
                attempt: 1,
            },
            Event::CellRecorded {
                sweep: 1,
                cell: 9,
                lease: 17,
                worker: "w-1".into(),
                tenant: "repro".into(),
                ok: true,
            },
            Event::CellRequeued {
                sweep: 1,
                cell: 10,
                lease: 0,
                worker: String::new(),
                tenant: "repro".into(),
                cause: "lease expired".into(),
            },
            Event::SweepDrained {
                sweep: 1,
                tenant: "repro".into(),
                failed: 0,
            },
            Event::CoordinatorRecovered {
                epoch: 3,
                sweeps: 2,
                finalized: 11,
                open: 5,
            },
            Event::ChaosInjected {
                kind: "kill".into(),
                target: "dtb-coordinator".into(),
                at: 4,
            },
        ];
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| Envelope {
                seq: i as u64 + 1,
                scope: (i as u64) % 3,
                event,
            })
            .collect()
    }

    #[test]
    fn binary_round_trips_every_variant() {
        let mut buf = Vec::new();
        let envs = samples();
        for e in &envs {
            encode_binary(e, &mut buf);
        }
        let mut pos = 0;
        let mut decoded = Vec::new();
        while pos < buf.len() {
            let (env, used) = decode_binary(&buf[pos..]).expect("decode");
            decoded.push(env);
            pos += used;
        }
        assert_eq!(decoded, envs);
    }

    #[test]
    fn binary_truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        for e in &samples() {
            encode_binary(e, &mut buf);
        }
        for cut in 0..buf.len().min(64) {
            // Any prefix either decodes some whole frames or errors.
            let _ = decode_binary(&buf[..cut]);
        }
        assert_eq!(decode_binary(&[]), Err(DecodeError::Truncated));
        assert!(matches!(
            decode_binary(&[0xEE, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(DecodeError::BadTag(0xEE))
        ));
    }

    #[test]
    fn json_shape_is_stable() {
        let env = Envelope {
            seq: 42,
            scope: 7,
            event: Event::Scavenge {
                collection: 0,
                at: 1_048_576,
                boundary: 0,
                traced: 10,
                surviving: 10,
                reclaimed: 5,
                tenured: 0,
                mem_before: 15,
                events: 99,
                inverse_queries: 1,
            },
        };
        assert_eq!(
            encode_json(&env),
            "{\"seq\":42,\"scope\":7,\"type\":\"scavenge\",\"collection\":0,\
             \"at\":1048576,\"boundary\":0,\"traced\":10,\"surviving\":10,\
             \"reclaimed\":5,\"tenured\":0,\"mem_before\":15,\"events\":99,\
             \"inverse_queries\":1}"
        );
    }

    #[test]
    fn json_escapes_strings() {
        let env = Envelope {
            seq: 1,
            scope: 0,
            event: Event::CellRetried {
                column: "a\"b".into(),
                row: "c\\d".into(),
                attempt: 1,
                delay_ns: 0,
                cause: "line1\nline2\ttab\u{1}ctl".into(),
            },
        };
        let json = encode_json(&env);
        assert!(json.contains("\"a\\\"b\""));
        assert!(json.contains("\"c\\\\d\""));
        assert!(json.contains("line1\\nline2\\ttab\\u0001ctl"));
    }
}
