//! Run scoping: tags every envelope emitted on a thread with the
//! engine run it belongs to.
//!
//! `Sim::run` allocates a run id, enters a [`RunScope`] for the
//! duration of the drive loop, and every `emit` on that thread stamps
//! the id into `Envelope::scope`. The drive loop always executes on the
//! calling thread — the parallel engine only fans out epoch
//! *preparation* — so thread-locality is exactly run-locality. Threads
//! outside any run emit scope 0.
//!
//! The run-level probe accumulator lives here too: per-scavenge probe
//! counts are engine-strategy-dependent (Fenwick descent vs candidate
//! scan), so they are kept out of the `Scavenge` payload and summed
//! here for the `RunFinished` diagnostic total.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_RUN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SCOPE: Cell<u64> = const { Cell::new(0) };
    static RUN_PROBES: Cell<u64> = const { Cell::new(0) };
}

/// Allocates a fresh process-unique run id (never 0).
pub fn next_run_id() -> u64 {
    NEXT_RUN.fetch_add(1, Ordering::Relaxed)
}

/// The current thread's run scope (0 outside any run).
#[inline]
pub fn current() -> u64 {
    SCOPE.with(Cell::get)
}

/// RAII guard that sets the thread's run scope, restoring the previous
/// scope (and probe accumulator) on drop — nested runs behave sanely.
pub struct RunScope {
    prev_scope: u64,
    prev_probes: u64,
}

impl RunScope {
    /// Enters run `id` on this thread and zeroes the probe accumulator.
    pub fn enter(id: u64) -> RunScope {
        let prev_scope = SCOPE.with(|c| c.replace(id));
        let prev_probes = RUN_PROBES.with(|c| c.replace(0));
        RunScope {
            prev_scope,
            prev_probes,
        }
    }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        SCOPE.with(|c| c.set(self.prev_scope));
        RUN_PROBES.with(|c| c.set(self.prev_probes));
    }
}

/// Adds estimator probes to the current run's diagnostic total.
#[inline]
pub fn add_run_probes(n: u64) {
    RUN_PROBES.with(|c| c.set(c.get() + n));
}

/// Reads the current run's accumulated probe total.
pub fn run_probes() -> u64 {
    RUN_PROBES.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current(), 0);
        let outer = next_run_id();
        let inner = next_run_id();
        assert_ne!(outer, inner);
        {
            let _a = RunScope::enter(outer);
            assert_eq!(current(), outer);
            add_run_probes(5);
            {
                let _b = RunScope::enter(inner);
                assert_eq!(current(), inner);
                assert_eq!(run_probes(), 0);
                add_run_probes(2);
                assert_eq!(run_probes(), 2);
            }
            assert_eq!(current(), outer);
            assert_eq!(run_probes(), 5);
        }
        assert_eq!(current(), 0);
    }
}
