//! Property tests: no bytes arriving over the wire may panic the
//! service. Three layers hold the door:
//!
//! * HTTP framing — arbitrary bytes, corrupted well-formed requests, and
//!   truncated streams parse to a request or a typed [`WireError`];
//! * message decoding — arbitrary JSON-ish bodies decode to a message or
//!   a `String` error;
//! * routing — a live coordinator answers *every* (method, path, body)
//!   with a response, never a panic, and garbage never finalizes a cell.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::SimConfig;
use dtb_svc::http::{read_request, read_response, write_request, Request};
use dtb_svc::proto::{
    decode, CompleteRequest, LeaseReply, LeaseRequest, SubmitRequest, SweepReply, SweepSpec,
};
use dtb_svc::{Coordinator, CoordinatorConfig};
use dtb_trace::programs::Program;
use proptest::prelude::*;

/// A syntactically valid request to corrupt.
fn request_strategy() -> impl Strategy<Value = Request> {
    const METHODS: [&str; 3] = ["GET", "POST", "PUT"];
    const PATHS: [&str; 5] = ["/lease", "/complete", "/status", "/sweep?id=1", "/x"];
    (
        0usize..METHODS.len(),
        0usize..PATHS.len(),
        prop::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(method, path, body)| Request {
            method: METHODS[method].to_string(),
            path: PATHS[path].to_string(),
            body,
        })
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_the_request_parser(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        // Ok or typed error — reaching either without panicking is the
        // property.
        let _ = read_request(&mut bytes.as_slice());
        let _ = read_response(&mut bytes.as_slice());
    }

    #[test]
    fn corrupted_requests_never_panic_the_parser(
        req in request_strategy(),
        flips in prop::collection::vec((0usize..=1_000_000, 0u8..=255), 1..8),
        cut in 0usize..=1_000_000,
    ) {
        let mut bytes = Vec::new();
        write_request(&mut bytes, &req).expect("in-memory write");
        for (idx, mask) in flips {
            if !bytes.is_empty() {
                let i = idx % bytes.len();
                bytes[i] ^= mask | 1; // |1 so the flip is never a no-op
            }
        }
        bytes.truncate(cut % (bytes.len() + 1));
        let _ = read_request(&mut bytes.as_slice());
    }

    #[test]
    fn well_formed_requests_round_trip(req in request_strategy()) {
        let mut bytes = Vec::new();
        write_request(&mut bytes, &req).expect("in-memory write");
        let parsed = read_request(&mut bytes.as_slice()).expect("round trip");
        prop_assert_eq!(parsed.method, req.method);
        prop_assert_eq!(parsed.path, req.path);
        prop_assert_eq!(parsed.body, req.body);
    }

    #[test]
    fn garbage_bodies_never_panic_message_decoding(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode::<LeaseRequest>(&bytes);
        let _ = decode::<CompleteRequest>(&bytes);
        let _ = decode::<SubmitRequest>(&bytes);
        let _ = decode::<LeaseReply>(&bytes);
        let _ = decode::<SweepReply>(&bytes);
    }
}

/// The full routing surface under garbage: every request gets an answer,
/// and no amount of malformed traffic finalizes a cell.
#[test]
fn garbage_traffic_never_panics_or_advances_the_coordinator() {
    let coordinator = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).expect("bind");
    coordinator
        .submit(SweepSpec {
            tenant: "prop".to_string(),
            programs: vec![Program::Cfrac],
            policies: vec![PolicyKind::Full],
            baselines: false,
            policy: PolicyConfig::paper(),
            sim: SimConfig::paper(),
        })
        .expect("submit");

    let bodies: [&[u8]; 8] = [
        b"",
        b"{",
        b"null",
        b"[1,2,3]",
        b"\xff\xfe\x00garbage",
        b"{\"sweep\":\"not a number\"}",
        b"{\"proto\":999,\"worker\":\"w\"}",
        b"{\"sweep\":1,\"cell\":0,\"lease\":12345,\"worker\":\"w\",\"run\":null,\
          \"failure\":null,\"transient\":false,\"elapsed_ns\":0}",
    ];
    let paths = [
        "/submit",
        "/lease",
        "/complete",
        "/status",
        "/sweep",
        "/sweep?id=",
        "/nope",
    ];
    for method in ["GET", "POST", "DELETE"] {
        for path in paths {
            for body in bodies {
                let resp = coordinator.handle(&Request {
                    method: method.to_string(),
                    path: path.to_string(),
                    body: body.to_vec(),
                });
                assert!(
                    matches!(resp.status, 200 | 400 | 404),
                    "{method} {path}: unexpected status {}",
                    resp.status
                );
            }
        }
    }

    // None of that traffic may have finalized (or leased-and-lost) the
    // cell: a stale lease token in a syntactically valid completion is
    // refused, garbage is 400'd.
    let status = coordinator.handle(&Request {
        method: "GET".to_string(),
        path: "/status".to_string(),
        body: Vec::new(),
    });
    assert_eq!(status.status, 200);
    let decoded: dtb_svc::proto::StatusReply = decode(&status.body).expect("status decodes");
    assert_eq!(decoded.sweeps.len(), 1);
    assert_eq!(decoded.sweeps[0].finalized, 0);
    coordinator.shutdown();
}
