//! The observability layer end to end: a coordinator with a results
//! store, an in-process worker relaying per-scavenge telemetry, and
//! `/events` followers tailing the run live.
//!
//! The centerpiece drives a full sweep while two followers watch: one
//! stays to the end and must see the complete, monotone lifecycle —
//! `sweep_submitted`, a `cell_recorded` per cell, `sweep_drained` —
//! plus the worker's relayed scavenge spans; the other disconnects
//! mid-stream, and the run must not care. Afterwards `GET /results`
//! must reassemble (via [`matrix_from_cells`]) into exactly the matrix
//! the sweep reply carries, which the sibling suite already proves
//! equal to a single-process run.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::SimConfig;
use dtb_svc::proto::SweepSpec;
use dtb_svc::worker::{run_worker, WorkerConfig, WorkerExit};
use dtb_svc::{
    follow_events, matrix_from_cells, matrix_from_sweep, Client, Coordinator, CoordinatorConfig,
};
use dtb_trace::programs::Program;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dtb-obs-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Events of one `type` among captured follower lines (crude but
/// sufficient: the coordinator emits compact single-line JSON).
fn lines_of<'a>(lines: &'a [String], tag: &str) -> Vec<&'a String> {
    let needle = format!("\"type\":\"{tag}\"");
    lines.iter().filter(|l| l.contains(&needle)).collect()
}

#[test]
fn followers_see_the_lifecycle_and_results_match_the_sweep() {
    let dir = temp_dir("stream");
    let results_path = dir.join("results.dtbres");
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            results_path: Some(results_path.clone()),
            ..CoordinatorConfig::default()
        },
    )
    .expect("bind coordinator");
    let addr = coordinator.addr().to_string();

    // Followers attach before anything happens; `from=1` means a late
    // TCP handshake still replays the full (bounded) log.
    let stop = Arc::new(AtomicBool::new(false));
    let seen = Arc::new(Mutex::new(Vec::<String>::new()));
    let follower = {
        let (addr, stop, seen) = (addr.clone(), stop.clone(), seen.clone());
        std::thread::spawn(move || {
            follow_events(&addr, 1, &stop, |line| {
                seen.lock().unwrap().push(line.to_string());
                true
            })
        })
    };
    // The doomed follower hangs up after two events, mid-sweep. The
    // coordinator must shrug: a dead follower is a failed write on the
    // streaming thread, never a perturbation of the run.
    let doomed = {
        let (addr, stop) = (addr.clone(), Arc::new(AtomicBool::new(false)));
        let stop2 = stop.clone();
        std::thread::spawn(move || {
            let mut n = 0u32;
            follow_events(&addr, 1, &stop2, move |_| {
                n += 1;
                n < 2
            })
        })
    };

    let policies = [PolicyKind::Full, PolicyKind::DtbFm];
    let spec = SweepSpec {
        tenant: "obs-tenant".to_string(),
        programs: vec![Program::Cfrac],
        policies: policies.to_vec(),
        baselines: true,
        policy: PolicyConfig::paper(),
        sim: SimConfig::paper(),
    };
    let sweep = coordinator.submit(spec.clone()).expect("submit sweep");
    let total = (policies.len() + 2) as u64;

    // One in-process worker, relaying per-scavenge telemetry.
    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr);
            let mut config = WorkerConfig::new("obs-worker".to_string());
            config.exit_when_done = true;
            config.relay_events = true;
            run_worker(&mut client, &config)
        })
    };

    let mut client = Client::connect(&addr);
    let reply = client
        .wait_sweep(
            sweep,
            Duration::from_millis(50),
            Some(Duration::from_secs(120)),
        )
        .expect("sweep completes");
    assert!(reply.done);
    assert_eq!(reply.total, total);
    assert!(matches!(
        worker.join().expect("worker thread"),
        WorkerExit::Drained
    ));

    // The doomed follower is long gone and the sweep still finished.
    assert!(doomed.join().expect("doomed follower thread").is_ok());

    // `/results` serves every finalized cell, and reassembles into the
    // exact matrix the sweep reply carries — the store and the in-memory
    // sweep are two views of the same finalize events.
    let results = client.results(sweep).expect("results reply");
    assert_eq!(results.sweep, sweep);
    assert_eq!(results.stored, total);
    assert_eq!(results.total, total);
    assert!(results.complete);
    let from_results = matrix_from_cells(&spec, &results.cells);
    let from_sweep = matrix_from_sweep(&reply);
    assert!(from_results.is_complete());
    let mut compared = 0;
    for (col, cell) in from_sweep.cells() {
        let twin = from_results
            .column_by_name(col.name())
            .and_then(|c| c.cells.iter().find(|c| c.row == cell.row))
            .unwrap_or_else(|| panic!("results matrix misses {}/{}", col.name(), cell.row));
        assert_eq!(
            cell.report(),
            twin.report(),
            "{}/{} diverges",
            col.name(),
            cell.row
        );
        assert_eq!(cell.attempts, twin.attempts);
        compared += 1;
    }
    assert_eq!(compared as u64, total);
    assert!(results_path.exists(), "results store landed on disk");

    // Shutting down closes the event stream; the surviving follower
    // drains cleanly and we can audit what it saw.
    coordinator.shutdown();
    follower
        .join()
        .expect("follower thread")
        .expect("follow_events");
    let lines = seen.lock().unwrap().clone();

    assert_eq!(lines_of(&lines, "sweep_submitted").len(), 1);
    assert_eq!(
        lines_of(&lines, "cell_recorded").len() as u64,
        total,
        "one cell_recorded per cell"
    );
    assert_eq!(lines_of(&lines, "sweep_drained").len(), 1);
    assert!(
        !lines_of(&lines, "worker_event").is_empty(),
        "the worker's relayed scavenge spans reach followers"
    );
    // Monotone progress: every line carries the log's epoch-tagged
    // cursor with a strictly increasing seq, and the drain closes the
    // lifecycle after the last recording.
    let cursors: Vec<dtb_svc::EventCursor> = lines
        .iter()
        .map(|l| dtb_svc::line_cursor(l).expect("framed with an (epoch, seq) cursor"))
        .collect();
    assert!(
        cursors.iter().all(|c| c.epoch == 1),
        "a single incarnation streams a single epoch"
    );
    assert!(
        cursors.windows(2).all(|w| w[0].seq < w[1].seq),
        "seqs strictly increase"
    );
    let last_recorded = lines
        .iter()
        .rposition(|l| l.contains("\"type\":\"cell_recorded\""))
        .unwrap();
    let drained = lines
        .iter()
        .position(|l| l.contains("\"type\":\"sweep_drained\""))
        .unwrap();
    assert!(drained > last_recorded, "drain follows the final recording");

    let _ = std::fs::remove_dir_all(&dir);
}
