//! The seeded chaos drill, in-process: crash the coordinator mid-matrix
//! with disk faults armed and workers on a misbehaving wire, restart it
//! over the same directories, and prove the three recovery guarantees
//! end to end:
//!
//! 1. the recovered matrix is bit-identical to a clean single-process
//!    run (cell for cell, by report);
//! 2. every cell is finalized exactly once in the journal, crash or no
//!    crash — stale pre-crash leases are fenced by epoch;
//! 3. a follower that rode out the restart saw a gapless, duplicate-free
//!    event stream (per-epoch contiguous sequence numbers).
//!
//! Everything is scripted by a [`ChaosPlan`] derived from one seed, so a
//! failure reproduces from the seed alone. The `dtb-chaos` binary runs
//! the same drill against real processes with real SIGKILL.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::SimConfig;
use dtb_sim::exec::{Evaluation, RetryPolicy};
use dtb_sim::journal::read_journal;
use dtb_svc::client::TcpTransport;
use dtb_svc::proto::{CompleteRequest, CompleteStatus, SweepSpec};
use dtb_svc::worker::{run_worker, WorkerConfig, WorkerExit};
use dtb_svc::{
    follow_events_resilient, journal_exactly_once, line_cursor, matrix_from_sweep,
    stream_continuity, ChaosPlan, Client, Coordinator, CoordinatorConfig, DiskFaults, EventCursor,
    FaultFuse, NetFault,
};
use dtb_trace::programs::Program;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dtb-chaos-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

const POLICIES: [PolicyKind; 2] = [PolicyKind::Full, PolicyKind::DtbFm];

fn spec() -> SweepSpec {
    SweepSpec {
        tenant: "chaos".to_string(),
        programs: vec![Program::Cfrac],
        policies: POLICIES.to_vec(),
        baselines: true,
        policy: PolicyConfig::paper(),
        sim: SimConfig::paper(),
    }
}

fn local_matrix() -> dtb_sim::exec::Matrix {
    Evaluation::new()
        .programs([Program::Cfrac])
        .policies(POLICIES)
        .baselines(true)
        .run()
}

/// Served == local, cell for cell, by report (bit-identical results).
fn assert_matrices_match(served: &dtb_sim::exec::Matrix, local: &dtb_sim::exec::Matrix) {
    assert!(served.is_complete(), "served matrix has failed cells");
    let mut compared = 0;
    for (col, cell) in local.cells() {
        let twin_col = served
            .column_by_name(col.name())
            .unwrap_or_else(|| panic!("served matrix misses column {}", col.name()));
        let twin = twin_col
            .cells
            .iter()
            .find(|c| c.row == cell.row)
            .unwrap_or_else(|| panic!("served matrix misses cell {}/{}", col.name(), cell.row));
        assert_eq!(
            cell.report(),
            twin.report(),
            "{}/{}: recovered cell diverges from the clean run",
            col.name(),
            cell.row
        );
        compared += 1;
    }
    assert!(compared > 0, "nothing compared");
}

/// The drill. One seed scripts the whole failure schedule: where the
/// crash lands, the per-worker wire faults, and how many journal /
/// results appends are sabotaged on the restarted incarnation.
#[test]
fn seeded_crash_drill_recovers_bit_identical() {
    let seed = 0xC0FFEE;
    let total = (POLICIES.len() + 2) as u64;
    let plan = ChaosPlan::from_seed(seed, total, 2);
    let kill_at = plan.coordinator_kills[0].min(total - 1).max(1);

    let journal_dir = temp_dir("drill");
    let results_path = journal_dir.join("results.bin");
    let lease = Duration::from_secs(3);

    // ── incarnation A: a journal-fault charge armed from the start ──
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            lease_timeout: lease,
            retry: RetryPolicy::retries(2),
            journal_dir: Some(journal_dir.clone()),
            results_path: Some(results_path.clone()),
            disk_faults: DiskFaults {
                journal: FaultFuse::charges(plan.journal_faults),
                results: FaultFuse::none(),
            },
            ..CoordinatorConfig::default()
        },
    )
    .expect("bind coordinator A");
    let addr = coordinator.addr().to_string();
    let sweep = coordinator.submit(spec()).expect("submit sweep");

    // ── follower: rides the restart on its epoch-tagged cursor ──
    let stop = Arc::new(AtomicBool::new(false));
    let cursors: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let follower = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let cursors = Arc::clone(&cursors);
        std::thread::spawn(move || {
            follow_events_resilient(
                &addr,
                EventCursor::start(),
                Duration::from_secs(60),
                &stop,
                |line| {
                    let at = line_cursor(line).expect("every event line is cursor-tagged");
                    cursors.lock().unwrap().push((at.epoch, at.seq));
                    true
                },
            )
        })
    };

    // ── workers: reconnect windows on, one over the plan's faulty wire ──
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let wire = plan.net[i];
            std::thread::spawn(move || {
                let transport = NetFault::new(TcpTransport::new(addr), wire);
                let mut client =
                    Client::with_transport(Box::new(transport), RetryPolicy::retries(8));
                let mut config = WorkerConfig::new(format!("chaos-w{i}"));
                config.exit_when_done = true;
                config.cell_delay = Duration::from_millis(150);
                config.reconnect = Some(Duration::from_secs(60));
                run_worker(&mut client, &config)
            })
        })
        .collect();

    // Steal one lease and sit on it: this token must be fenced out by
    // the restarted epoch, never recorded.
    let mut prober = Client::connect(&addr);
    let stale = loop {
        let reply = prober.lease("stale-prober").expect("prober lease");
        if let Some(task) = reply.task {
            break task;
        }
        std::thread::sleep(Duration::from_millis(20));
    };

    // Let the matrix make the plan's scripted progress, then crash.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "matrix never got under way");
        let status = prober.status().expect("status");
        let progress = status.sweeps.iter().find(|s| s.sweep == sweep).unwrap();
        if progress.finalized >= kill_at {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    coordinator.shutdown();
    // Give detached in-flight request handlers (which share the old
    // state) a moment to finish before a new incarnation opens the same
    // files — the process-level driver gets this for free from SIGKILL.
    std::thread::sleep(Duration::from_millis(300));

    // ── incarnation B: same dirs, same port, skewed lease clock, a
    // torn-results charge armed ──
    let (num, den) = plan.lease_skew;
    let skewed = Duration::from_millis((lease.as_millis() as u64).saturating_mul(num) / den);
    let restarted = {
        let bind_deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Coordinator::bind(
                addr.as_str(),
                CoordinatorConfig {
                    lease_timeout: skewed.max(Duration::from_millis(500)),
                    retry: RetryPolicy::retries(2),
                    journal_dir: Some(journal_dir.clone()),
                    results_path: Some(results_path.clone()),
                    disk_faults: DiskFaults {
                        journal: FaultFuse::none(),
                        results: FaultFuse::charges(plan.results_faults),
                    },
                    ..CoordinatorConfig::default()
                },
            ) {
                Ok(c) => break c,
                Err(e) => {
                    assert!(
                        Instant::now() < bind_deadline,
                        "cannot rebind {addr} after shutdown: {e}"
                    );
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    };
    assert_eq!(restarted.epoch(), 2, "second incarnation bumps the epoch");
    let report = restarted.recovery_report();
    assert_eq!(report.sweeps, 1, "the sweep log re-admitted the sweep");
    assert!(
        report.finalized >= kill_at,
        "journal replay kept pre-crash finalizations ({} < {kill_at})",
        report.finalized
    );

    // The pre-crash lease is from a dead epoch: fenced, never recorded.
    let fenced = prober
        .complete(&CompleteRequest {
            sweep: stale.sweep,
            cell: stale.cell,
            lease: stale.lease,
            worker: "stale-prober".to_string(),
            run: None,
            failure: Some("stale result from before the crash".to_string()),
            transient: false,
            elapsed_ns: 1,
        })
        .expect("fenced completion still answers");
    assert_eq!(
        fenced.status,
        CompleteStatus::LeaseLost,
        "pre-crash lease must be fenced by the new epoch"
    );

    // ── convergence ──
    let reply = prober
        .wait_sweep(
            sweep,
            Duration::from_millis(100),
            Some(Duration::from_secs(180)),
        )
        .expect("sweep converges after the crash");
    assert!(reply.done);
    assert_eq!(reply.total, total);
    for worker in workers {
        match worker.join().expect("worker thread") {
            WorkerExit::Drained => {}
            WorkerExit::Lost(e) => panic!("worker did not ride out the restart: {e}"),
        }
    }

    // Re-completing an already-finalized cell answers Duplicate — the
    // first durable record won, across the crash.
    let dup = prober
        .complete(&CompleteRequest {
            sweep: stale.sweep,
            cell: stale.cell,
            lease: stale.lease,
            worker: "stale-prober".to_string(),
            run: None,
            failure: Some("echo".to_string()),
            transient: false,
            elapsed_ns: 1,
        })
        .expect("duplicate completion answers");
    assert_eq!(dup.status, CompleteStatus::Duplicate);

    stop.store(true, Ordering::Relaxed);
    let matrix = matrix_from_sweep(&reply);
    restarted.shutdown();
    follower
        .join()
        .expect("follower thread")
        .expect("follower survived the drill");

    // 1. Bit-identical to the clean run.
    assert_matrices_match(&matrix, &local_matrix());

    // 2. Exactly one finalization per cell, across both incarnations.
    let journal =
        read_journal(journal_dir.join(format!("sweep-{sweep}"))).expect("journal reads back");
    assert_eq!(journal.cells.len() as u64, total, "one line per cell");
    let keys: Vec<(String, String)> = journal
        .cells
        .iter()
        .map(|c| (c.column.clone(), c.row.clone()))
        .collect();
    journal_exactly_once(&keys).expect("no cell finalized twice");

    // 3. The resumed stream has no gaps or duplicates, and really did
    // span both epochs.
    let seen = cursors.lock().unwrap();
    stream_continuity(&seen).expect("gapless, duplicate-free stream");
    let epochs: std::collections::HashSet<u64> = seen.iter().map(|&(e, _)| e).collect();
    assert!(
        epochs.contains(&1) && epochs.contains(&2),
        "follower should have streamed from both incarnations: {epochs:?}"
    );

    let _ = std::fs::remove_dir_all(&journal_dir);
}

/// Same plan, same seed, twice: the schedule is bit-for-bit identical —
/// the replayability contract the drill's failure reports rely on.
#[test]
fn chaos_plans_replay_from_the_seed() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let a = ChaosPlan::from_seed(seed, 8, 3);
        let b = ChaosPlan::from_seed(seed, 8, 3);
        assert_eq!(a.coordinator_kills, b.coordinator_kills);
        assert_eq!(a.worker_kill, b.worker_kill);
        assert_eq!(a.journal_faults, b.journal_faults);
        assert_eq!(a.results_faults, b.results_faults);
        assert_eq!(a.lease_skew, b.lease_skew);
        for (x, y) in a.net.iter().zip(&b.net) {
            assert_eq!(x.drop_every, y.drop_every);
            assert_eq!(x.garble_every, y.garble_every);
            assert_eq!(x.replay_every, y.replay_every);
        }
    }
}
