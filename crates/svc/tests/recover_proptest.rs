//! Property tests for crash recovery: no state the disk can be left in
//! — truncated tails from a crash mid-append, or arbitrary bit flips
//! from a dying device — may panic `Coordinator` recovery, and no such
//! state may ever lead to a cell being finalized twice.
//!
//! The contract under test, split by corruption class:
//!
//! * **tail truncation** (what a real crash leaves): recovery must
//!   *succeed* — every store drops its torn tail and the matrix can be
//!   driven to completion with exactly one journal line per cell;
//! * **interior corruption** (bit rot): recovery must return `Ok` or a
//!   typed refusal, never panic — and when it accepts, the journal
//!   still ends exactly-once.
//!
//! The fixture triple (sweep log + finalization journal + results
//! store) is built once by driving a real coordinator, then mutated
//! per case; completions use synthetic failures so no case pays for a
//! simulation.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::SimConfig;
use dtb_sim::exec::RetryPolicy;
use dtb_sim::journal::read_journal;
use dtb_svc::http::Request;
use dtb_svc::proto::{
    decode, encode, CompleteRequest, LeaseReply, LeaseRequest, SweepSpec, PROTO_VERSION,
};
use dtb_svc::{journal_exactly_once, Coordinator, CoordinatorConfig};
use dtb_trace::programs::Program;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

const TOTAL_CELLS: u64 = 3; // Cfrac × (Full + NoGc + Live)
const PREFINALIZED: u64 = 2;

fn spec() -> SweepSpec {
    SweepSpec {
        tenant: "prop".to_string(),
        programs: vec![Program::Cfrac],
        policies: vec![PolicyKind::Full],
        baselines: true,
        policy: PolicyConfig::paper(),
        sim: SimConfig::paper(),
    }
}

fn config_for(dir: &Path) -> CoordinatorConfig {
    CoordinatorConfig {
        retry: RetryPolicy::retries(0),
        journal_dir: Some(dir.to_path_buf()),
        results_path: Some(dir.join("results.bin")),
        ..CoordinatorConfig::default()
    }
}

/// Leases one cell in-process; `None` when the coordinator has nothing
/// open.
fn lease_one(coordinator: &Coordinator, worker: &str) -> Option<dtb_svc::proto::CellTask> {
    let resp = coordinator.handle(&Request {
        method: "POST".to_string(),
        path: "/lease".to_string(),
        body: encode(&LeaseRequest {
            proto: PROTO_VERSION,
            worker: worker.to_string(),
        }),
    });
    assert_eq!(resp.status, 200, "lease refused");
    let reply: LeaseReply = decode(&resp.body).expect("lease reply decodes");
    reply.task
}

/// Finalizes one leased cell with a synthetic permanent failure (no
/// simulation runs in these tests; a quarantined cell is just as
/// journaled as a completed one).
fn complete_synthetic(coordinator: &Coordinator, task: &dtb_svc::proto::CellTask) -> u16 {
    let resp = coordinator.handle(&Request {
        method: "POST".to_string(),
        path: "/complete".to_string(),
        body: encode(&CompleteRequest {
            sweep: task.sweep,
            cell: task.cell,
            lease: task.lease,
            worker: "prop-worker".to_string(),
            run: None,
            failure: Some("synthetic: proptest fixture".to_string()),
            transient: false,
            elapsed_ns: 7,
        }),
    });
    resp.status
}

/// One file of the fixture triple: path relative to the journal dir,
/// plus its bytes.
type Snapshot = Vec<(PathBuf, Vec<u8>)>;

fn snapshot_tree(root: &Path, prefix: &Path, out: &mut Snapshot) {
    for entry in std::fs::read_dir(root).expect("read fixture dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let rel = prefix.join(entry.file_name());
        if path.is_dir() {
            snapshot_tree(&path, &rel, out);
        } else {
            out.push((rel, std::fs::read(&path).expect("read fixture file")));
        }
    }
}

/// Builds the valid triple once: a coordinator over real dirs, one
/// submitted sweep, two of three cells finalized, then a clean
/// shutdown. Returns every file as (relative path, bytes).
fn fixture() -> &'static Snapshot {
    static FIXTURE: OnceLock<Snapshot> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("dtb-recover-fixture-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        let coordinator =
            Coordinator::bind("127.0.0.1:0", config_for(&dir)).expect("bind fixture coordinator");
        coordinator.submit(spec()).expect("submit fixture sweep");
        for _ in 0..PREFINALIZED {
            let task = lease_one(&coordinator, "fixture").expect("open cell to lease");
            assert_eq!(complete_synthetic(&coordinator, &task), 200);
        }
        coordinator.shutdown();
        let mut files = Snapshot::new();
        snapshot_tree(&dir, Path::new(""), &mut files);
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            files.iter().any(|(p, _)| p.ends_with("sweeps.log")),
            "fixture misses the sweep log"
        );
        assert!(files.len() >= 3, "fixture should be a triple: {files:?}");
        files
    })
}

/// Materializes a (possibly mutated) snapshot into a fresh directory.
fn materialize(files: &Snapshot, tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dtb-recover-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for (rel, bytes) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("file has a parent"))
            .expect("create parent dir");
        std::fs::write(&path, bytes).expect("write fixture file");
    }
    dir
}

/// Drives every still-open cell to finalization, then asserts the
/// journal holds each cell at most once — the exactly-once property
/// that must survive whatever the corruption did.
fn drive_and_check_exactly_once(coordinator: &Coordinator, dir: &Path) {
    for _ in 0..(TOTAL_CELLS * 2) {
        match lease_one(coordinator, "prop-driver") {
            Some(task) => assert_eq!(complete_synthetic(coordinator, &task), 200),
            None => break,
        }
    }
    for entry in std::fs::read_dir(dir).expect("read recovered dir") {
        let path = entry.expect("entry").path();
        if !path.is_dir() {
            continue;
        }
        let Ok(journal) = read_journal(&path) else {
            continue;
        };
        let keys: Vec<(String, String)> = journal
            .cells
            .iter()
            .map(|c| (c.column.clone(), c.row.clone()))
            .collect();
        journal_exactly_once(&keys).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            keys.len() as u64 <= TOTAL_CELLS,
            "{}: more journal lines than cells",
            path.display()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A crash tears tails, it does not rewrite interiors: recovery over
    /// any tail-truncated file of the triple must *succeed*, keep every
    /// surviving finalization final, and drive to an exactly-once
    /// journal.
    #[test]
    fn tail_truncation_always_recovers(
        which in 0usize..16,
        cut in 1usize..64,
    ) {
        let mut files = fixture().clone();
        let target = which % files.len();
        let (_, bytes) = &mut files[target];
        let keep = bytes.len().saturating_sub(cut);
        bytes.truncate(keep);
        let dir = materialize(&files, "trunc");

        let coordinator = Coordinator::bind("127.0.0.1:0", config_for(&dir))
            .expect("tail truncation must never refuse recovery");
        let report = coordinator.recovery_report();
        prop_assert!(report.sweeps <= 1);
        prop_assert!(report.finalized <= PREFINALIZED,
            "recovery invented finalizations: {}", report.finalized);
        drive_and_check_exactly_once(&coordinator, &dir);
        coordinator.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Arbitrary interior corruption: flipped bits anywhere in any file
    /// of the triple. Recovery may accept (dropping what checksums
    /// reject) or refuse with a typed error — but it may never panic,
    /// and acceptance still ends exactly-once.
    #[test]
    fn bit_flips_never_panic_and_never_double_finalize(
        flips in prop::collection::vec((0usize..1_000_000, 0usize..1_000_000, 1u8..=255), 1..5),
    ) {
        let mut files = fixture().clone();
        for (file_idx, byte_idx, mask) in flips {
            let target = file_idx % files.len();
            let (_, bytes) = &mut files[target];
            if !bytes.is_empty() {
                let i = byte_idx % bytes.len();
                bytes[i] ^= mask;
            }
        }
        let dir = materialize(&files, "flip");

        // Ok or typed refusal — reaching either without panicking is
        // the property.
        match Coordinator::bind("127.0.0.1:0", config_for(&dir)) {
            Ok(coordinator) => {
                let report = coordinator.recovery_report();
                prop_assert!(report.finalized <= PREFINALIZED);
                drive_and_check_exactly_once(&coordinator, &dir);
                coordinator.shutdown();
            }
            Err(e) => {
                // The refusal must be the typed recovery error, not an
                // incidental bind failure.
                prop_assert!(e.to_string().contains("recovery refused"), "{e}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
