//! The distributed service end to end: real coordinator, real worker
//! *processes*, real crashes.
//!
//! The centerpiece SIGKILLs a worker mid-matrix — no destructors, no
//! goodbye to the coordinator, a lease left dangling — and proves the
//! served sweep still converges to the matrix a single-process
//! [`Evaluation::run`] produces, cell for cell, with exactly one journal
//! line per cell. The chaos test runs a worker over a deterministically
//! misbehaving wire (drops, garbled responses, stale replays) and asserts
//! the same convergence.

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::SimConfig;
use dtb_sim::exec::{Evaluation, RetryPolicy};
use dtb_sim::journal::read_journal;
use dtb_svc::client::TcpTransport;
use dtb_svc::proto::SweepSpec;
use dtb_svc::worker::{run_worker, WorkerConfig, WorkerExit};
use dtb_svc::{matrix_from_sweep, Client, Coordinator, CoordinatorConfig, FaultPlan, NetFault};
use dtb_trace::programs::Program;
use std::collections::HashSet;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("dtb-svc-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sweep both tests serve: one workload, every collector, baselines.
fn spec(tenant: &str, policies: &[PolicyKind]) -> SweepSpec {
    SweepSpec {
        tenant: tenant.to_string(),
        programs: vec![Program::Cfrac],
        policies: policies.to_vec(),
        baselines: true,
        policy: PolicyConfig::paper(),
        sim: SimConfig::paper(),
    }
}

/// The single-process ground truth for [`spec`].
fn local_matrix(policies: &[PolicyKind]) -> dtb_sim::exec::Matrix {
    Evaluation::new()
        .programs([Program::Cfrac])
        .policies(policies.iter().copied())
        .baselines(true)
        .run()
}

/// Asserts the served matrix equals the local one, cell for cell, by
/// report (attempts may legitimately differ — that is the point of the
/// crash tests).
fn assert_matrices_match(served: &dtb_sim::exec::Matrix, local: &dtb_sim::exec::Matrix) {
    assert!(served.is_complete(), "served matrix has failed cells");
    let mut compared = 0;
    for (col, cell) in local.cells() {
        let twin_col = served
            .column_by_name(col.name())
            .unwrap_or_else(|| panic!("served matrix misses column {}", col.name()));
        let twin = twin_col
            .cells
            .iter()
            .find(|c| c.row == cell.row)
            .unwrap_or_else(|| panic!("served matrix misses cell {}/{}", col.name(), cell.row));
        assert_eq!(
            cell.report(),
            twin.report(),
            "{}/{}: served cell diverges from the single-process run",
            col.name(),
            cell.row
        );
        compared += 1;
    }
    assert!(compared > 0, "nothing compared");
}

fn spawn_worker(addr: &str, name: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_dtb-worker"))
        .args([
            "--addr",
            addr,
            "--name",
            name,
            "--exit-when-done",
            "--cell-delay-ms",
            "250",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dtb-worker")
}

/// The coordinator crashes mid-matrix; real worker *processes* started
/// with `--reconnect-ms` ride out the downtime, a new incarnation
/// recovers from the same journal directory on the same port, and the
/// sweep converges to the clean matrix with exactly one journal line
/// per cell — no worker restarts, no resubmission.
#[test]
fn workers_ride_out_a_coordinator_restart() {
    let journal_dir = temp_dir("restart");
    let results_path = journal_dir.join("results.bin");
    let config = || CoordinatorConfig {
        lease_timeout: Duration::from_secs(4),
        retry: RetryPolicy::retries(2),
        journal_dir: Some(journal_dir.clone()),
        results_path: Some(results_path.clone()),
        ..CoordinatorConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", config()).expect("bind coordinator");
    let addr = coordinator.addr().to_string();

    let policies = &PolicyKind::ALL[..];
    let sweep = coordinator
        .submit(spec("restart-tenant", policies))
        .expect("submit sweep");
    let total = (policies.len() + 2) as u64;

    let spawn_patient = |name: &str| {
        Command::new(env!("CARGO_BIN_EXE_dtb-worker"))
            .args([
                "--addr",
                &addr,
                "--name",
                name,
                "--exit-when-done",
                "--cell-delay-ms",
                "250",
                "--reconnect-ms",
                "60000",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn dtb-worker")
    };
    let mut workers = vec![spawn_patient("patient-1"), spawn_patient("patient-2")];

    // Let the matrix get demonstrably under way, then take the
    // coordinator down mid-flight — leases outstanding, workers mid-cell.
    let mut client = Client::connect(&addr);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "matrix never got under way");
        let status = client.status().expect("status");
        let progress = status.sweeps.iter().find(|s| s.sweep == sweep).unwrap();
        if progress.finalized >= 2 && progress.finalized < total {
            break;
        }
        assert!(progress.finalized < total, "matrix finished too fast");
        std::thread::sleep(Duration::from_millis(5));
    }
    coordinator.shutdown();
    // Let detached in-flight handlers (sharing the old state) finish
    // before the new incarnation opens the same journal files.
    std::thread::sleep(Duration::from_millis(300));

    let restarted = {
        let bind_deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Coordinator::bind(addr.as_str(), config()) {
                Ok(c) => break c,
                Err(e) => {
                    assert!(Instant::now() < bind_deadline, "cannot rebind {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    };
    assert_eq!(restarted.epoch(), 2);
    assert_eq!(restarted.recovery_report().sweeps, 1);

    // The same worker processes finish the matrix against the new
    // incarnation.
    let reply = client
        .wait_sweep(
            sweep,
            Duration::from_millis(100),
            Some(Duration::from_secs(120)),
        )
        .expect("sweep converges across the restart");
    assert!(reply.done);
    assert_eq!(reply.total, total);
    assert_matrices_match(&matrix_from_sweep(&reply), &local_matrix(policies));

    for worker in &mut workers {
        let exit = worker.wait().expect("reap worker");
        assert!(exit.success(), "worker exited {exit:?}");
    }

    // Exactly-once across incarnations: one journal line per cell.
    let journal =
        read_journal(journal_dir.join(format!("sweep-{sweep}"))).expect("journal reads back");
    assert_eq!(journal.cells.len() as u64, total, "one line per cell");
    let distinct: HashSet<(String, String)> = journal
        .cells
        .iter()
        .map(|c| (c.column.clone(), c.row.clone()))
        .collect();
    assert_eq!(distinct.len() as u64, total, "no cell journaled twice");

    restarted.shutdown();
    let _ = std::fs::remove_dir_all(&journal_dir);
}

/// Two real worker processes; one is SIGKILLed mid-matrix. The dangling
/// lease expires, the survivor picks the cell up, and the served matrix
/// equals the single-process run — with exactly one journal line per
/// cell despite the crash.
#[test]
fn sigkilled_worker_converges_to_the_clean_matrix() {
    let journal_dir = temp_dir("sigkill");
    let config = CoordinatorConfig {
        lease_timeout: Duration::from_secs(4),
        retry: RetryPolicy::retries(2),
        journal_dir: Some(journal_dir.clone()),
        ..CoordinatorConfig::default()
    };
    let coordinator = Coordinator::bind("127.0.0.1:0", config).expect("bind coordinator");
    let addr = coordinator.addr().to_string();

    let policies = &PolicyKind::ALL[..];
    let sweep = coordinator
        .submit(spec("crash-tenant", policies))
        .expect("submit sweep");
    let total = (policies.len() + 2) as u64;

    let mut victim = spawn_worker(&addr, "victim");
    let mut survivor = spawn_worker(&addr, "survivor");

    // Wait until the matrix is demonstrably in flight, then kill the
    // victim without ceremony — mid-cell, lease outstanding.
    let mut client = Client::connect(&addr);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "matrix never got under way");
        let status = client.status().expect("status");
        let progress = status.sweeps.iter().find(|s| s.sweep == sweep).unwrap();
        if progress.finalized >= 2 {
            assert!(
                progress.finalized < total,
                "matrix finished before the victim could be killed; slow the pacing down"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    victim.kill().expect("SIGKILL the victim");
    victim.wait().expect("reap the victim");

    // The survivor finishes everything, including the victim's expired
    // lease. Deadline is generous: lease expiry alone costs 4 s.
    let reply = client
        .wait_sweep(
            sweep,
            Duration::from_millis(100),
            Some(Duration::from_secs(120)),
        )
        .expect("sweep converges after the crash");
    assert!(reply.done);
    assert_eq!(reply.total, total);

    assert_matrices_match(&matrix_from_sweep(&reply), &local_matrix(policies));

    // Exactly-once, structurally: one journal line per cell, every cell.
    let journal =
        read_journal(journal_dir.join(format!("sweep-{sweep}"))).expect("served journal reads");
    assert_eq!(journal.cells.len() as u64, total, "one line per cell");
    let distinct: HashSet<(String, String)> = journal
        .cells
        .iter()
        .map(|c| (c.column.clone(), c.row.clone()))
        .collect();
    assert_eq!(distinct.len() as u64, total, "no cell journaled twice");
    assert!(journal.cells.iter().all(|c| c.is_completed()));

    let survivor_exit = survivor.wait().expect("reap the survivor");
    assert!(survivor_exit.success(), "survivor exited {survivor_exit:?}");
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&journal_dir);
}

/// A worker over a misbehaving wire — dropped connections, garbled
/// responses, stale request replays — still converges to the clean
/// matrix: wire failures retry, duplicates answer `Duplicate`, stale
/// lease echoes answer `LeaseLost`, and nothing double-records.
#[test]
fn faulty_wire_converges_to_the_clean_matrix() {
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            lease_timeout: Duration::from_secs(10),
            ..CoordinatorConfig::default()
        },
    )
    .expect("bind coordinator");
    let addr = coordinator.addr().to_string();

    let policies = [PolicyKind::Full, PolicyKind::DtbFm];
    let sweep = coordinator
        .submit(spec("chaos-tenant", &policies))
        .expect("submit sweep");

    let plan = FaultPlan {
        drop_every: Some(3),
        garble_every: Some(5),
        replay_every: Some(7),
        delay_every: None,
    };
    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || {
        let transport = NetFault::new(TcpTransport::new(worker_addr), plan);
        let mut client = Client::with_transport(Box::new(transport), RetryPolicy::retries(8));
        let config = WorkerConfig {
            exit_when_done: true,
            ..WorkerConfig::new("chaos-worker")
        };
        run_worker(&mut client, &config)
    });

    let mut client = Client::connect(&addr);
    let reply = client
        .wait_sweep(
            sweep,
            Duration::from_millis(50),
            Some(Duration::from_secs(120)),
        )
        .expect("sweep converges over a faulty wire");
    assert!(reply.done);
    assert_matrices_match(&matrix_from_sweep(&reply), &local_matrix(&policies));

    match worker.join().expect("worker thread") {
        WorkerExit::Drained => {}
        WorkerExit::Lost(e) => panic!("worker lost the coordinator: {e}"),
    }
    coordinator.shutdown();
}

/// Per-tenant quotas bind: a tenant capped well below the workload's
/// event count sees every cell quarantined with a budget failure, while
/// an uncapped tenant's identical sweep completes — and the quarantine
/// cause is carried through to the served matrix's failure rendering.
#[test]
fn tenant_quota_quarantines_only_the_capped_tenant() {
    let mut config = CoordinatorConfig {
        lease_timeout: Duration::from_secs(30),
        retry: RetryPolicy::retries(0),
        ..CoordinatorConfig::default()
    };
    config
        .quotas
        .insert("capped".to_string(), dtb_sim::SimBudget::events(10));
    let coordinator = Coordinator::bind("127.0.0.1:0", config).expect("bind coordinator");
    let addr = coordinator.addr().to_string();

    let policies = [PolicyKind::Full];
    let capped = coordinator
        .submit(spec("capped", &policies))
        .expect("submit capped");
    let free = coordinator
        .submit(spec("free", &policies))
        .expect("submit free");

    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(worker_addr);
        let config = WorkerConfig {
            exit_when_done: true,
            ..WorkerConfig::new("quota-worker")
        };
        run_worker(&mut client, &config)
    });

    let mut client = Client::connect(&addr);
    let capped_reply = client
        .wait_sweep(
            capped,
            Duration::from_millis(50),
            Some(Duration::from_secs(120)),
        )
        .expect("capped sweep finishes");
    let free_reply = client
        .wait_sweep(
            free,
            Duration::from_millis(50),
            Some(Duration::from_secs(120)),
        )
        .expect("free sweep finishes");
    assert!(matches!(
        worker.join().expect("worker"),
        WorkerExit::Drained
    ));
    coordinator.shutdown();

    // The free tenant's matrix is clean.
    assert_matrices_match(&matrix_from_sweep(&free_reply), &local_matrix(&policies));

    // The capped tenant's policy cell hit its budget; baselines are
    // event-free and survive.
    let policy_cell = capped_reply
        .cells
        .iter()
        .find(|c| c.row == dtb_core::policy::Row::Policy(PolicyKind::Full).to_string())
        .expect("policy cell served");
    let cause = policy_cell
        .failure
        .as_deref()
        .expect("policy cell quarantined");
    assert!(
        cause.contains("budget"),
        "unexpected quarantine cause: {cause}"
    );

    // And the cause survives reassembly into the executor's shape.
    let matrix = matrix_from_sweep(&capped_reply);
    assert!(!matrix.is_complete());
}
