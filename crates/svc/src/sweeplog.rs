//! The durable sweep-intake log: what makes the coordinator restartable.
//!
//! The per-sweep journal (PR 5) records every cell *completion*, but the
//! journal header does not carry the full [`SweepSpec`] — tenant,
//! program set, policy list — so a journal alone cannot rebuild the
//! coordinator's `SweepState` after a crash. This log closes the gap: a
//! single append-only, checksummed file (`sweeps.log`) in the journal
//! directory that records every accepted sweep **before** the submit is
//! acked, plus one epoch line per coordinator incarnation.
//!
//! # On-disk format
//!
//! One record per line, reusing the journal's checksum discipline
//! (FNV-1a over the JSON payload, hex in a fixed-width prefix):
//!
//! ```text
//! {fnv:016x} V {"version":1}
//! {fnv:016x} E {"epoch":1}
//! {fnv:016x} S {"id":1,"spec":{...}}
//! {fnv:016x} E {"epoch":2}        ← appended by the next open (restart)
//! ```
//!
//! * `V` — format header, always first.
//! * `E` — an epoch bump. Every [`SweepLog::open`] appends one, so the
//!   count of `E` lines is the incarnation number; leases are fenced by
//!   it ([lease-epoch fencing](crate::coordinator)).
//! * `S` — one accepted sweep: its id and full spec.
//!
//! Replay mirrors `read_journal` exactly: a torn **final** line (crash
//! mid-append) is dropped and truncated away; damage anywhere before the
//! final line is interior corruption and a typed [`CkpError`] — the
//! coordinator refuses to start on a log it cannot trust, but never on
//! one that merely lost its tail.

use crate::proto::SweepSpec;
use dtb_sim::CkpError;
use dtb_trace::ckp::checksum;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the sweep log inside the coordinator's journal dir.
pub const SWEEP_LOG_FILE: &str = "sweeps.log";

/// Format version written to (and required of) the `V` header line.
pub const SWEEP_LOG_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct VersionLine {
    version: u32,
}

#[derive(Serialize, Deserialize)]
struct EpochLine {
    epoch: u64,
}

#[derive(Serialize, Deserialize)]
struct SweepLine {
    id: u64,
    spec: SweepSpec,
}

/// What replaying an existing log recovered.
#[derive(Debug)]
pub struct SweepLogReplay {
    /// The epoch this incarnation runs under (highest recorded + 1; the
    /// bump line is already on disk when [`SweepLog::open`] returns).
    pub epoch: u64,
    /// Every accepted sweep, in intake order (first record wins on a
    /// duplicated id — appends are acked once, so duplicates can only
    /// come from corruption that happened to re-checksum).
    pub sweeps: Vec<(u64, SweepSpec)>,
}

/// The open, appendable sweep log.
#[derive(Debug)]
pub struct SweepLog {
    file: File,
    path: PathBuf,
}

impl SweepLog {
    /// Opens (or creates) `dir/sweeps.log`: replays existing records,
    /// truncates a torn tail, then appends — and fsyncs — an epoch-bump
    /// line. Every open is a new epoch.
    ///
    /// # Errors
    ///
    /// [`CkpError::Io`] on filesystem failure, and the journal's typed
    /// corruption errors on interior damage (a torn final line is not an
    /// error).
    pub fn open(dir: &Path) -> Result<(SweepLog, SweepLogReplay), CkpError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let path = dir.join(SWEEP_LOG_FILE);
        let (mut replay, valid_len) = match std::fs::read(&path) {
            Ok(data) => replay_log(&path, &data)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (
                SweepLogReplay {
                    epoch: 0,
                    sweeps: Vec::new(),
                },
                0,
            ),
            Err(e) => return Err(io_err(&path, &e)),
        };
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        file.set_len(valid_len).map_err(|e| io_err(&path, &e))?;
        use std::io::Seek;
        let mut log = SweepLog { file, path };
        log.file
            .seek(std::io::SeekFrom::Start(valid_len))
            .map_err(|e| io_err(&log.path, &e))?;
        if valid_len == 0 {
            log.append(
                b'V',
                &VersionLine {
                    version: SWEEP_LOG_VERSION,
                },
            )?;
        }
        replay.epoch += 1;
        log.append(
            b'E',
            &EpochLine {
                epoch: replay.epoch,
            },
        )?;
        Ok((log, replay))
    }

    /// Records one accepted sweep. Called **before** the submit is
    /// acked; an error here refuses the submit, so every acked sweep is
    /// durable by construction.
    ///
    /// # Errors
    ///
    /// [`CkpError::Io`] when the append or fsync fails.
    pub fn sweep(&mut self, id: u64, spec: &SweepSpec) -> Result<(), CkpError> {
        self.append(
            b'S',
            &SweepLine {
                id,
                spec: spec.clone(),
            },
        )
    }

    fn append<T: Serialize>(&mut self, kind: u8, payload: &T) -> Result<(), CkpError> {
        let json = serde_json::to_string(payload).expect("sweep-log records serialize infallibly");
        let line = format!(
            "{:016x} {} {json}\n",
            checksum(json.as_bytes()),
            kind as char
        );
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&self.path, &e))
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> CkpError {
    CkpError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

fn bad(path: &Path, reason: &str) -> CkpError {
    CkpError::BadPayload {
        path: path.to_path_buf(),
        reason: reason.to_string(),
    }
}

/// One parsed line.
enum LogLine {
    Version(u32),
    Epoch(u64),
    Sweep(u64, SweepSpec),
}

fn parse_line(path: &Path, line: &[u8]) -> Result<LogLine, CkpError> {
    let text = std::str::from_utf8(line).map_err(|_| bad(path, "sweep-log line is not UTF-8"))?;
    // `{fnv:016x} {kind} {json}`
    let (fnv_hex, rest) = text
        .split_once(' ')
        .ok_or_else(|| bad(path, "sweep-log line has no checksum field"))?;
    let (kind, json) = rest
        .split_once(' ')
        .ok_or_else(|| bad(path, "sweep-log line has no kind field"))?;
    let expected =
        u64::from_str_radix(fnv_hex, 16).map_err(|_| bad(path, "sweep-log checksum is not hex"))?;
    let found = checksum(json.as_bytes());
    if expected != found {
        return Err(CkpError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected,
            found,
        });
    }
    let payload_err = |why: &str| bad(path, why);
    match kind {
        "V" => {
            let v: VersionLine = serde_json::from_str(json)
                .map_err(|_| payload_err("sweep-log version line does not decode"))?;
            Ok(LogLine::Version(v.version))
        }
        "E" => {
            let e: EpochLine = serde_json::from_str(json)
                .map_err(|_| payload_err("sweep-log epoch line does not decode"))?;
            Ok(LogLine::Epoch(e.epoch))
        }
        "S" => {
            let s: SweepLine = serde_json::from_str(json)
                .map_err(|_| payload_err("sweep-log sweep line does not decode"))?;
            Ok(LogLine::Sweep(s.id, s.spec))
        }
        other => Err(payload_err(&format!("unknown sweep-log kind `{other}`"))),
    }
}

/// Replays log bytes: records up to the first torn-tail line, plus the
/// byte length of the valid prefix. Interior corruption is a typed
/// error, exactly like `read_journal`.
fn replay_log(path: &Path, data: &[u8]) -> Result<(SweepLogReplay, u64), CkpError> {
    let mut replay = SweepLogReplay {
        epoch: 0,
        sweeps: Vec::new(),
    };
    let mut versioned = false;
    let mut valid_len = 0u64;
    let mut pos = 0usize;
    while pos < data.len() {
        let (line, next, terminated) = match data[pos..].iter().position(|b| *b == b'\n') {
            Some(i) => (&data[pos..pos + i], pos + i + 1, true),
            None => (&data[pos..], data.len(), false),
        };
        let last = next >= data.len();
        match parse_line(path, line) {
            Ok(parsed) if terminated => {
                match (parsed, versioned) {
                    (LogLine::Version(v), false) => {
                        if v != SWEEP_LOG_VERSION {
                            return Err(bad(
                                path,
                                &format!(
                                    "sweep-log version {v} (this build reads {SWEEP_LOG_VERSION})"
                                ),
                            ));
                        }
                        versioned = true;
                    }
                    (LogLine::Version(_), true) => {
                        return Err(bad(path, "second version line in sweep log"))
                    }
                    (LogLine::Epoch(e), true) => replay.epoch = replay.epoch.max(e),
                    (LogLine::Sweep(id, spec), true) => {
                        if !replay.sweeps.iter().any(|(i, _)| *i == id) {
                            replay.sweeps.push((id, spec));
                        }
                    }
                    (_, false) => {
                        return Err(bad(path, "sweep log does not start with a version line"))
                    }
                }
                valid_len = next as u64;
            }
            // A torn tail — an unterminated line, or an unparseable line
            // at the very end (a crash mid-append): drop it.
            Ok(_) | Err(_) if last => break,
            // Corruption with valid data after it is interior damage.
            Err(e) => return Err(e),
            Ok(_) => unreachable!("non-last lines are terminated"),
        }
        pos = next;
    }
    Ok((replay, valid_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dtb-sweeplog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(tenant: &str) -> SweepSpec {
        SweepSpec::paper(tenant)
    }

    #[test]
    fn sweeps_and_epochs_round_trip_across_opens() {
        let dir = temp_dir("roundtrip");
        {
            let (mut log, replay) = SweepLog::open(&dir).unwrap();
            assert_eq!(replay.epoch, 1, "first open is epoch 1");
            assert!(replay.sweeps.is_empty());
            log.sweep(1, &spec("acme")).unwrap();
            log.sweep(2, &spec("umbrella")).unwrap();
        }
        let (_log, replay) = SweepLog::open(&dir).unwrap();
        assert_eq!(replay.epoch, 2, "every open bumps the epoch");
        assert_eq!(replay.sweeps.len(), 2);
        assert_eq!(replay.sweeps[0].0, 1);
        assert_eq!(replay.sweeps[0].1.tenant, "acme");
        assert_eq!(replay.sweeps[1].1.tenant, "umbrella");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = temp_dir("torn");
        {
            let (mut log, _) = SweepLog::open(&dir).unwrap();
            log.sweep(1, &spec("acme")).unwrap();
            log.sweep(2, &spec("umbrella")).unwrap();
        }
        let path = dir.join(SWEEP_LOG_FILE);
        let bytes = std::fs::read(&path).unwrap();
        // Chop mid-way through the final record: sweep 2 becomes a torn
        // tail and must vanish; sweep 1 must survive.
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let (_log, replay) = SweepLog::open(&dir).unwrap();
        assert_eq!(replay.sweeps.len(), 1);
        assert_eq!(replay.sweeps[0].0, 1);
        // The torn bytes are gone from disk (replaced by the epoch bump).
        let reread = std::fs::read(&path).unwrap();
        assert!(reread.len() < bytes.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_corruption_is_refused() {
        let dir = temp_dir("interior");
        {
            let (mut log, _) = SweepLog::open(&dir).unwrap();
            log.sweep(1, &spec("acme")).unwrap();
            log.sweep(2, &spec("umbrella")).unwrap();
        }
        let path = dir.join(SWEEP_LOG_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the *first* sweep record: damage before the
        // final line is interior corruption, not a torn tail.
        let target = bytes.len() / 2;
        bytes[target] ^= 0x41;
        std::fs::write(&path, &bytes).unwrap();
        let err = SweepLog::open(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                CkpError::ChecksumMismatch { .. } | CkpError::BadPayload { .. }
            ),
            "{err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_missing_logs_start_fresh() {
        let dir = temp_dir("fresh");
        std::fs::write(dir.join(SWEEP_LOG_FILE), b"").unwrap();
        let (_log, replay) = SweepLog::open(&dir).unwrap();
        assert_eq!(replay.epoch, 1);
        assert!(replay.sweeps.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
