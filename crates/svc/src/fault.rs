//! Deterministic network fault injection for the service's chaos suites.
//!
//! [`NetFault`] wraps any [`Transport`] and misbehaves on a fixed,
//! seed-free schedule (pure functions of a call counter), mirroring the
//! simulator's own deterministic fault layer (`dtb_sim::fault`): the same
//! plan over the same call sequence injects the same faults, so a chaos
//! test that fails reproduces exactly.
//!
//! Four fault shapes, matching how real coordinator links break:
//!
//! * **dropped connections** — the call fails with `ConnectionReset`
//!   before anything is sent (the client must classify this transient
//!   and retry);
//! * **delayed responses** — the call completes but only after a pause
//!   (exercises lease expiry under slow networks);
//! * **garbled responses** — the exchange happens, then the response
//!   body is corrupted (the client must treat an undecodable `200` as
//!   transient, not trust it);
//! * **stale replays** — the previous request is re-sent to the peer
//!   before the current one (duplicate completions and stale lease
//!   echoes arrive at the coordinator, which must answer `Duplicate` /
//!   `LeaseLost`, never double-record).

use crate::client::Transport;
use crate::http::{Request, Response, WireError};
use std::time::Duration;

/// Which calls misbehave. `None` disables that fault; `Some(n)` fires it
/// on every `n`-th call (1-based), so `Some(1)` means "always".
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Fail with a connection reset before sending.
    pub drop_every: Option<u64>,
    /// Sleep this long before the exchange.
    pub delay_every: Option<(u64, Duration)>,
    /// Corrupt the response body after a successful exchange.
    pub garble_every: Option<u64>,
    /// Re-send the previous request (a stale duplicate) before this one.
    pub replay_every: Option<u64>,
}

impl FaultPlan {
    /// No faults: the wrapper is a pass-through.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    fn fires(every: Option<u64>, call: u64) -> bool {
        matches!(every, Some(n) if n > 0 && call.is_multiple_of(n))
    }
}

/// A fault-injecting [`Transport`] wrapper.
pub struct NetFault<T: Transport> {
    inner: T,
    plan: FaultPlan,
    calls: u64,
    /// The last request actually sent, kept for stale replays.
    last: Option<Request>,
    /// Injected-fault counters, for test assertions.
    pub injected: FaultCounts,
}

/// How many of each fault the wrapper has injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Connections dropped.
    pub dropped: u64,
    /// Responses delayed.
    pub delayed: u64,
    /// Responses garbled.
    pub garbled: u64,
    /// Stale requests replayed.
    pub replayed: u64,
}

impl<T: Transport> NetFault<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> NetFault<T> {
        NetFault {
            inner,
            plan,
            calls: 0,
            last: None,
            injected: FaultCounts::default(),
        }
    }
}

impl<T: Transport> Transport for NetFault<T> {
    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        self.calls += 1;
        let call = self.calls;

        if FaultPlan::fires(self.plan.drop_every, call) {
            self.injected.dropped += 1;
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected: connection reset by peer",
            )));
        }
        if let Some((every, pause)) = self.plan.delay_every {
            if FaultPlan::fires(Some(every), call) {
                self.injected.delayed += 1;
                std::thread::sleep(pause);
            }
        }
        if FaultPlan::fires(self.plan.replay_every, call) {
            // A stale copy of the previous request reaches the peer first
            // — how duplicate completions and dead workers' lease echoes
            // arrive in production. Its response is discarded, like a
            // response to a worker that has since crashed.
            if let Some(stale) = self.last.clone() {
                self.injected.replayed += 1;
                let _ = self.inner.call(&stale);
            }
        }
        self.last = Some(req.clone());
        let mut resp = self.inner.call(req)?;
        if FaultPlan::fires(self.plan.garble_every, call) {
            self.injected.garbled += 1;
            garble(&mut resp.body, call);
        }
        Ok(resp)
    }
}

/// Deterministically corrupts a body: flip one byte (position keyed by
/// the call number) and truncate the tail when long enough — enough to
/// break JSON framing without simulating every corruption shape (the
/// proptests cover arbitrary bytes).
fn garble(body: &mut Vec<u8>, call: u64) {
    if body.is_empty() {
        body.extend_from_slice(b"\xff{corrupt");
        return;
    }
    let i = (call as usize).wrapping_mul(31) % body.len();
    body[i] ^= 0x5A;
    if body.len() > 8 {
        let keep = body.len() - body.len() / 4;
        body.truncate(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An always-healthy in-memory peer.
    struct Echo;
    impl Transport for Echo {
        fn call(&mut self, req: &Request) -> Result<Response, WireError> {
            Ok(Response::ok(req.body.clone()))
        }
    }

    fn req(tag: &str) -> Request {
        Request {
            method: "POST".into(),
            path: "/lease".into(),
            body: format!("{{\"tag\":\"{tag}\"}}").into_bytes(),
        }
    }

    #[test]
    fn drop_schedule_is_deterministic() {
        let plan = FaultPlan {
            drop_every: Some(3),
            ..FaultPlan::none()
        };
        let mut t = NetFault::new(Echo, plan);
        let results: Vec<bool> = (0..9)
            .map(|i| t.call(&req(&i.to_string())).is_ok())
            .collect();
        assert_eq!(
            results,
            [true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(t.injected.dropped, 3);
    }

    #[test]
    fn garbled_responses_stop_decoding() {
        let plan = FaultPlan {
            garble_every: Some(1),
            ..FaultPlan::none()
        };
        let mut t = NetFault::new(Echo, plan);
        let clean = req("abcdefghijklmnop");
        let resp = t.call(&clean).unwrap();
        assert_ne!(resp.body, clean.body, "garbling must change the body");
        assert_eq!(t.injected.garbled, 1);
    }

    #[test]
    fn replay_resends_the_previous_request() {
        /// Counts distinct bodies seen, proving the stale copy arrived.
        struct Recorder(Vec<Vec<u8>>);
        impl Transport for Recorder {
            fn call(&mut self, req: &Request) -> Result<Response, WireError> {
                self.0.push(req.body.clone());
                Ok(Response::ok(Vec::new()))
            }
        }
        let plan = FaultPlan {
            replay_every: Some(2),
            ..FaultPlan::none()
        };
        let mut t = NetFault::new(Recorder(Vec::new()), plan);
        t.call(&req("first")).unwrap();
        t.call(&req("second")).unwrap();
        let seen = &t.inner.0;
        // Call 2 fired the replay: first's body arrived again before
        // second's.
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], seen[1]);
        assert_ne!(seen[1], seen[2]);
    }
}
