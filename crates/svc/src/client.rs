//! The client side of the protocol: a retrying HTTP/JSON caller plus
//! helpers to submit sweeps, poll them, and reassemble a served sweep
//! into the executor's [`Matrix`] shape.
//!
//! The [`Transport`] seam is where the network becomes swappable: the
//! real [`TcpTransport`] for production, and the fault-injecting
//! [`NetFault`](crate::fault::NetFault) wrapper for the chaos suites —
//! both the worker and this client retry **transient** wire failures
//! (socket errors, garbled frames, `5xx`) with the executor's
//! [`RetryPolicy`] backoff, and give up immediately on permanent ones
//! (`4xx`: the request itself is wrong and would fail identically again).

use crate::http::{read_response, write_request, Request, Response, WireError};
use crate::proto::{
    decode, encode, CellResult, CompleteReply, CompleteRequest, LeaseReply, LeaseRequest,
    RelayReply, RelayRequest, ResultsReply, StatusReply, SubmitReply, SubmitRequest, SweepReply,
    SweepSpec, PROTO_VERSION,
};
use dtb_core::policy::Row;
use dtb_sim::exec::{Cell, CellFailure, CellOutcome, Column, FailureCause, Matrix, RetryPolicy};
use serde::Deserialize;
use std::fmt;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One request/response exchange with the coordinator. Implementations
/// own connection management; every call is independent (the protocol is
/// one exchange per connection).
pub trait Transport: Send {
    /// Sends `req` and returns the peer's response.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the exchange fails at the socket or framing
    /// layer.
    fn call(&mut self, req: &Request) -> Result<Response, WireError>;
}

/// The real transport: one TCP connection per exchange.
pub struct TcpTransport {
    addr: String,
    timeout: Duration,
}

impl TcpTransport {
    /// A transport for `addr` (`host:port`) with the default 30 s
    /// per-exchange socket timeouts.
    pub fn new(addr: impl Into<String>) -> TcpTransport {
        TcpTransport {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the socket read/write timeout.
    pub fn timeout(mut self, timeout: Duration) -> TcpTransport {
        self.timeout = timeout;
        self
    }
}

impl Transport for TcpTransport {
    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write_request(&mut stream, req)?;
        read_response(&mut stream)
    }
}

/// Why a client call failed for good (after retries).
#[derive(Debug)]
pub enum SvcError {
    /// The transport kept failing (socket or framing) past the retry
    /// budget.
    Wire(WireError),
    /// The coordinator answered with a permanent protocol error (`4xx`),
    /// or kept answering `5xx` past the retry budget.
    Protocol {
        /// The HTTP status.
        status: u16,
        /// The coordinator's error text.
        message: String,
    },
    /// A `200` body did not decode as the expected message (and retrying
    /// — for the garbled-response case — did not produce one that did).
    Decode(String),
    /// A wait for sweep completion ran out of its deadline.
    Timeout {
        /// The sweep being waited for.
        sweep: u64,
        /// Cells finalized when the deadline expired.
        finalized: u64,
        /// Total cells in the sweep.
        total: u64,
    },
}

impl fmt::Display for SvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvcError::Wire(e) => write!(f, "transport failed after retries: {e}"),
            SvcError::Protocol { status, message } => {
                write!(f, "coordinator answered {status}: {message}")
            }
            SvcError::Decode(why) => write!(f, "cannot decode coordinator reply: {why}"),
            SvcError::Timeout {
                sweep,
                finalized,
                total,
            } => write!(
                f,
                "sweep {sweep} still incomplete at deadline ({finalized}/{total} cells)"
            ),
        }
    }
}

impl std::error::Error for SvcError {}

/// A retrying protocol client over any [`Transport`].
pub struct Client {
    transport: Box<dyn Transport>,
    retry: RetryPolicy,
}

impl Client {
    /// A TCP client for the coordinator at `addr`, with a default retry
    /// budget of 4 (transient wire failures back off and retry; the
    /// schedule is the executor's deterministic-jitter one).
    pub fn connect(addr: impl Into<String>) -> Client {
        Client::with_transport(Box::new(TcpTransport::new(addr)), RetryPolicy::retries(4))
    }

    /// A client over an arbitrary transport (tests swap in
    /// [`NetFault`](crate::fault::NetFault) here).
    pub fn with_transport(transport: Box<dyn Transport>, retry: RetryPolicy) -> Client {
        Client { transport, retry }
    }

    /// Overrides the per-call retry budget. Repro clients that must ride
    /// out a coordinator restart widen this (more retries, longer cap)
    /// instead of wrapping every call in their own loop.
    pub fn retry(mut self, retry: RetryPolicy) -> Client {
        self.retry = retry;
        self
    }

    /// One retrying exchange: transient failures (socket, garbled frame
    /// or body, `5xx`) back off and retry; `4xx` returns immediately.
    fn exchange<Rep: Deserialize>(&mut self, req: &Request) -> Result<Rep, SvcError> {
        // Salt the deterministic backoff jitter by the route, so parallel
        // callers of different endpoints desynchronize.
        let salt = req.path.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut last: Option<SvcError> = None;
        for attempt in 0..=self.retry.max_retries {
            if attempt > 0 {
                std::thread::sleep(self.retry.delay(salt, attempt - 1));
            }
            match self.transport.call(req) {
                // Socket and framing failures are transient: the peer (or
                // the network between) may be healthy next attempt.
                Err(e) => last = Some(SvcError::Wire(e)),
                Ok(resp) if resp.status == 200 => match decode::<Rep>(&resp.body) {
                    Ok(msg) => return Ok(msg),
                    // A 200 that does not decode is a garbled response:
                    // transient, retry.
                    Err(why) => last = Some(SvcError::Decode(why)),
                },
                Ok(resp) => {
                    let err = SvcError::Protocol {
                        status: resp.status,
                        message: String::from_utf8_lossy(&resp.body).into_owned(),
                    };
                    // 4xx means this request is wrong and will stay wrong.
                    if resp.status < 500 {
                        return Err(err);
                    }
                    last = Some(err);
                }
            }
        }
        Err(last.expect("loop ran at least once"))
    }

    fn post(path: &str, body: Vec<u8>) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            body,
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            body: Vec::new(),
        }
    }

    /// Submits a sweep.
    ///
    /// # Errors
    ///
    /// [`SvcError`] when the exchange fails past retries.
    pub fn submit(&mut self, spec: &SweepSpec) -> Result<SubmitReply, SvcError> {
        let body = encode(&SubmitRequest { spec: spec.clone() });
        self.exchange(&Self::post("/submit", body))
    }

    /// Asks for one cell of work.
    ///
    /// # Errors
    ///
    /// [`SvcError`] when the exchange fails past retries.
    pub fn lease(&mut self, worker: &str) -> Result<LeaseReply, SvcError> {
        let body = encode(&LeaseRequest {
            proto: PROTO_VERSION,
            worker: worker.to_string(),
        });
        self.exchange(&Self::post("/lease", body))
    }

    /// Reports one finished cell.
    ///
    /// # Errors
    ///
    /// [`SvcError`] when the exchange fails past retries.
    pub fn complete(&mut self, req: &CompleteRequest) -> Result<CompleteReply, SvcError> {
        self.exchange(&Self::post("/complete", encode(req)))
    }

    /// Fetches per-sweep progress.
    ///
    /// # Errors
    ///
    /// [`SvcError`] when the exchange fails past retries.
    pub fn status(&mut self) -> Result<StatusReply, SvcError> {
        self.exchange(&Self::get("/status"))
    }

    /// Fetches one sweep (with its cells once done).
    ///
    /// # Errors
    ///
    /// [`SvcError`] when the exchange fails past retries.
    pub fn sweep(&mut self, id: u64) -> Result<SweepReply, SvcError> {
        self.exchange(&Self::get(&format!("/sweep?id={id}")))
    }

    /// Queries the results store: cells finalized so far, served even
    /// while the sweep is still running.
    ///
    /// # Errors
    ///
    /// [`SvcError`] when the exchange fails past retries.
    pub fn results(&mut self, id: u64) -> Result<ResultsReply, SvcError> {
        self.exchange(&Self::get(&format!("/results?sweep={id}")))
    }

    /// Relays a batch of worker-side event lines into the coordinator's
    /// `/events` stream.
    ///
    /// # Errors
    ///
    /// [`SvcError`] when the exchange fails past retries.
    pub fn relay(&mut self, req: &RelayRequest) -> Result<RelayReply, SvcError> {
        self.exchange(&Self::post("/relay", encode(req)))
    }

    /// Asks the coordinator to stop serving. One shot, no retries — a
    /// dead peer is already shut down.
    ///
    /// # Errors
    ///
    /// [`SvcError`] when the exchange fails.
    pub fn shutdown(&mut self) -> Result<(), SvcError> {
        let req = Self::post("/shutdown", Vec::new());
        match self.transport.call(&req) {
            Ok(resp) if resp.status == 200 => Ok(()),
            Ok(resp) => Err(SvcError::Protocol {
                status: resp.status,
                message: String::from_utf8_lossy(&resp.body).into_owned(),
            }),
            Err(e) => Err(SvcError::Wire(e)),
        }
    }

    /// Polls `GET /sweep` until the sweep is done, then returns it.
    ///
    /// # Errors
    ///
    /// [`SvcError::Timeout`] when `deadline` elapses first; any
    /// [`SvcError`] a poll itself fails with.
    pub fn wait_sweep(
        &mut self,
        id: u64,
        poll: Duration,
        deadline: Option<Duration>,
    ) -> Result<SweepReply, SvcError> {
        let started = Instant::now();
        loop {
            let reply = self.sweep(id)?;
            if reply.done {
                return Ok(reply);
            }
            if let Some(limit) = deadline {
                if started.elapsed() >= limit {
                    return Err(SvcError::Timeout {
                        sweep: id,
                        finalized: reply.finalized,
                        total: reply.total,
                    });
                }
            }
            std::thread::sleep(poll);
        }
    }
}

/// Reassembles a finished sweep into the executor's [`Matrix`] shape —
/// column per program, cell per row, in spec order — so everything that
/// renders or compares an in-process `Evaluation::run` result consumes a
/// served sweep unchanged.
pub fn matrix_from_sweep(reply: &SweepReply) -> Matrix {
    matrix_from_cells(&reply.spec, &reply.cells)
}

/// Reassembles served cells into the executor's [`Matrix`] shape
/// against `spec`'s (programs × rows) grid — the shared core of
/// [`matrix_from_sweep`] (`GET /sweep`) and the `/results` store path,
/// so both serve bit-identical matrices.
pub fn matrix_from_cells(spec: &SweepSpec, served: &[CellResult]) -> Matrix {
    let rows = spec.rows();
    let columns = spec
        .programs
        .iter()
        .map(|&program| {
            let label = program.label();
            let cells = rows
                .iter()
                .map(|row| {
                    let cell = served
                        .iter()
                        .find(|c| c.column == label && c.row == row.to_string());
                    cell_from_result(label, row, cell)
                })
                .collect();
            Column {
                program: Some(program),
                // The client never materializes trace bytes; consumers
                // that need them recompile from the preset.
                trace: None,
                name: label.to_string(),
                cells,
            }
        })
        .collect();
    Matrix::from_columns(columns)
}

fn cell_from_result(column: &str, row: &Row, served: Option<&CellResult>) -> Cell {
    let (outcome, elapsed_ns, attempts) = match served {
        Some(result) => {
            let outcome = match (&result.run, &result.failure) {
                (Some(run), _) => CellOutcome::Completed(run.clone()),
                // The coordinator preserved the worker's verbatim cause
                // and transient class, so this renders exactly as the
                // equivalent local failure would.
                (None, Some(failure)) => failed(column, row, failure.clone(), result.transient),
                (None, None) => failed(column, row, "served cell carried no outcome", false),
            };
            (outcome, result.elapsed_ns, result.attempts)
        }
        None => (
            failed(column, row, "cell missing from served sweep", false),
            0,
            0,
        ),
    };
    Cell {
        row: row.clone(),
        outcome,
        elapsed: Duration::from_nanos(elapsed_ns),
        attempts: attempts.max(1),
    }
}

fn failed(column: &str, row: &Row, cause: impl Into<String>, transient: bool) -> CellOutcome {
    CellOutcome::Failed(CellFailure {
        program: column.to_string(),
        row: row.clone(),
        cause: FailureCause::Remote {
            cause: cause.into(),
            transient,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Satellite of the observability PR: a failure that travelled
    /// through the service (worker → quarantine → `CellResult` →
    /// reassembly) renders through the same [`CellFailure::render`]
    /// formatter as a local one, with the same cause text, the same
    /// transient/permanent class, and the same attempt count — the only
    /// difference is the `remote:` provenance prefix.
    #[test]
    fn served_failures_render_like_local_ones() {
        let row = Row::NoGc;
        let local = CellFailure {
            program: "SELF".to_string(),
            row: row.clone(),
            cause: FailureCause::Deadline {
                limit: Duration::from_secs(2),
                at: dtb_core::VirtualTime::from_bytes(500),
            },
        };
        // What the worker reports: the verbatim rendered cause plus the
        // transient class — exactly what the coordinator stores.
        let served = CellResult {
            column: local.program.clone(),
            row: row.to_string(),
            attempts: 3,
            elapsed_ns: 0,
            run: None,
            failure: Some(local.cause.to_string()),
            transient: local.cause.is_transient(),
        };
        let cell = cell_from_result(&local.program, &row, Some(&served));
        assert_eq!(cell.attempts, 3);
        let remote = cell.failure().expect("served failure survives reassembly");
        assert!(
            remote.is_transient(),
            "transient class must survive the wire"
        );
        let cause = local.cause.to_string();
        assert_eq!(
            remote.render(cell.attempts),
            local
                .render(3)
                .replacen(&cause, &format!("remote: {cause}"), 1)
        );
    }
}
