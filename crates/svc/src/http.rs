//! Minimal HTTP/1.1 framing over blocking byte streams.
//!
//! The coordinator/worker protocol needs exactly one shape of exchange: a
//! client writes one request with a JSON body, the server writes one
//! response with a JSON body, and the connection closes. This module
//! implements that slice of HTTP/1.1 on plain [`std::io::Read`] /
//! [`std::io::Write`] — no async runtime, no external dependency — with
//! the defensive posture the wire deserves: every parse failure is a
//! typed [`WireError`], never a panic, and all lengths are bounded
//! *before* allocation so a hostile peer cannot balloon memory with a
//! forged `Content-Length`.
//!
//! The framing is deliberately strict (exactly the subset the service
//! emits): `\r\n` line endings, a `Content-Length` header on every
//! message that has a body, no keep-alive. Strict parsing is what makes
//! the garbled-bytes proptests meaningful — any mutation that breaks
//! the frame is rejected with an error.
//!
//! The one exception to one-request/one-response/close is the `/events`
//! server-push stream: a long-lived response framed with
//! `Transfer-Encoding: chunked` ([`write_chunked_head`] /
//! [`write_chunk`] on the server, [`read_chunked_head`] /
//! [`ChunkedReader`] on the client), carrying one JSON event per line.
//! Chunk sizes are bounded by [`MAX_BODY`] like everything else.

use std::fmt;
use std::io::{Read, Write};

/// Upper bound on one header line (and the request/status line).
pub const MAX_LINE: usize = 8 * 1024;

/// Upper bound on the number of headers in one message.
pub const MAX_HEADERS: usize = 64;

/// Upper bound on a message body. Generous — a journal cell for a long
/// run is hundreds of kilobytes of JSON — but finite, so a forged
/// `Content-Length` cannot balloon allocation.
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Why a wire exchange failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (reset, refused, timed out…). These
    /// are the *transient* wire failures: the peer may be back next
    /// attempt.
    Io(std::io::Error),
    /// The peer's bytes do not frame a valid message. Garbled responses
    /// land here; retrying against a healthy peer can still succeed.
    Malformed(String),
    /// A declared length exceeds the protocol bounds.
    TooLarge {
        /// What was oversized ("line", "headers", "body").
        what: &'static str,
        /// The declared or observed size.
        size: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Malformed(why) => write!(f, "malformed message: {why}"),
            WireError::TooLarge { what, size } => {
                write!(f, "{what} of {size} bytes exceeds protocol bounds")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

fn malformed(why: impl Into<String>) -> WireError {
    WireError::Malformed(why.into())
}

/// One parsed request: method, path, body. Headers beyond
/// `Content-Length` are read, bounded, and ignored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method (`GET`, `POST`, …), uppercased by convention but
    /// matched exactly.
    pub method: String,
    /// The request path, e.g. `/lease`.
    pub path: String,
    /// The raw body bytes (JSON in this protocol; empty for `GET`).
    pub body: Vec<u8>,
}

/// One parsed response: status code and body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` with this body.
    pub fn ok(body: Vec<u8>) -> Response {
        Response { status: 200, body }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response {
            status,
            body: message.into().into_bytes(),
        }
    }
}

/// Reads one `\r\n`-terminated line, bounded by [`MAX_LINE`].
fn read_line(r: &mut impl Read) -> Result<String, WireError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = r.read(&mut byte)?;
        if n == 0 {
            return Err(malformed("connection closed mid-line"));
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
                return String::from_utf8(line).map_err(|_| malformed("header line is not UTF-8"));
            }
            return Err(malformed("bare LF in header line"));
        }
        if line.len() >= MAX_LINE {
            return Err(WireError::TooLarge {
                what: "line",
                size: line.len(),
            });
        }
        line.push(byte[0]);
    }
}

/// Reads the header block after the start line, returning the declared
/// `Content-Length` (0 when absent).
fn read_headers(r: &mut impl Read) -> Result<usize, WireError> {
    let mut content_length = 0usize;
    for n in 0.. {
        if n >= MAX_HEADERS {
            return Err(WireError::TooLarge {
                what: "headers",
                size: n,
            });
        }
        let line = read_line(r)?;
        if line.is_empty() {
            return Ok(content_length);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed("header line without a colon"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| malformed("content-length is not a number"))?;
            if content_length > MAX_BODY {
                return Err(WireError::TooLarge {
                    what: "body",
                    size: content_length,
                });
            }
        }
    }
    unreachable!("the loop returns or errors within MAX_HEADERS iterations")
}

/// Reads exactly `len` body bytes.
fn read_body(r: &mut impl Read, len: usize) -> Result<Vec<u8>, WireError> {
    // `len` was bounded by MAX_BODY in `read_headers`, but the body is
    // still read incrementally so a peer that declares more than it
    // sends fails with a clean error, not a huge zeroed allocation.
    let mut body = Vec::with_capacity(len.min(64 * 1024));
    let mut chunk = [0u8; 4096];
    while body.len() < len {
        let want = (len - body.len()).min(chunk.len());
        let n = r.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(body)
}

/// Reads one request from a stream.
///
/// # Errors
///
/// [`WireError::Io`] on socket failure, [`WireError::Malformed`] /
/// [`WireError::TooLarge`] when the bytes do not frame a bounded, valid
/// request. Never panics, whatever the bytes.
pub fn read_request(r: &mut impl Read) -> Result<Request, WireError> {
    let start = read_line(r)?;
    let mut parts = start.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(malformed("request line is not `METHOD PATH VERSION`")),
    };
    if version != "HTTP/1.1" {
        return Err(malformed(format!("unsupported version `{version}`")));
    }
    let content_length = read_headers(r)?;
    let body = read_body(r, content_length)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// Writes one request (with `Connection: close`) to a stream.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    write!(
        w,
        "{} {} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        req.method,
        req.path,
        req.body.len()
    )?;
    w.write_all(&req.body)?;
    w.flush()?;
    Ok(())
}

/// Reads one response from a stream. Same defensive posture as
/// [`read_request`].
pub fn read_response(r: &mut impl Read) -> Result<Response, WireError> {
    let start = read_line(r)?;
    let mut parts = start.split(' ');
    let status = match (parts.next(), parts.next()) {
        (Some("HTTP/1.1"), Some(code)) => code
            .parse::<u16>()
            .map_err(|_| malformed("status code is not a number"))?,
        _ => return Err(malformed("status line is not `HTTP/1.1 CODE REASON`")),
    };
    let content_length = read_headers(r)?;
    let body = read_body(r, content_length)?;
    Ok(Response { status, body })
}

/// Writes one response (with `Connection: close`) to a stream.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), WireError> {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        410 => "Gone",
        _ => "Error",
    };
    write!(
        w,
        "HTTP/1.1 {} {reason}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        resp.status,
        resp.body.len()
    )?;
    w.write_all(&resp.body)?;
    w.flush()?;
    Ok(())
}

// ──────────── chunked transfer (the `/events` stream) ────────────

/// Writes the head of a chunked-transfer response: status line plus
/// `Transfer-Encoding: chunked`, no `Content-Length`. The body follows
/// as [`write_chunk`] calls terminated by [`write_chunk_end`].
pub fn write_chunked_head(w: &mut impl Write, status: u16) -> Result<(), WireError> {
    let reason = if status == 200 { "OK" } else { "Error" };
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n"
    )?;
    w.flush()?;
    Ok(())
}

/// Writes one non-empty chunk (size line, data, CRLF) and flushes, so
/// each event batch reaches the follower immediately. An empty chunk
/// would terminate the stream — that is [`write_chunk_end`]'s job.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> Result<(), WireError> {
    debug_assert!(!data.is_empty(), "empty chunk terminates the stream");
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()?;
    Ok(())
}

/// Terminates a chunked stream cleanly (the zero-length final chunk).
pub fn write_chunk_end(w: &mut impl Write) -> Result<(), WireError> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()?;
    Ok(())
}

/// Reads a streaming response head: the status line and headers.
/// Returns the status code; a `200` that is not chunked is malformed
/// (the server always streams `/events` chunked).
pub fn read_chunked_head(r: &mut impl Read) -> Result<u16, WireError> {
    let start = read_line(r)?;
    let mut parts = start.split(' ');
    let status = match (parts.next(), parts.next()) {
        (Some("HTTP/1.1"), Some(code)) => code
            .parse::<u16>()
            .map_err(|_| malformed("status code is not a number"))?,
        _ => return Err(malformed("status line is not `HTTP/1.1 CODE REASON`")),
    };
    let mut chunked = false;
    for n in 0.. {
        if n >= MAX_HEADERS {
            return Err(WireError::TooLarge {
                what: "headers",
                size: n,
            });
        }
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed("header line without a colon"));
        };
        if name.trim().eq_ignore_ascii_case("transfer-encoding")
            && value.trim().eq_ignore_ascii_case("chunked")
        {
            chunked = true;
        }
    }
    if status == 200 && !chunked {
        return Err(malformed("streaming response is not chunked"));
    }
    Ok(status)
}

/// Decodes a chunked-transfer stream into its underlying bytes: a
/// [`Read`] adapter that strips the size lines and CRLF framing and
/// reports end-of-stream at the zero-length final chunk.
pub struct ChunkedReader<R: Read> {
    inner: R,
    remaining: usize,
    done: bool,
}

impl<R: Read> ChunkedReader<R> {
    /// Wraps a stream positioned just after the response head.
    pub fn new(inner: R) -> ChunkedReader<R> {
        ChunkedReader {
            inner,
            remaining: 0,
            done: false,
        }
    }

    /// Reads the next chunk-size line (setting `done` at the final
    /// zero-length chunk).
    fn advance(&mut self) -> Result<(), WireError> {
        let line = read_line(&mut self.inner)?;
        let size = usize::from_str_radix(line.trim(), 16)
            .map_err(|_| malformed("chunk size is not hex"))?;
        if size > MAX_BODY {
            return Err(WireError::TooLarge { what: "body", size });
        }
        if size == 0 {
            // Consume the blank line that closes the (empty) trailer.
            let trailer = read_line(&mut self.inner)?;
            if !trailer.is_empty() {
                return Err(malformed("unexpected trailer after final chunk"));
            }
            self.done = true;
        }
        self.remaining = size;
        Ok(())
    }

    /// Consumes the CRLF that closes a fully-read chunk.
    fn finish_chunk(&mut self) -> Result<(), WireError> {
        let sep = read_line(&mut self.inner)?;
        if !sep.is_empty() {
            return Err(malformed("chunk data not followed by CRLF"));
        }
        Ok(())
    }
}

fn wire_to_io(e: WireError) -> std::io::Error {
    match e {
        WireError::Io(e) => e,
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
    }
}

impl<R: Read> Read for ChunkedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.done {
                return Ok(0);
            }
            if self.remaining == 0 {
                self.advance().map_err(wire_to_io)?;
                continue;
            }
            let want = buf.len().min(self.remaining);
            if want == 0 {
                return Ok(0);
            }
            let n = self.inner.read(&mut buf[..want])?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream closed mid-chunk",
                ));
            }
            self.remaining -= n;
            if self.remaining == 0 {
                self.finish_chunk().map_err(wire_to_io)?;
            }
            return Ok(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, req).unwrap();
        read_request(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn request_round_trips() {
        let req = Request {
            method: "POST".into(),
            path: "/lease".into(),
            body: br#"{"worker":"w1"}"#.to_vec(),
        };
        assert_eq!(round_trip_request(&req), req);
        let get = Request {
            method: "GET".into(),
            path: "/status".into(),
            body: Vec::new(),
        };
        assert_eq!(round_trip_request(&get), get);
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok(b"{\"leased\":true}".to_vec());
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        assert_eq!(read_response(&mut buf.as_slice()).unwrap(), resp);
    }

    #[test]
    fn oversized_content_length_is_rejected_before_allocation() {
        let raw = format!(
            "POST /lease HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            read_request(&mut raw.as_bytes()),
            Err(WireError::TooLarge { what: "body", .. })
        ));
    }

    #[test]
    fn truncated_body_is_malformed_not_a_hang() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        assert!(matches!(
            read_request(&mut raw.as_slice()),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn junk_start_lines_are_typed_errors() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/0.9\r\n\r\n",
            b"\xff\xfe\xfd\r\n\r\n",
            b"POST /x HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(read_request(&mut &raw[..]).is_err());
        }
        assert!(read_response(&mut &b"HTTP/2 200 OK\r\n\r\n"[..]).is_err());
        assert!(read_response(&mut &b"HTTP/1.1 abc OK\r\n\r\n"[..]).is_err());
    }

    #[test]
    fn chunked_round_trip() {
        let mut wire = Vec::new();
        write_chunked_head(&mut wire, 200).unwrap();
        write_chunk(&mut wire, b"{\"seq\":1}\n").unwrap();
        write_chunk(&mut wire, b"{\"seq\":2}\n{\"seq\":3}\n").unwrap();
        write_chunk_end(&mut wire).unwrap();

        let mut r = wire.as_slice();
        assert_eq!(read_chunked_head(&mut r).unwrap(), 200);
        let mut body = String::new();
        ChunkedReader::new(r).read_to_string(&mut body).unwrap();
        assert_eq!(body, "{\"seq\":1}\n{\"seq\":2}\n{\"seq\":3}\n");
    }

    #[test]
    fn chunked_head_requires_chunked_on_200() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 0\r\n\r\n";
        assert!(matches!(
            read_chunked_head(&mut raw.as_slice()),
            Err(WireError::Malformed(_))
        ));
        // Error statuses may come back as plain one-shot responses.
        let raw = b"HTTP/1.1 400 Error\r\ncontent-length: 2\r\n\r\nno";
        assert_eq!(read_chunked_head(&mut raw.as_slice()).unwrap(), 400);
    }

    #[test]
    fn chunked_reader_rejects_garbage_framing() {
        // Non-hex size line.
        let raw = b"zz\r\ndata\r\n0\r\n\r\n";
        let mut s = String::new();
        assert!(ChunkedReader::new(raw.as_slice())
            .read_to_string(&mut s)
            .is_err());
        // Truncation mid-chunk surfaces as UnexpectedEof, not a hang.
        let raw = b"a\r\nabc";
        let mut s = String::new();
        assert!(ChunkedReader::new(raw.as_slice())
            .read_to_string(&mut s)
            .is_err());
    }
}
