//! The coordinator's server-push event channel.
//!
//! [`EventLog`] is a bounded, in-memory sequence of JSON event lines.
//! The coordinator publishes one line per lifecycle transition (sweep
//! submitted, cell leased / recorded / requeued, sweep drained) plus
//! worker-relayed engine events; each `GET /events` connection streams
//! the log over chunked transfer from a caller-chosen sequence number,
//! waiting (with heartbeats) when it catches up. The log is a live
//! window, not a durable record — a follower that falls more than
//! [`EventLog::capacity`] events behind skips forward (the gap is
//! visible as a jump in `seq`); durable state lives in the journal and
//! the results store.
//!
//! [`follow_events`] is the matching client: it tails a coordinator's
//! stream and hands each event line to a callback, which is how the
//! CLIs implement `--follow` and how the smoke suites watch a run.
//!
//! # Epochs
//!
//! Sequence numbers restart at 1 with the process, so a bare `seq`
//! cursor is ambiguous across a coordinator restart. Every line is
//! therefore tagged with the log's **epoch** (the coordinator's
//! incarnation number, from the sweep log) ahead of its `seq`:
//! `{"epoch":3,"seq":17,...}`. A follower resumes from an
//! [`EventCursor`] — `(epoch, seq)` — and [`follow_events_resilient`]
//! rides out restarts: it reconnects with capped jittered backoff,
//! re-requests from its cursor, and drops any line it has already
//! delivered, so a restart produces neither duplicates nor silent gaps
//! in what the callback sees.

use crate::http::{read_chunked_head, write_request, ChunkedReader, Request};
use dtb_sim::RetryPolicy;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default number of event lines the log retains.
pub const DEFAULT_CAPACITY: usize = 8192;

/// The heartbeat line idle streams emit so dead followers are detected
/// (and so followers can distinguish "quiet" from "stuck").
pub const HEARTBEAT: &str = "{\"type\":\"heartbeat\"}";

/// A follower's resume position: which incarnation of the coordinator
/// it last heard from, and the first sequence number it still wants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventCursor {
    /// Epoch of the last line delivered (0 = never connected).
    pub epoch: u64,
    /// First sequence number wanted within that epoch.
    pub seq: u64,
}

impl EventCursor {
    /// The cursor of a follower that has seen nothing yet: any epoch,
    /// from the start of the retained window.
    pub fn start() -> EventCursor {
        EventCursor { epoch: 0, seq: 1 }
    }
}

/// Parses the `{"epoch":E,"seq":S,` prefix the coordinator frames every
/// event line with. `None` for lines without one (heartbeats, relayed
/// payloads from older builds).
pub fn line_cursor(line: &str) -> Option<EventCursor> {
    let rest = line.strip_prefix("{\"epoch\":")?;
    let comma = rest.find(',')?;
    let epoch: u64 = rest[..comma].parse().ok()?;
    let rest = rest[comma + 1..].strip_prefix("\"seq\":")?;
    let comma = rest.find(',')?;
    let seq: u64 = rest[..comma].parse().ok()?;
    Some(EventCursor { epoch, seq })
}

/// A bounded, seq-numbered log of JSON event lines with blocking reads.
pub struct EventLog {
    inner: Mutex<LogInner>,
    wake: Condvar,
    capacity: usize,
    /// The coordinator incarnation this log belongs to. Immutable: a
    /// restart builds a new log under a new epoch.
    epoch: u64,
}

struct LogInner {
    /// Sequence number the *next* published event will get (1-based).
    next_seq: u64,
    buf: VecDeque<(u64, String)>,
    closed: bool,
}

/// One batch handed to a follower by [`EventLog::read_from`].
pub struct EventBatch {
    /// Where to resume: the first sequence number *not* in `lines`.
    pub next: u64,
    /// Event lines in sequence order (without trailing newlines).
    pub lines: Vec<String>,
    /// True once the log is closed and fully drained — the stream ends.
    pub closed: bool,
}

impl EventLog {
    /// An empty log retaining at most `capacity` lines, under epoch 1
    /// (a coordinator with no durable sweep log never restarts into the
    /// same history, so one epoch suffices).
    pub fn new(capacity: usize) -> EventLog {
        EventLog::with_epoch(capacity, 1)
    }

    /// An empty log under an explicit epoch — the coordinator's
    /// incarnation number from the sweep log.
    pub fn with_epoch(capacity: usize, epoch: u64) -> EventLog {
        EventLog {
            inner: Mutex::new(LogInner {
                next_seq: 1,
                buf: VecDeque::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
            epoch,
        }
    }

    /// The retention window, in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The epoch every line of this log is tagged with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sequence number the next published event will carry.
    pub fn next_seq(&self) -> u64 {
        self.lock().next_seq
    }

    /// Publishes one event line: assigns the next sequence number, hands
    /// `(epoch, seq)` to `make` (so the line can embed its own cursor),
    /// appends the line (dropping the oldest past capacity), and wakes
    /// all waiting followers. Returns the assigned sequence number.
    pub fn publish_with(&self, make: impl FnOnce(u64, u64) -> String) -> u64 {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let line = make(self.epoch, seq);
        inner.buf.push_back((seq, line));
        while inner.buf.len() > self.capacity {
            inner.buf.pop_front();
        }
        drop(inner);
        self.wake.notify_all();
        seq
    }

    /// Returns the event lines with sequence numbers `>= from`, waiting
    /// up to `wait` for one to appear when the follower is caught up. A
    /// `from` older than the retention window skips forward to the
    /// oldest retained line.
    pub fn read_from(&self, from: u64, wait: Duration) -> EventBatch {
        let mut inner = self.lock();
        if !inner.closed && !inner.buf.iter().any(|(seq, _)| *seq >= from) {
            let (guard, _timeout) = self
                .wake
                .wait_timeout(inner, wait)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
        }
        let lines: Vec<String> = inner
            .buf
            .iter()
            .filter(|(seq, _)| *seq >= from)
            .map(|(_, line)| line.clone())
            .collect();
        let next = inner.next_seq.max(from);
        EventBatch {
            next,
            lines,
            closed: inner.closed,
        }
    }

    /// Closes the log: followers drain what is buffered and then see
    /// end-of-stream.
    pub fn close(&self) {
        self.lock().closed = true;
        self.wake.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LogInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Encodes `s` as a JSON string literal (quotes included) — enough to
/// embed tenant/worker names in hand-framed event lines.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// True when `line` is safe to splice verbatim into a framed JSON event:
/// a single-line `{...}` object with no control characters and a sane
/// length. This is a framing check, not a JSON parse — the coordinator
/// relays worker event lines opaquely.
pub(crate) fn is_clean_event_line(line: &str) -> bool {
    line.len() <= 4096
        && line.starts_with('{')
        && line.ends_with('}')
        && !line.bytes().any(|b| b < 0x20)
}

/// Tails a coordinator's `GET /events` stream, invoking `on_line` for
/// every event line (heartbeats are filtered out). Returns when the
/// stream ends, `stop` becomes true, or `on_line` returns `false`.
///
/// # Errors
///
/// Propagates connection and framing failures; a clean end-of-stream is
/// `Ok(())`.
pub fn follow_events(
    addr: &str,
    from: u64,
    stop: &AtomicBool,
    mut on_line: impl FnMut(&str) -> bool,
) -> std::io::Result<()> {
    tail_session(addr, &format!("/events?from={from}"), stop, |line| {
        if line == HEARTBEAT {
            true
        } else {
            on_line(line)
        }
    })
    .map(|_| ())
}

/// One `GET` streaming session: connects, requests `path`, and hands
/// every non-empty line (heartbeats included) to `on_raw`. `Ok(true)`
/// when `on_raw` asked to stop, `Ok(false)` on clean end-of-stream.
fn tail_session(
    addr: &str,
    path: &str,
    stop: &AtomicBool,
    mut on_raw: impl FnMut(&str) -> bool,
) -> std::io::Result<bool> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut stream = stream;
    let req = Request {
        method: "GET".to_string(),
        path: path.to_string(),
        body: Vec::new(),
    };
    write_request(&mut stream, &req).map_err(wire_to_io)?;
    let mut head_src = BufReader::new(stream);
    let status = read_chunked_head(&mut head_src).map_err(wire_to_io)?;
    if status != 200 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("coordinator answered {status} to /events"),
        ));
    }
    let mut lines = BufReader::new(ChunkedReader::new(head_src));
    let mut buf = String::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(true);
        }
        match lines.read_line(&mut buf) {
            Ok(0) => return Ok(false),
            Ok(_) => {
                let line = buf.trim_end_matches('\n');
                if !line.is_empty() && !on_raw(line) {
                    return Ok(true);
                }
                buf.clear();
            }
            // Socket read timeout: check the stop flag and keep tailing.
            // A partially-read line stays accumulated in `buf`.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
}

/// Tails `GET /events` across coordinator restarts. Where
/// [`follow_events`] gives up when its one connection dies, this
/// follower reconnects with capped jittered backoff and resumes from
/// its `(epoch, seq)` cursor; lines already delivered (same epoch,
/// older seq) are dropped, so the callback sees each event exactly
/// once even when the server replays its window.
///
/// End-of-stream is treated as a possible restart, not a reason to
/// return — the follower keeps trying until `stop` is set, `on_line`
/// returns `false`, or the coordinator stays unreachable (no line, not
/// even a heartbeat) for longer than `max_downtime` in a row.
///
/// # Errors
///
/// A continuous outage exceeding `max_downtime`.
pub fn follow_events_resilient(
    addr: &str,
    from: EventCursor,
    max_downtime: Duration,
    stop: &AtomicBool,
    mut on_line: impl FnMut(&str) -> bool,
) -> std::io::Result<()> {
    let mut cursor = from;
    let retry = RetryPolicy::retries(u32::MAX);
    let salt = dtb_trace::ckp::checksum(addr.as_bytes());
    let mut outage_start: Option<Instant> = None;
    let mut attempt: u32 = 0;
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let path = format!("/events?from={}&epoch={}", cursor.seq, cursor.epoch);
        let alive = std::cell::Cell::new(false);
        let session = tail_session(addr, &path, stop, |line| {
            alive.set(true);
            if line == HEARTBEAT {
                return true;
            }
            if let Some(at) = line_cursor(line) {
                if at.epoch == cursor.epoch && at.seq < cursor.seq {
                    return true; // already delivered before the reconnect
                }
                cursor = EventCursor {
                    epoch: at.epoch,
                    seq: at.seq + 1,
                };
            }
            on_line(line)
        });
        if alive.get() {
            outage_start = None;
            attempt = 0;
        }
        match session {
            Ok(true) => return Ok(()),
            // Clean end-of-stream or a dropped connection: either way,
            // the coordinator may be restarting — keep knocking.
            Ok(false) | Err(_) => {
                let since = *outage_start.get_or_insert_with(Instant::now);
                if since.elapsed() > max_downtime {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!(
                            "coordinator {addr} unreachable for {:?} (budget {max_downtime:?})",
                            since.elapsed()
                        ),
                    ));
                }
                std::thread::sleep(retry.delay(salt, attempt));
                attempt = attempt.saturating_add(1);
            }
        }
    }
}

fn wire_to_io(e: crate::http::WireError) -> std::io::Error {
    match e {
        crate::http::WireError::Io(e) => e,
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn publish_assigns_monotone_seqs_and_read_returns_them() {
        let log = EventLog::new(16);
        let frame = |epoch: u64, seq: u64| format!("{{\"epoch\":{epoch},\"seq\":{seq},\"x\":0}}");
        assert_eq!(log.publish_with(frame), 1);
        assert_eq!(log.publish_with(frame), 2);
        let batch = log.read_from(1, Duration::ZERO);
        assert_eq!(
            batch.lines,
            vec![
                "{\"epoch\":1,\"seq\":1,\"x\":0}",
                "{\"epoch\":1,\"seq\":2,\"x\":0}"
            ]
        );
        assert_eq!(batch.next, 3);
        assert!(!batch.closed);
        // Resuming from `next` sees nothing new.
        assert!(log.read_from(batch.next, Duration::ZERO).lines.is_empty());
    }

    #[test]
    fn capacity_drops_oldest_and_followers_skip_forward() {
        let log = EventLog::new(2);
        for _ in 0..5 {
            log.publish_with(|_, seq| format!("e{seq}"));
        }
        let batch = log.read_from(1, Duration::ZERO);
        assert_eq!(batch.lines, vec!["e4", "e5"]);
        assert_eq!(batch.next, 6);
    }

    #[test]
    fn epoch_tags_every_published_line() {
        let log = EventLog::with_epoch(4, 7);
        assert_eq!(log.epoch(), 7);
        log.publish_with(|epoch, seq| format!("{{\"epoch\":{epoch},\"seq\":{seq},\"x\":0}}"));
        let batch = log.read_from(1, Duration::ZERO);
        let cursor = line_cursor(&batch.lines[0]).expect("cursor parses");
        assert_eq!(cursor, EventCursor { epoch: 7, seq: 1 });
    }

    #[test]
    fn line_cursor_rejects_unframed_lines() {
        assert_eq!(line_cursor(HEARTBEAT), None);
        assert_eq!(line_cursor("{\"seq\":3,\"x\":0}"), None);
        assert_eq!(
            line_cursor("{\"epoch\":2,\"seq\":9,\"x\":0}"),
            Some(EventCursor { epoch: 2, seq: 9 })
        );
        assert_eq!(line_cursor("{\"epoch\":nope,\"seq\":9}"), None);
    }

    #[test]
    fn read_blocks_until_publish_or_close() {
        let log = Arc::new(EventLog::new(16));
        let publisher = {
            let log = Arc::clone(&log);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                log.publish_with(|_, seq| format!("late{seq}"));
            })
        };
        let batch = log.read_from(1, Duration::from_secs(5));
        assert_eq!(batch.lines, vec!["late1"]);
        publisher.join().unwrap();

        log.close();
        let batch = log.read_from(batch.next, Duration::from_secs(5));
        assert!(batch.lines.is_empty());
        assert!(batch.closed);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn clean_event_line_gate() {
        assert!(is_clean_event_line("{\"type\":\"scavenge\"}"));
        assert!(!is_clean_event_line("not json"));
        assert!(!is_clean_event_line("{\"a\":\n1}"));
        assert!(!is_clean_event_line(&format!(
            "{{\"a\":\"{}\"}}",
            "x".repeat(5000)
        )));
    }
}
