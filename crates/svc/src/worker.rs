//! The worker: a lease → run → complete loop against one coordinator.
//!
//! Each leased cell runs under the engine's cooperative-cancellation
//! deadline, armed at 80% of the lease window — a hung or oversized cell
//! gives up (and reports a *transient* failure) before the coordinator
//! declares the lease dead, so the cell requeues exactly once instead of
//! being double-counted as both a worker failure and a lease expiry.
//!
//! Failure classification mirrors the executor's
//! [`FailureCause::is_transient`] split: deadlines and shard I/O retry,
//! policy errors / invariant violations / corruption / panics quarantine.
//! Wire failures (connection reset, garbled response) never fail a cell
//! at all — they retry inside [`Client`] with the executor's
//! [`RetryPolicy`](dtb_sim::exec::RetryPolicy) backoff. What happens when
//! even that budget runs out is [`WorkerConfig::reconnect`]'s call: with
//! no reconnect window the worker exits with an error (fail-fast, the
//! pre-recovery behaviour), with one it keeps retrying under the idle
//! backoff schedule until the coordinator returns or the window of
//! *continuous* outage closes — so a coordinator crash + restart is
//! something a fleet simply rides out. An unacknowledged completion is
//! re-sent until the (restarted) coordinator answers `Recorded` /
//! `Duplicate` / `LeaseLost`; lease-epoch fencing on the coordinator
//! makes that retry loop safe.

use crate::client::{Client, SvcError};
use crate::proto::{CellTask, CompleteRequest, CompleteStatus, RelayRequest, MAX_RELAY_LINES};
use dtb_core::policy::Row;
use dtb_sim::baseline::{live_report, no_gc_report};
use dtb_sim::curve::MemoryCurve;
use dtb_sim::engine::{RunControl, Sim, SimRun};
use dtb_sim::exec::{FailureCause, RetryPolicy, TraceCache};
use dtb_sim::SimError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Worker tuning knobs.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// This worker's identity (diagnostics and lease bookkeeping).
    pub name: String,
    /// Exit cleanly once the coordinator reports itself drained (all
    /// submitted sweeps finished). Off = keep polling for new sweeps.
    pub exit_when_done: bool,
    /// Artificial pause before each cell — the crash suites use it to
    /// pace workers so a SIGKILL reliably lands mid-matrix.
    pub cell_delay: Duration,
    /// Intra-cell simulation threads (1 = serial engine).
    pub threads: usize,
    /// Relay per-scavenge telemetry from completed cells into the
    /// coordinator's `/events` stream (`POST /relay`). Best-effort: a
    /// failed relay never fails the cell.
    pub relay_events: bool,
    /// Maximum *continuous* coordinator outage to ride out before giving
    /// up. `None` = fail fast once the client's own retry budget is
    /// spent (the pre-recovery behaviour). The outage clock resets on
    /// every successful exchange.
    pub reconnect: Option<Duration>,
    /// Shared liveness counters, published over `GET /healthz` by
    /// [`serve_healthz`] when wired up.
    pub health: Option<Arc<WorkerHealth>>,
}

impl WorkerConfig {
    /// A worker named `name` with defaults: run until drained? no —
    /// poll forever; no cell delay; serial engine; fail fast on
    /// coordinator loss; no health endpoint.
    pub fn new(name: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            name: name.into(),
            exit_when_done: false,
            cell_delay: Duration::ZERO,
            threads: 1,
            relay_events: false,
            reconnect: None,
            health: None,
        }
    }
}

/// Liveness counters one worker exposes over `GET /healthz`. All fields
/// are plain atomics so the serving thread, the worker loop, and any
/// in-process observer share one allocation without locks.
#[derive(Debug, Default)]
pub struct WorkerHealth {
    /// Cells completed successfully (a run was produced).
    pub cells_completed: AtomicU64,
    /// Cells that ended in a failure report.
    pub cells_failed: AtomicU64,
    /// Coordinator-outage episodes ridden out (one per continuous
    /// outage, not per retry).
    pub reconnects: AtomicU64,
    /// Whether a cell is being executed right now.
    pub busy: AtomicBool,
}

/// Serves `GET /healthz` for one worker on `addr` (a `host:port`;
/// `127.0.0.1:0` picks an ephemeral port) from a background thread, and
/// returns the bound address. The chaos driver polls this to tell a
/// worker that is busy simulating from one that is gone.
///
/// # Errors
///
/// I/O errors binding the listener.
pub fn serve_healthz(
    addr: &str,
    name: &str,
    health: Arc<WorkerHealth>,
) -> std::io::Result<std::net::SocketAddr> {
    let listener = std::net::TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let name = name.to_string();
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
            let resp = match crate::http::read_request(&mut stream) {
                Ok(req) if req.method == "GET" && req.path == "/healthz" => {
                    crate::http::Response::ok(
                        format!(
                            "{{\"worker\":{:?},\"busy\":{},\"cells_completed\":{},\"cells_failed\":{},\"reconnects\":{}}}",
                            name,
                            health.busy.load(Ordering::Relaxed),
                            health.cells_completed.load(Ordering::Relaxed),
                            health.cells_failed.load(Ordering::Relaxed),
                            health.reconnects.load(Ordering::Relaxed),
                        )
                        .into_bytes(),
                    )
                }
                Ok(_) => crate::http::Response::error(404, "try GET /healthz"),
                Err(e) => crate::http::Response::error(400, e.to_string()),
            };
            let _ = crate::http::write_response(&mut stream, &resp);
        }
    });
    Ok(local)
}

/// The wait before idle poll number `streak` (0-based count of
/// consecutive empty leases): the coordinator's suggested `retry_ms` as
/// the base of the executor's [`RetryPolicy`] schedule — exponential
/// growth capped at 10 s, with deterministic jitter salted by the
/// worker's name so an idle fleet fans out instead of polling in
/// lockstep.
pub fn idle_backoff(worker: &str, retry_ms: u64, streak: u32) -> Duration {
    let policy = RetryPolicy {
        max_retries: 0, // unused by `delay`
        base_delay: Duration::from_millis(retry_ms.clamp(1, 10_000)),
        max_delay: Duration::from_secs(10),
    };
    let salt = worker.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    policy.delay(salt, streak.min(16))
}

/// What one finished [`run_cell`] reports back.
#[derive(Debug)]
pub struct CellRun {
    /// The completed run, on success.
    pub run: Option<SimRun>,
    /// The stringified failure, otherwise.
    pub failure: Option<String>,
    /// Whether that failure is worth a retry.
    pub transient: bool,
    /// Wall-clock nanoseconds the cell took.
    pub elapsed_ns: u64,
}

/// Runs one leased cell to completion: compiles (or reuses) the preset
/// trace, arms the deadline at 80% of the lease window, contains panics,
/// and classifies any failure as transient or permanent.
pub fn run_cell(cache: &TraceCache, task: &CellTask, threads: usize) -> CellRun {
    let started = Instant::now();
    // Inner error: (stringified failure, transient?).
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Custom rows exist only for in-process custom policies; the wire
        // ships names, not closures, so a worker cannot build one.
        if let Row::Custom(name) = &task.row {
            return Err((format!("custom row `{name}` is not distributable"), false));
        }
        let trace = cache.preset(task.program);
        match &task.row {
            Row::NoGc => Ok(SimRun {
                report: no_gc_report(&trace),
                curve: MemoryCurve::new(),
            }),
            Row::Live => Ok(SimRun {
                report: live_report(&trace),
                curve: MemoryCurve::new(),
            }),
            Row::Policy(kind) => {
                let mut policy = kind.build(&task.policy);
                // Give up before the coordinator does: 80% of the lease
                // window, so a slow cell requeues via one clean transient
                // failure instead of a lease expiry racing a late result.
                let deadline = Duration::from_millis(task.lease_ms.saturating_mul(4) / 5);
                let cancel = Arc::new(AtomicBool::new(false));
                let _watchdog = DeadlineGuard::arm(deadline, Arc::clone(&cancel));
                Sim::new(task.sim)
                    .threads(threads.max(1))
                    .control(RunControl::new().with_cancel(&cancel))
                    .run_trace(&trace, policy.as_mut())
                    .map_err(|err| (err.to_string(), classify(&err)))
            }
            Row::Custom(_) => unreachable!("handled above"),
        }
    }));
    let elapsed_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    match outcome {
        Ok(Ok(run)) => CellRun {
            run: Some(run),
            failure: None,
            transient: false,
            elapsed_ns,
        },
        Ok(Err((failure, transient))) => CellRun {
            failure: Some(failure),
            transient,
            run: None,
            elapsed_ns,
        },
        Err(panic) => CellRun {
            failure: Some(format!("panicked: {}", panic_message(&panic))),
            transient: false,
            run: None,
            elapsed_ns,
        },
    }
}

/// Transient simulation failures, in the executor's taxonomy: a deadline
/// cancellation or shard I/O. Everything else is deterministic and would
/// fail identically on retry.
fn classify(err: &SimError) -> bool {
    matches!(err, SimError::Cancelled { .. }) || FailureCause::Sim(err.clone()).is_transient()
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The worker-side deadline: same shape as the executor's watchdog — an
/// armed timer thread that stores into the engine's cancel flag, disarmed
/// (hung up and joined) on drop so no timer outlives its cell.
struct DeadlineGuard {
    disarm: Option<mpsc::Sender<()>>,
    thread: Option<thread::JoinHandle<()>>,
}

impl DeadlineGuard {
    fn arm(limit: Duration, cancel: Arc<AtomicBool>) -> DeadlineGuard {
        let (disarm, expired) = mpsc::channel::<()>();
        let thread = thread::spawn(move || {
            if let Err(mpsc::RecvTimeoutError::Timeout) = expired.recv_timeout(limit) {
                cancel.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        });
        DeadlineGuard {
            disarm: Some(disarm),
            thread: Some(thread),
        }
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        drop(self.disarm.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// How one worker loop ended.
#[derive(Debug)]
pub enum WorkerExit {
    /// The coordinator reported all sweeps finished
    /// (`exit_when_done`).
    Drained,
    /// The coordinator became unreachable past the client's retry budget
    /// (and, with a [`WorkerConfig::reconnect`] window, past that too).
    Lost(SvcError),
}

/// Retries `call` across a coordinator outage, bounded by the config's
/// reconnect window of *continuous* downtime. Without a window this is
/// just `call()` — the client's own retry budget is the only tolerance.
/// Permanent protocol errors (`4xx`) return immediately either way: a
/// restarted coordinator would refuse the identical request identically.
fn call_with_reconnect<T>(
    config: &WorkerConfig,
    what: &str,
    mut call: impl FnMut() -> Result<T, SvcError>,
) -> Result<T, SvcError> {
    let Some(window) = config.reconnect else {
        return call();
    };
    let mut outage: Option<Instant> = None;
    let mut streak: u32 = 0;
    loop {
        match call() {
            Ok(v) => return Ok(v),
            Err(SvcError::Protocol { status, message }) if status < 500 => {
                return Err(SvcError::Protocol { status, message });
            }
            Err(e) => {
                let started = *outage.get_or_insert_with(Instant::now);
                if started.elapsed() >= window {
                    return Err(e);
                }
                if streak == 0 {
                    eprintln!(
                        "worker {}: {what} unreachable ({e}); reconnecting for up to {window:?}",
                        config.name
                    );
                    if let Some(h) = &config.health {
                        h.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Same jittered-exponential schedule as idle polling, so
                // a whole fleet reconnecting after a restart fans out.
                thread::sleep(idle_backoff(&config.name, 200, streak));
                streak = streak.saturating_add(1);
            }
        }
    }
}

/// The worker main loop: lease, run, complete, repeat.
///
/// Cells whose completion is refused ([`CompleteStatus::LeaseLost`]) are
/// simply dropped — the coordinator has re-leased them — and duplicates
/// are already recorded, so both just continue the loop. A completion
/// the coordinator never acknowledged is re-sent (under the reconnect
/// window) until it answers: exactly-once recording is the
/// coordinator's journal dedupe + lease fencing, not worker restraint.
pub fn run_worker(client: &mut Client, config: &WorkerConfig) -> WorkerExit {
    let cache = TraceCache::new();
    let mut idle_streak: u32 = 0;
    loop {
        if let Some(h) = &config.health {
            h.busy.store(false, Ordering::Relaxed);
        }
        let reply = match call_with_reconnect(config, "lease", || client.lease(&config.name)) {
            Ok(reply) => reply,
            Err(e) => return WorkerExit::Lost(e),
        };
        let Some(task) = reply.task else {
            if reply.drained && config.exit_when_done {
                return WorkerExit::Drained;
            }
            // Idle: back off jittered-exponentially instead of hammering
            // the coordinator at a fixed cadence.
            thread::sleep(idle_backoff(&config.name, reply.retry_ms, idle_streak));
            idle_streak = idle_streak.saturating_add(1);
            continue;
        };
        idle_streak = 0;
        if let Some(h) = &config.health {
            h.busy.store(true, Ordering::Relaxed);
        }
        if !config.cell_delay.is_zero() {
            thread::sleep(config.cell_delay);
        }
        let done = run_cell(&cache, &task, config.threads);
        if config.relay_events {
            if let Some(run) = &done.run {
                relay_scavenges(client, config, &task, run);
            }
        }
        let completion = CompleteRequest {
            sweep: task.sweep,
            cell: task.cell,
            lease: task.lease,
            worker: config.name.clone(),
            run: done.run,
            failure: done.failure,
            transient: done.transient,
            elapsed_ns: done.elapsed_ns,
        };
        match call_with_reconnect(config, "complete", || client.complete(&completion)) {
            // Recorded / Requeued / Duplicate / LeaseLost all mean the
            // coordinator owns the cell's fate now; just keep working.
            Ok(reply) => {
                if let Some(h) = &config.health {
                    let counter = if completion.failure.is_none() {
                        &h.cells_completed
                    } else {
                        &h.cells_failed
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                }
                if reply.status == CompleteStatus::LeaseLost {
                    eprintln!(
                        "worker {}: lease {} lost for sweep {} cell {} (result discarded)",
                        config.name, task.lease, task.sweep, task.cell
                    );
                }
            }
            // A coordinator restarted without its journal forgot the
            // sweep entirely (404). With reconnection on, that is a fact
            // to survive, not a reason to die: drop the orphaned result
            // and go back to leasing whatever the new incarnation has.
            Err(SvcError::Protocol {
                status: 404,
                message,
            }) if config.reconnect.is_some() => {
                eprintln!(
                    "worker {}: completion for sweep {} cell {} refused ({message}); dropping",
                    config.name, task.sweep, task.cell
                );
            }
            Err(e) => return WorkerExit::Lost(e),
        }
    }
}

/// Relays the cell's per-scavenge telemetry, reconstructed from the
/// completed run's scavenge history. Reconstruction (rather than a live
/// sink) keeps attribution exact with several workers in one process:
/// the history *is* the run's, by construction. When the history
/// overflows one relay batch, the most recent scavenges win. Fields the
/// history does not record (`events`, `inverse_queries`, `tenured`)
/// relay as 0; scavenge sequence numbers are relative to the cell.
fn relay_scavenges(client: &mut Client, config: &WorkerConfig, task: &CellTask, run: &SimRun) {
    let history = &run.report.history;
    if history.is_empty() {
        return;
    }
    let skip = history.len().saturating_sub(MAX_RELAY_LINES);
    let lines: Vec<String> = history
        .iter()
        .enumerate()
        .skip(skip)
        .map(|(i, rec)| {
            dtb_obs::encode_json(&dtb_obs::Envelope {
                seq: (i + 1) as u64,
                scope: task.sweep,
                event: dtb_obs::Event::Scavenge {
                    collection: i as u64,
                    at: rec.at.as_u64(),
                    boundary: rec.boundary.as_u64(),
                    traced: rec.traced.as_u64(),
                    surviving: rec.surviving.as_u64(),
                    reclaimed: rec.reclaimed.as_u64(),
                    tenured: 0,
                    mem_before: rec.mem_before.as_u64(),
                    events: 0,
                    inverse_queries: 0,
                },
            })
        })
        .collect();
    let req = RelayRequest {
        sweep: task.sweep,
        cell: task.cell,
        worker: config.name.clone(),
        lines,
    };
    if let Err(e) = client.relay(&req) {
        eprintln!(
            "worker {}: event relay for sweep {} cell {} failed (run unaffected): {e}",
            config.name, task.sweep, task.cell
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_core::policy::{PolicyConfig, PolicyKind};
    use dtb_sim::engine::{SimBudget, SimConfig};
    use dtb_trace::programs::Program;

    fn task(row: Row) -> CellTask {
        CellTask {
            sweep: 1,
            cell: 0,
            lease: 1,
            lease_ms: 60_000,
            program: Program::Cfrac,
            row,
            policy: PolicyConfig::paper(),
            sim: SimConfig::paper(),
            attempt: 1,
        }
    }

    #[test]
    fn baselines_and_policies_run() {
        let cache = TraceCache::new();
        for row in [Row::NoGc, Row::Live, Row::Policy(PolicyKind::Full)] {
            let done = run_cell(&cache, &task(row.clone()), 1);
            assert!(done.run.is_some(), "{row}: {:?}", done.failure);
            assert!(!done.transient);
        }
    }

    #[test]
    fn budget_exhaustion_is_a_permanent_failure() {
        let cache = TraceCache::new();
        let mut t = task(Row::Policy(PolicyKind::Full));
        t.sim.budget = SimBudget::events(10);
        let done = run_cell(&cache, &t, 1);
        assert!(done.run.is_none());
        assert!(!done.transient, "budget exhaustion must not retry");
        assert!(
            done.failure.as_deref().unwrap_or("").contains("budget"),
            "{:?}",
            done.failure
        );
    }

    #[test]
    fn idle_backoff_schedule_grows_jittered_and_capped() {
        // Deterministic: same (worker, retry_ms, streak) → same delay.
        assert_eq!(idle_backoff("w1", 100, 3), idle_backoff("w1", 100, 3));
        // Jittered: different workers desynchronize at the same streak.
        assert_ne!(idle_backoff("w1", 100, 3), idle_backoff("w2", 100, 3));
        for streak in 0..20 {
            let d = idle_backoff("w1", 100, streak);
            // Every delay sits in the upper half of its exponential
            // window, capped at 10 s.
            let window =
                Duration::from_millis(100 * (1 << streak.min(16))).min(Duration::from_secs(10));
            assert!(d >= window / 2, "streak {streak}: {d:?} < {:?}", window / 2);
            assert!(d <= window, "streak {streak}: {d:?} > {window:?}");
        }
        // The envelope grows monotonically with the streak until the cap.
        assert!(idle_backoff("w1", 100, 8) > idle_backoff("w1", 100, 0));
        // Degenerate retry_ms still sleeps (no busy-poll).
        assert!(idle_backoff("w1", 0, 0) >= Duration::from_nanos(1));
    }

    #[test]
    fn reconnect_wrapper_rides_out_transient_failures() {
        use crate::http::WireError;
        let mut config = WorkerConfig::new("w-re");
        config.reconnect = Some(Duration::from_secs(30));
        config.health = Some(Arc::new(WorkerHealth::default()));
        let mut calls = 0u32;
        let out: Result<u32, SvcError> = call_with_reconnect(&config, "lease", || {
            calls += 1;
            if calls < 3 {
                Err(SvcError::Wire(WireError::Malformed("injected".into())))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, 3, "wrapper retries until the call succeeds");
        let health = config.health.as_ref().unwrap();
        assert_eq!(
            health.reconnects.load(Ordering::Relaxed),
            1,
            "one outage episode, not one count per retry"
        );

        // 4xx is permanent: exactly one call, immediate error.
        let mut calls = 0u32;
        let out: Result<u32, SvcError> = call_with_reconnect(&config, "complete", || {
            calls += 1;
            Err(SvcError::Protocol {
                status: 400,
                message: "bad".into(),
            })
        });
        assert!(matches!(out, Err(SvcError::Protocol { status: 400, .. })));
        assert_eq!(calls, 1);

        // An exhausted window surfaces the last transient error.
        config.reconnect = Some(Duration::ZERO);
        let out: Result<u32, SvcError> = call_with_reconnect(&config, "lease", || {
            Err(SvcError::Wire(WireError::Malformed("still down".into())))
        });
        assert!(matches!(out, Err(SvcError::Wire(_))));
    }

    #[test]
    fn healthz_serves_counters() {
        let health = Arc::new(WorkerHealth::default());
        health.cells_completed.store(3, Ordering::Relaxed);
        health.busy.store(true, Ordering::Relaxed);
        let addr = serve_healthz("127.0.0.1:0", "w-h", Arc::clone(&health)).unwrap();
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        crate::http::write_request(
            &mut stream,
            &crate::http::Request {
                method: "GET".into(),
                path: "/healthz".into(),
                body: Vec::new(),
            },
        )
        .unwrap();
        let resp = crate::http::read_response(&mut stream).unwrap();
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"worker\":\"w-h\""), "{body}");
        assert!(body.contains("\"busy\":true"), "{body}");
        assert!(body.contains("\"cells_completed\":3"), "{body}");
        // Unknown paths get a 404, and the listener survives to serve
        // the next probe.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        crate::http::write_request(
            &mut stream,
            &crate::http::Request {
                method: "GET".into(),
                path: "/nope".into(),
                body: Vec::new(),
            },
        )
        .unwrap();
        assert_eq!(crate::http::read_response(&mut stream).unwrap().status, 404);
    }

    #[test]
    fn deadline_cancellation_is_transient() {
        let cache = TraceCache::new();
        let mut t = task(Row::Policy(PolicyKind::Full));
        t.lease_ms = 1; // 80% of 1 ms: the watchdog fires immediately
        let done = run_cell(&cache, &t, 1);
        assert!(done.run.is_none(), "expected cancellation");
        assert!(done.transient, "{:?}", done.failure);
    }
}
