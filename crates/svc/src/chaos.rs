//! Deterministic whole-system fault scripting.
//!
//! PR 2 gave single components injectable faults (`dtb_sim::fault`) and
//! PR 7 gave the wire them (`NetFault`); this module composes them into
//! a seeded, replayable **plan** for the whole service: kill the
//! coordinator at scripted progress points, fail journal/results
//! appends, partition the wire, skew the lease clock — and every run is
//! reproducible from its `u64` seed alone. The `dtb-chaos` binary
//! executes a plan against real processes; the in-process drill in
//! `tests/chaos.rs` executes one against library handles.
//!
//! Two verification helpers live here too, because "the drill passed"
//! means something precise: [`stream_continuity`] proves a resumed
//! event stream has no gaps or duplicates within any epoch, and
//! [`journal_exactly_once`] proves no cell was ever finalized twice.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

// ───────────────────────── fault fuses ─────────────────────────

/// A chargeable fault trigger, shared between the planner and the code
/// path it sabotages. Mirrors `fault::FlakyStore`'s fuse model: each
/// [`trip`](FaultFuse::trip) consumes one charge and reports `true`
/// (inject the fault) until the charges run out; an unarmed fuse never
/// trips. Cloning shares the charge pool.
#[derive(Clone, Debug, Default)]
pub struct FaultFuse(Option<Arc<AtomicU32>>);

impl FaultFuse {
    /// A fuse that never trips.
    pub fn none() -> FaultFuse {
        FaultFuse(None)
    }

    /// A fuse with `n` charges: the next `n` trips inject.
    pub fn charges(n: u32) -> FaultFuse {
        FaultFuse(Some(Arc::new(AtomicU32::new(n))))
    }

    /// Consumes one charge. `true` = inject the fault now.
    pub fn trip(&self) -> bool {
        match &self.0 {
            None => false,
            Some(left) => left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok(),
        }
    }

    /// Charges left (0 for an unarmed fuse).
    pub fn remaining(&self) -> u32 {
        self.0.as_ref().map_or(0, |n| n.load(Ordering::Relaxed))
    }
}

/// Disk-write fault injection for the coordinator's durable stores.
/// Armed fuses make the next appends fail: a tripped `journal` fuse
/// fails the finalization write (the cell must stay open); a tripped
/// `results` fuse tears the results append mid-record (replay must drop
/// it).
#[derive(Clone, Debug, Default)]
pub struct DiskFaults {
    /// Sabotages `SweepState::finalize`'s journal append.
    pub journal: FaultFuse,
    /// Sabotages `ResultsStore::append` (torn record, no fsync).
    pub results: FaultFuse,
}

// ───────────────────────── seeded plans ─────────────────────────

/// SplitMix64: the standard 64-bit mixer. Tiny, fully deterministic,
/// and good enough to spread one seed over many plan dimensions.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator over `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// One seeded chaos script. Every field is derived from the seed by
/// [`ChaosPlan::from_seed`], so a failing run is replayed by its seed
/// alone; trigger points are phrased in *finalized-cell counts* (not
/// wall clock), which makes them deterministic across machines.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// The seed this plan was derived from.
    pub seed: u64,
    /// Finalized-cell counts at which to SIGKILL + restart the
    /// coordinator (ascending, within `0..total_cells`).
    pub coordinator_kills: Vec<u64>,
    /// `(worker_index, finalized_count)`: SIGKILL this worker when the
    /// matrix reaches the count, then start a replacement.
    pub worker_kill: Option<(usize, u64)>,
    /// Per-worker wire fault plans (partitions/garbles/replays).
    pub net: Vec<crate::fault::FaultPlan>,
    /// Journal-append fault charges armed on the restarted coordinator.
    pub journal_faults: u32,
    /// Results-append fault charges armed on the restarted coordinator.
    pub results_faults: u32,
    /// Lease timeout multiplier `(num, den)` applied on restart — the
    /// "clock-skewed lease expiry" leg: the restarted coordinator
    /// measures lease windows on a faster or slower clock.
    pub lease_skew: (u64, u64),
}

impl ChaosPlan {
    /// Derives the full script for a drill over `total_cells` cells and
    /// `workers` workers from one seed.
    pub fn from_seed(seed: u64, total_cells: u64, workers: usize) -> ChaosPlan {
        let mut rng = SplitMix64::new(seed);
        let span = total_cells.max(2);
        // 1–2 coordinator kills, at distinct mid-matrix points.
        let mut kills = vec![rng.range(1, span / 2)];
        if rng.next_u64().is_multiple_of(2) {
            let later = rng.range(span / 2, span - 1);
            if later > kills[0] {
                kills.push(later);
            }
        }
        let worker_kill = if workers > 0 {
            Some(((rng.next_u64() as usize) % workers, rng.range(1, span - 1)))
        } else {
            None
        };
        let net = (0..workers)
            .map(|_| crate::fault::FaultPlan {
                drop_every: Some(rng.range(5, 11)),
                delay_every: None,
                garble_every: Some(rng.range(7, 13)),
                replay_every: Some(rng.range(9, 17)),
            })
            .collect();
        ChaosPlan {
            seed,
            coordinator_kills: kills,
            worker_kill,
            net,
            journal_faults: rng.range(1, 2) as u32,
            results_faults: rng.range(1, 2) as u32,
            lease_skew: if rng.next_u64().is_multiple_of(2) {
                (1, 2)
            } else {
                (3, 2)
            },
        }
    }
}

// ───────────────────────── verification ─────────────────────────

/// Checks a followed event stream for continuity: within each epoch,
/// sequence numbers must be strictly increasing and contiguous from the
/// first one seen (a follower may legitimately join an epoch late, but
/// may never skip or repeat after that), and epochs themselves must be
/// non-decreasing. `Err` describes the first violation.
///
/// # Errors
///
/// A human-readable description of the first gap, duplicate, or epoch
/// regression.
pub fn stream_continuity(cursors: &[(u64, u64)]) -> Result<(), String> {
    let mut last: Option<(u64, u64)> = None;
    for &(epoch, seq) in cursors {
        match last {
            None => {}
            Some((le, ls)) => {
                if epoch < le {
                    return Err(format!("epoch regressed: {le} -> {epoch} (seq {seq})"));
                }
                if epoch == le && seq != ls + 1 {
                    return Err(format!(
                        "epoch {epoch}: seq {ls} followed by {seq} (expected {})",
                        ls + 1
                    ));
                }
            }
        }
        last = Some((epoch, seq));
    }
    Ok(())
}

/// Checks a set of journal directories for the exactly-once property:
/// within each sweep journal, no `(column, row)` cell may be finalized
/// twice. `keys` is the flattened list of finalized cell keys of one
/// journal.
///
/// # Errors
///
/// Names the first duplicated cell.
pub fn journal_exactly_once(keys: &[(String, String)]) -> Result<(), String> {
    let mut seen = std::collections::HashSet::new();
    for (column, row) in keys {
        if !seen.insert((column.as_str(), row.as_str())) {
            return Err(format!("cell {column}/{row} finalized more than once"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuse_charges_are_consumed_exactly() {
        let fuse = FaultFuse::charges(2);
        assert!(fuse.trip());
        assert!(fuse.trip());
        assert!(!fuse.trip(), "third trip finds the fuse spent");
        assert_eq!(fuse.remaining(), 0);
        assert!(!FaultFuse::none().trip());
        // Clones share the pool.
        let a = FaultFuse::charges(1);
        let b = a.clone();
        assert!(a.trip());
        assert!(!b.trip());
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let a = ChaosPlan::from_seed(42, 8, 2);
        let b = ChaosPlan::from_seed(42, 8, 2);
        assert_eq!(a.coordinator_kills, b.coordinator_kills);
        assert_eq!(a.worker_kill, b.worker_kill);
        assert_eq!(a.lease_skew, b.lease_skew);
        assert_eq!(a.net.len(), 2);
        let c = ChaosPlan::from_seed(43, 8, 2);
        assert!(
            a.coordinator_kills != c.coordinator_kills
                || a.worker_kill != c.worker_kill
                || a.lease_skew != c.lease_skew,
            "different seeds vary the plan"
        );
        // Kill points stay inside the matrix.
        for plan in [&a, &c] {
            for k in &plan.coordinator_kills {
                assert!(*k >= 1 && *k < 8);
            }
        }
    }

    #[test]
    fn continuity_accepts_resumed_epochs_and_rejects_gaps() {
        // A follower that rode out a restart: epoch 1 then epoch 2.
        assert!(stream_continuity(&[(1, 1), (1, 2), (1, 3), (2, 1), (2, 2)]).is_ok());
        // Late join inside an epoch is fine...
        assert!(stream_continuity(&[(2, 5), (2, 6)]).is_ok());
        // ...but a gap after joining is not.
        assert!(stream_continuity(&[(1, 1), (1, 3)]).is_err());
        // Duplicates are not.
        assert!(stream_continuity(&[(1, 1), (1, 1)]).is_err());
        // Epoch regression is not.
        assert!(stream_continuity(&[(2, 1), (1, 1)]).is_err());
    }

    #[test]
    fn exactly_once_flags_double_finalization() {
        let ok = vec![
            ("CFRAC".to_string(), "FULL".to_string()),
            ("CFRAC".to_string(), "NOGC".to_string()),
        ];
        assert!(journal_exactly_once(&ok).is_ok());
        let dup = vec![
            ("CFRAC".to_string(), "FULL".to_string()),
            ("CFRAC".to_string(), "FULL".to_string()),
        ];
        assert!(journal_exactly_once(&dup).is_err());
    }
}
