//! The coordinator: shards sweeps into cells, leases them to workers,
//! and records completions with exactly-once semantics.
//!
//! # The lease/complete state machine
//!
//! Every cell moves through:
//!
//! ```text
//! Pending ──lease──▶ Leased ──complete(ok | permanent | retries spent)──▶ Final
//!    ▲                 │
//!    └──lease expiry───┘        (also: complete(transient, retries left))
//! ```
//!
//! `Final` is **Done** (a journaled [`SimRun`]) or **Quarantined** (a
//! journaled failure). The transition into `Final` happens *after* the
//! corresponding journal line is fsync'd — a cell is only done once its
//! completion is durable — and happens at most once, so the journal
//! carries **exactly one completion line per cell** no matter how many
//! workers crash, how many stale leases replay, or how many duplicate
//! completions arrive:
//!
//! * a completion for an already-final cell is answered
//!   [`Duplicate`](CompleteStatus::Duplicate) and not re-journaled;
//! * a completion whose lease token is not the cell's *current* lease
//!   (expired and re-leased, or plain garbage) is answered
//!   [`LeaseLost`](CompleteStatus::LeaseLost) and discarded;
//! * a transient failure with retries left goes back to `Pending`
//!   ([`Requeued`](CompleteStatus::Requeued)) and is journaled only when
//!   its retries run out.
//!
//! Lease timeouts reuse the executor's per-cell wall-clock deadline
//! semantics (`Evaluation::cell_deadline`): a worker that holds a cell
//! past [`CoordinatorConfig::lease_timeout`] is presumed dead and the
//! cell is re-leased; the straggler's late completion, if it ever
//! arrives, is a stale lease and ignored. Retries reuse the executor's
//! [`RetryPolicy`] shape: only transient failures are retried, at most
//! `retry.max_retries` times beyond the first attempt, and the exhausted
//! or permanent cell is quarantined with its attempt count.
//!
//! # Fairness and quotas
//!
//! Leases rotate **round-robin across tenants**: among tenants with
//! pending work, the least-recently-served tenant goes first, so a
//! tenant that submits a thousand sweeps cannot starve one that submits
//! one. Per-tenant [`SimBudget`] quotas cap every leased cell's
//! events/scavenges — the coordinator merges the quota into the cell's
//! `SimConfig` before it ships, so an over-budget cell fails with the
//! engine's own typed `BudgetExceeded`, exactly as it would in-process.

use crate::chaos::{DiskFaults, FaultFuse};
use crate::events::{json_string, EventLog, HEARTBEAT};
use crate::http::{
    read_request, write_chunk, write_chunk_end, write_chunked_head, write_response, Request,
    Response, WireError,
};
use crate::proto::{
    decode, encode, CellResult, CellTask, CompleteReply, CompleteRequest, CompleteStatus,
    LeaseReply, LeaseRequest, RelayReply, RelayRequest, ResultsReply, StatusReply, SubmitReply,
    SubmitRequest, SweepReply, SweepSpec, SweepStatus, TenantStatus, MAX_RELAY_LINES,
    PROTO_VERSION,
};
use crate::results::ResultsStore;
use crate::sweeplog::SweepLog;
use dtb_core::policy::Row;
use dtb_obs::{Envelope, Event};
use dtb_sim::engine::{SimBudget, SimRun};
use dtb_sim::exec::RetryPolicy;
use dtb_sim::journal::{read_journal, JournalCell, JournalHeader, JournalWriter, JOURNAL_VERSION};
use dtb_sim::CkpError;
use dtb_trace::programs::Program;
use std::collections::{BTreeMap, HashMap};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Coordinator tuning knobs.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// How long a lease is valid. Past this, the worker is presumed dead
    /// and the cell is re-leased — the service-side reuse of the
    /// executor's per-cell wall-clock deadline.
    pub lease_timeout: Duration,
    /// How transient failures (including lease expiry) are retried:
    /// `max_retries` bounds re-leases beyond the first attempt. Backoff
    /// delays are worker-side; the coordinator only counts attempts.
    pub retry: RetryPolicy,
    /// Directory for durable per-sweep journals (`<dir>/sweep-<id>/`);
    /// `None` keeps completions in memory only (tests).
    pub journal_dir: Option<PathBuf>,
    /// What idle workers are told to wait before re-polling.
    pub idle_retry: Duration,
    /// Per-tenant cell quotas, merged into every leased cell's budget.
    /// Tenants not listed get [`SimBudget::UNLIMITED`].
    pub quotas: HashMap<String, SimBudget>,
    /// File behind the queryable results store (`GET /results`); `None`
    /// serves results from memory only. An unopenable path degrades to
    /// memory with a note on stderr — it never stops the coordinator.
    pub results_path: Option<PathBuf>,
    /// Chaos-harness disk fault fuses over the durable stores. Unarmed
    /// (the default) in production.
    pub disk_faults: DiskFaults,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            lease_timeout: Duration::from_secs(60),
            retry: RetryPolicy::retries(2),
            journal_dir: None,
            idle_retry: Duration::from_millis(100),
            quotas: HashMap::new(),
            results_path: None,
            disk_faults: DiskFaults::default(),
        }
    }
}

/// Where one cell stands in the lease/complete state machine.
#[derive(Debug)]
enum CellStatus {
    /// Waiting for a worker.
    Pending,
    /// Leased out; `lease` must be echoed by the completion.
    Leased { lease: u64, expires: Instant },
    /// Final: the run was journaled.
    Done { run: SimRun },
    /// Final: failed permanently (or out of retries); cause journaled.
    /// `transient` preserves the failure's class (see
    /// [`CellResult::transient`]).
    Quarantined { failure: String, transient: bool },
}

impl CellStatus {
    fn is_final(&self) -> bool {
        matches!(
            self,
            CellStatus::Done { .. } | CellStatus::Quarantined { .. }
        )
    }
}

#[derive(Debug)]
struct CellState {
    program: Program,
    row: Row,
    status: CellStatus,
    /// Leases granted so far.
    attempts: u32,
    /// Wall-clock nanoseconds of the finalizing attempt.
    elapsed_ns: u64,
}

struct SweepState {
    id: u64,
    spec: SweepSpec,
    cells: Vec<CellState>,
    journal: Option<JournalWriter>,
    /// Chaos fuse over journal appends (shared with the config's
    /// [`DiskFaults`]); unarmed outside drills.
    journal_fault: FaultFuse,
}

impl SweepState {
    fn finalized(&self) -> u64 {
        self.cells.iter().filter(|c| c.status.is_final()).count() as u64
    }

    fn is_done(&self) -> bool {
        self.cells.iter().all(|c| c.status.is_final())
    }

    /// Makes one cell final — journaling the outcome first, then flipping
    /// the in-memory state. This is the **only** place a cell becomes
    /// `Done`/`Quarantined` and the only place a cell journal line is
    /// written, which makes "exactly one completion per cell" a
    /// structural property rather than a convention.
    ///
    /// On a journal error the cell is left untouched (still leased or
    /// pending): durability gates finality, never the other way round.
    fn finalize(
        &mut self,
        index: usize,
        run: Option<SimRun>,
        failure: Option<String>,
        transient: bool,
        elapsed_ns: u64,
    ) -> Result<(), CkpError> {
        let cell = &mut self.cells[index];
        debug_assert!(!cell.status.is_final(), "finalize called twice on a cell");
        if self.journal_fault.trip() {
            // Injected disk fault: surfaces exactly like a real failed
            // journal append — before anything hit the file, so there is
            // no torn line and the cell stays open.
            return Err(CkpError::Io {
                path: PathBuf::from(format!("sweep-{}", self.id)),
                message: "injected journal write fault".to_string(),
            });
        }
        if let Some(journal) = &mut self.journal {
            journal.cell(&JournalCell {
                column: cell.program.label().to_string(),
                row: cell.row.to_string(),
                attempts: cell.attempts.max(1),
                elapsed_ns,
                run: run.clone(),
                failure: failure.clone(),
            })?;
        }
        cell.elapsed_ns = elapsed_ns;
        cell.status = match (run, failure) {
            (Some(run), _) => CellStatus::Done { run },
            (None, Some(failure)) => CellStatus::Quarantined { failure, transient },
            (None, None) => unreachable!("finalize needs a run or a failure"),
        };
        Ok(())
    }

    /// Quarantined cells in this sweep.
    fn failed(&self) -> u64 {
        self.cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Quarantined { .. }))
            .count() as u64
    }
}

/// One cell's servable final (or in-flight) state, as `GET /sweep` and
/// the results store both shape it.
fn cell_result(cell: &CellState) -> CellResult {
    CellResult {
        column: cell.program.label().to_string(),
        row: cell.row.to_string(),
        attempts: cell.attempts.max(1),
        elapsed_ns: cell.elapsed_ns,
        run: match &cell.status {
            CellStatus::Done { run } => Some(run.clone()),
            _ => None,
        },
        failure: match &cell.status {
            CellStatus::Quarantined { failure, .. } => Some(failure.clone()),
            _ => None,
        },
        transient: matches!(
            cell.status,
            CellStatus::Quarantined {
                transient: true,
                ..
            }
        ),
    }
}

/// Publishes one coordinator lifecycle event twice: onto the local obs
/// bus (in-process sinks) and into the `/events` log (followers). The
/// log's sequence number is authoritative for the wire framing; the
/// line leads with `{"epoch":E,"seq":S,` so followers can resume from
/// an unambiguous cursor across restarts.
fn publish_event(events: &EventLog, scope: u64, event: Event) {
    dtb_obs::emit(|| event.clone());
    events.publish_with(|epoch, seq| {
        let env = dtb_obs::encode_json(&Envelope { seq, scope, event });
        format!("{{\"epoch\":{epoch},{}", &env[1..])
    });
}

/// What [`State::recover`] rebuilt from durable storage.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// The incarnation number this coordinator now runs under.
    pub epoch: u64,
    /// Sweeps replayed from the sweep log.
    pub sweeps: u64,
    /// Cells already finalized by earlier incarnations.
    pub finalized: u64,
    /// Cells still open (re-leasable) after recovery.
    pub open: u64,
}

struct State {
    config: CoordinatorConfig,
    sweeps: Vec<SweepState>,
    next_sweep: u64,
    next_lease: u64,
    /// This incarnation's epoch (from the sweep log; 1 without one).
    /// Folded into every lease token so pre-crash leases cannot collide
    /// with post-restart ones.
    epoch: u64,
    /// The durable intake log; `None` without a `journal_dir`.
    sweep_log: Option<SweepLog>,
    /// What recovery rebuilt, for `/status` and the startup banner.
    recovery: RecoveryReport,
    /// Fairness clock: bumped on every lease; each tenant remembers the
    /// tick it was last served at.
    serve_tick: u64,
    last_served: HashMap<String, u64>,
    /// The `/events` log. Shared (`Arc`) so streaming connections tail
    /// it without holding the state lock.
    events: Arc<EventLog>,
    /// The `/results` store. Shared for the same reason.
    results: Arc<ResultsStore>,
}

impl State {
    /// A fresh or recovered state: with a `journal_dir` this replays the
    /// sweep log, every per-sweep finalization journal, and the results
    /// store; without one it is simply empty under epoch 1.
    ///
    /// # Errors
    ///
    /// Interior corruption of the sweep log or a journal (a missing file
    /// or torn tail is not corruption), or filesystem failures.
    fn recover(config: CoordinatorConfig) -> Result<State, CkpError> {
        let results = Arc::new(ResultsStore::open_or_memory(config.results_path.as_deref()));
        let (sweep_log, epoch, logged) = match &config.journal_dir {
            None => (None, 1, Vec::new()),
            Some(dir) => {
                let (log, replay) = SweepLog::open(dir)?;
                (Some(log), replay.epoch, replay.sweeps)
            }
        };
        let events = Arc::new(EventLog::with_epoch(crate::events::DEFAULT_CAPACITY, epoch));
        let mut sweeps = Vec::with_capacity(logged.len());
        let mut next_sweep = 1;
        for (id, spec) in logged {
            let dir = config.journal_dir.as_deref().expect("logged implies dir");
            sweeps.push(rebuild_sweep(
                id,
                spec,
                dir,
                &results,
                config.disk_faults.journal.clone(),
            )?);
            next_sweep = next_sweep.max(id + 1);
        }
        let recovery = RecoveryReport {
            epoch,
            sweeps: sweeps.len() as u64,
            finalized: sweeps.iter().map(SweepState::finalized).sum(),
            open: sweeps
                .iter()
                .map(|s| s.cells.len() as u64 - s.finalized())
                .sum(),
        };
        if epoch > 1 || recovery.sweeps > 0 {
            publish_event(
                &events,
                0,
                Event::CoordinatorRecovered {
                    epoch,
                    sweeps: recovery.sweeps,
                    finalized: recovery.finalized,
                    open: recovery.open,
                },
            );
        }
        Ok(State {
            config,
            sweeps,
            next_sweep,
            next_lease: 1,
            epoch,
            sweep_log,
            recovery,
            serve_tick: 0,
            last_served: HashMap::new(),
            events,
            results,
        })
    }

    #[cfg(test)]
    fn new(config: CoordinatorConfig) -> State {
        State::recover(config).expect("recoverable state")
    }

    /// The next lease token: the epoch in the high 16 bits over a plain
    /// counter. A lease granted before a crash can therefore never equal
    /// one granted after the restart — the stale completion answers
    /// `LeaseLost` instead of finalizing someone else's cell.
    fn mint_lease(&mut self) -> u64 {
        let lease = (self.epoch << 48) | self.next_lease;
        self.next_lease += 1;
        lease
    }

    /// Returns expired leases to the pending queue (or quarantines cells
    /// that spent their retries timing out). Called lazily from every
    /// request — there is no background reaper thread to race with.
    fn expire_leases(&mut self) {
        let now = Instant::now();
        let max_attempts = 1 + self.config.retry.max_retries;
        let lease_timeout = self.config.lease_timeout;
        let events = Arc::clone(&self.events);
        let results = Arc::clone(&self.results);
        for sweep in &mut self.sweeps {
            for i in 0..sweep.cells.len() {
                let cell = &mut sweep.cells[i];
                let CellStatus::Leased { lease, expires } = cell.status else {
                    continue;
                };
                if now < expires {
                    continue;
                }
                let tenant = sweep.spec.tenant.clone();
                if cell.attempts >= max_attempts {
                    let failure = format!(
                        "lease expired after {} attempt(s) (lease timeout {lease_timeout:?})",
                        cell.attempts
                    );
                    // A timeout is transient-class: retries ran out, the
                    // failure itself would not recur deterministically.
                    if let Err(e) = sweep.finalize(i, None, Some(failure), true, 0) {
                        // Journal unavailable: leave the cell leased (and
                        // expired); the next pass will retry the write.
                        eprintln!("coordinator: journal write failed, cell stays open: {e}");
                        continue;
                    }
                    results.append(sweep.id, i as u64, &cell_result(&sweep.cells[i]));
                    publish_event(
                        &events,
                        sweep.id,
                        Event::CellRecorded {
                            sweep: sweep.id,
                            cell: i as u64,
                            lease,
                            worker: String::new(),
                            tenant: tenant.clone(),
                            ok: false,
                        },
                    );
                    if sweep.is_done() {
                        publish_event(
                            &events,
                            sweep.id,
                            Event::SweepDrained {
                                sweep: sweep.id,
                                tenant,
                                failed: sweep.failed(),
                            },
                        );
                    }
                } else {
                    cell.status = CellStatus::Pending;
                    publish_event(
                        &events,
                        sweep.id,
                        Event::CellRequeued {
                            sweep: sweep.id,
                            cell: i as u64,
                            lease,
                            worker: String::new(),
                            tenant,
                            cause: format!("lease expired ({lease_timeout:?})"),
                        },
                    );
                }
            }
        }
    }

    /// Picks the next cell to lease, fair across tenants: among tenants
    /// with pending work, the least-recently-served wins; within a
    /// tenant, the oldest sweep's first pending cell.
    fn pick(&mut self) -> Option<(usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for (s, sweep) in self.sweeps.iter().enumerate() {
            let Some(c) = sweep
                .cells
                .iter()
                .position(|c| matches!(c.status, CellStatus::Pending))
            else {
                continue;
            };
            let served = *self.last_served.get(&sweep.spec.tenant).unwrap_or(&0);
            // Strictly-less keeps the earliest sweep for tied tenants.
            let better = match best {
                None => true,
                Some((b, _, _)) => served < b,
            };
            if better {
                best = Some((served, s, c));
            }
        }
        let (_, s, c) = best?;
        self.serve_tick += 1;
        let tick = self.serve_tick;
        self.last_served
            .insert(self.sweeps[s].spec.tenant.clone(), tick);
        Some((s, c))
    }

    fn drained(&self) -> bool {
        !self.sweeps.is_empty() && self.sweeps.iter().all(SweepState::is_done)
    }
}

/// A running coordinator: the server thread plus the shared state.
///
/// Dropping the handle does **not** stop the server; call
/// [`Coordinator::shutdown`] (or hit `POST /shutdown`).
pub struct Coordinator {
    state: Arc<Mutex<State>>,
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Coordinator {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: CoordinatorConfig,
    ) -> std::io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // With a journal_dir this *is* recovery: replay the sweep log,
        // the finalization journals, and the results store. A fresh dir
        // recovers to an empty state, so there is one startup path.
        let state = State::recover(config).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("recovery refused: {e}"),
            )
        })?;
        let state = Arc::new(Mutex::new(state));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            thread::spawn(move || serve(listener, state, stop))
        };
        Ok(Coordinator {
            state,
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// Binds `addr` and recovers state from `journal_dir` (sweep log +
    /// finalization journals) and `results_path` — the restart
    /// constructor named by the runbook. Equivalent to [`bind`] with
    /// those paths in the config.
    ///
    /// [`bind`]: Coordinator::bind
    ///
    /// # Errors
    ///
    /// Bind failures, and recovery refusal on interior corruption.
    pub fn recover(
        addr: impl ToSocketAddrs,
        journal_dir: PathBuf,
        results_path: Option<PathBuf>,
    ) -> std::io::Result<Coordinator> {
        Coordinator::bind(
            addr,
            CoordinatorConfig {
                journal_dir: Some(journal_dir),
                results_path,
                ..CoordinatorConfig::default()
            },
        )
    }

    /// What startup recovery rebuilt (all zeroes for a fresh state).
    pub fn recovery_report(&self) -> RecoveryReport {
        self.lock().recovery
    }

    /// The epoch (incarnation number) this coordinator runs under.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Submits a sweep in-process (equivalent to `POST /submit`).
    ///
    /// # Errors
    ///
    /// Propagates journal-creation failures.
    pub fn submit(&self, spec: SweepSpec) -> Result<u64, CkpError> {
        submit(&mut self.lock(), spec)
    }

    /// Answers one already-parsed request in-process — the same routing
    /// the TCP loop uses. Exposed so tests (and the wire proptests) can
    /// drive the full request surface without a socket.
    pub fn handle(&self, req: &Request) -> Response {
        handle_request(&mut self.lock(), req)
    }

    /// True when every submitted sweep is finished (and at least one was
    /// submitted).
    pub fn drained(&self) -> bool {
        self.lock().drained()
    }

    /// The live event log behind `GET /events` — in-process followers
    /// (and tests) can read it without a socket.
    pub fn events(&self) -> Arc<EventLog> {
        Arc::clone(&self.lock().events)
    }

    /// The results store behind `GET /results`.
    pub fn results(&self) -> Arc<ResultsStore> {
        Arc::clone(&self.lock().results)
    }

    /// Blocks until the server thread exits (a `POST /shutdown`
    /// arrived) — the serve loop of the `dtb-coordinator` binary.
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Stops the server thread and waits for it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A handler panic while holding the lock poisons it; the state
        // itself stays consistent (mutations are single-assignment per
        // request), so serving beats refusing.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

fn serve(listener: TcpListener, state: Arc<Mutex<State>>, stop: Arc<AtomicBool>) {
    // Connection handlers are short-lived (one request, one response,
    // close), so a thread per connection is plenty at this protocol's
    // request rate; handles are detached and panics are contained below.
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_connection(stream, &state, &stop);
            }));
        });
    }
    // Serve loop over: close the event log so `/events` followers see a
    // clean end-of-stream instead of a timeout.
    let events = {
        let state = state.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(&state.events)
    };
    events.close();
}

fn handle_connection(mut stream: TcpStream, state: &Arc<Mutex<State>>, stop: &Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let response = match read_request(&mut stream) {
        Ok(req) => {
            if req.method == "POST" && req.path == "/shutdown" {
                stop.store(true, Ordering::SeqCst);
                Response::ok(b"{}".to_vec())
            } else if req.method == "GET" && req.path.split('?').next() == Some("/events") {
                // The one streaming route: hold the connection open and
                // push chunks. Only the Arc is taken under the lock —
                // the stream tail runs lock-free against the log.
                let events = {
                    let state = state.lock().unwrap_or_else(|p| p.into_inner());
                    Arc::clone(&state.events)
                };
                let query = |key: &str| {
                    req.path.split_once('?').and_then(|(_, q)| {
                        q.split('&')
                            .find_map(|kv| kv.strip_prefix(key))
                            .and_then(|v| v.parse::<u64>().ok())
                    })
                };
                let mut from = query("from=").unwrap_or(1);
                // A cursor from another epoch (the follower outlived a
                // restart): its seq means nothing here, so replay the
                // whole retained window — the follower dedupes by the
                // epoch tag on each line. Absent epoch = current epoch.
                if let Some(epoch) = query("epoch=") {
                    if epoch != events.epoch() {
                        from = 1;
                    }
                }
                stream_events(stream, &events, stop.as_ref(), from);
                return;
            } else {
                let mut state = state.lock().unwrap_or_else(|p| p.into_inner());
                handle_request(&mut state, &req)
            }
        }
        Err(WireError::Io(_)) => return, // peer vanished; nothing to answer
        Err(e) => Response::error(400, format!("bad request: {e}")),
    };
    let _ = write_response(&mut stream, &response);
    if stop.load(Ordering::SeqCst) {
        // Wake the accept loop so the flag is noticed immediately.
        if let Ok(addr) = stream.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// Streams the event log to one follower over chunked transfer: event
/// batches as they arrive, a heartbeat chunk each idle second. Exits on
/// coordinator stop, log close, or the first write failure (the
/// follower died — its death never touches the run).
fn stream_events(mut stream: TcpStream, events: &EventLog, stop: &AtomicBool, from: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    if write_chunked_head(&mut stream, 200).is_err() {
        return;
    }
    let mut from = from;
    loop {
        if stop.load(Ordering::SeqCst) {
            let _ = write_chunk_end(&mut stream);
            return;
        }
        let batch = events.read_from(from, Duration::from_secs(1));
        from = batch.next;
        if !batch.lines.is_empty() {
            let mut payload = String::new();
            for line in &batch.lines {
                payload.push_str(line);
                payload.push('\n');
            }
            if write_chunk(&mut stream, payload.as_bytes()).is_err() {
                return;
            }
        } else if !batch.closed {
            let mut beat = String::from(HEARTBEAT);
            beat.push('\n');
            if write_chunk(&mut stream, beat.as_bytes()).is_err() {
                return;
            }
        }
        if batch.closed {
            let _ = write_chunk_end(&mut stream);
            return;
        }
    }
}

/// Routes one parsed request. Total: every (method, path, body) maps to
/// a response — malformed bodies to `400`, unknown routes to `404` —
/// never a panic (the wire proptests hold this door shut). `GET
/// /events` is the exception to one-shot request/response and is
/// intercepted in [`handle_connection`] before routing reaches here;
/// through this path it answers `400`.
fn handle_request(state: &mut State, req: &Request) -> Response {
    let route = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), route) {
        ("POST", "/submit") => match decode::<SubmitRequest>(&req.body) {
            Ok(msg) => match submit(state, msg.spec) {
                Ok(sweep) => {
                    let cells = state.sweeps.last().map_or(0, |s| s.cells.len() as u64);
                    Response::ok(encode(&SubmitReply { sweep, cells }))
                }
                Err(e) => Response::error(500, format!("journal: {e}")),
            },
            Err(e) => Response::error(400, e),
        },
        ("POST", "/lease") => match decode::<LeaseRequest>(&req.body) {
            Ok(msg) => lease(state, &msg),
            Err(e) => Response::error(400, e),
        },
        ("POST", "/complete") => match decode::<CompleteRequest>(&req.body) {
            Ok(msg) => complete(state, &msg),
            Err(e) => Response::error(400, e),
        },
        ("POST", "/relay") => match decode::<RelayRequest>(&req.body) {
            Ok(msg) => relay(state, &msg),
            Err(e) => Response::error(400, e),
        },
        ("GET", "/events") => Response::error(
            400,
            "`/events` is a streaming endpoint (chunked transfer); connect a follower over TCP",
        ),
        ("GET", "/results") => {
            state.expire_leases();
            let id = req.path.split_once('?').and_then(|(_, q)| {
                q.split('&')
                    .find_map(|kv| kv.strip_prefix("sweep="))
                    .and_then(|v| v.parse::<u64>().ok())
            });
            let Some(id) = id else {
                return Response::error(400, "missing or bad `sweep` query parameter");
            };
            let cells = state.results.sweep_cells(id);
            let total = state
                .sweeps
                .iter()
                .find(|s| s.id == id)
                .map_or(0, |s| s.cells.len() as u64);
            if total == 0 && cells.is_empty() {
                return Response::error(404, format!("no results for sweep {id}"));
            }
            let stored = cells.len() as u64;
            Response::ok(encode(&ResultsReply {
                sweep: id,
                stored,
                total,
                complete: total > 0 && stored == total,
                cells: cells.into_iter().map(|(_, r)| r).collect(),
            }))
        }
        ("GET", "/status") => {
            state.expire_leases();
            let mut queues: BTreeMap<String, TenantStatus> = BTreeMap::new();
            let sweeps: Vec<SweepStatus> = state
                .sweeps
                .iter()
                .map(|s| {
                    let pending = s
                        .cells
                        .iter()
                        .filter(|c| matches!(c.status, CellStatus::Pending))
                        .count() as u64;
                    let leased = s
                        .cells
                        .iter()
                        .filter(|c| matches!(c.status, CellStatus::Leased { .. }))
                        .count() as u64;
                    let tenant =
                        queues
                            .entry(s.spec.tenant.clone())
                            .or_insert_with(|| TenantStatus {
                                tenant: s.spec.tenant.clone(),
                                sweeps: 0,
                                pending: 0,
                                leased: 0,
                            });
                    tenant.sweeps += 1;
                    tenant.pending += pending;
                    tenant.leased += leased;
                    SweepStatus {
                        sweep: s.id,
                        tenant: s.spec.tenant.clone(),
                        finalized: s.finalized(),
                        pending,
                        leased,
                        quarantined: s
                            .cells
                            .iter()
                            .filter(|c| matches!(c.status, CellStatus::Quarantined { .. }))
                            .count() as u64,
                        total: s.cells.len() as u64,
                    }
                })
                .collect();
            Response::ok(encode(&StatusReply {
                proto: PROTO_VERSION,
                epoch: state.epoch,
                recovered_sweeps: state.recovery.sweeps,
                recovered_finalized: state.recovery.finalized,
                sweeps,
                tenants: queues.into_values().collect(),
            }))
        }
        ("GET", "/sweep") => {
            state.expire_leases();
            let id = req.path.split_once('?').and_then(|(_, q)| {
                q.split('&')
                    .find_map(|kv| kv.strip_prefix("id="))
                    .and_then(|v| v.parse::<u64>().ok())
            });
            let Some(id) = id else {
                return Response::error(400, "missing or bad `id` query parameter");
            };
            let Some(sweep) = state.sweeps.iter().find(|s| s.id == id) else {
                return Response::error(404, format!("no sweep {id}"));
            };
            let done = sweep.is_done();
            let cells = if done {
                sweep.cells.iter().map(cell_result).collect()
            } else {
                Vec::new()
            };
            Response::ok(encode(&SweepReply {
                sweep: sweep.id,
                spec: sweep.spec.clone(),
                finalized: sweep.finalized(),
                total: sweep.cells.len() as u64,
                done,
                cells,
            }))
        }
        _ => Response::error(404, format!("no route {} {}", req.method, req.path)),
    }
}

/// The journal header a sweep's spec determines — shared between fresh
/// submits and recovery re-creation of a journal that never hit disk.
fn journal_header(spec: &SweepSpec, rows: &[Row]) -> JournalHeader {
    JournalHeader {
        version: JOURNAL_VERSION,
        columns: spec
            .programs
            .iter()
            .map(|p| p.label().to_string())
            .collect(),
        rows: rows.iter().map(|r| r.to_string()).collect(),
        policy: spec.policy,
        sim: spec.sim,
    }
}

/// The program-major cell grid a spec unfolds to (the same order
/// `submit` builds, so recovered cell indices line up with the results
/// store and with clients that cached a sweep's shape).
fn build_cells(spec: &SweepSpec, rows: &[Row]) -> Vec<CellState> {
    let mut cells = Vec::with_capacity(spec.programs.len() * rows.len());
    for program in &spec.programs {
        for row in rows {
            cells.push(CellState {
                program: *program,
                row: row.clone(),
                status: CellStatus::Pending,
                attempts: 0,
                elapsed_ns: 0,
            });
        }
    }
    cells
}

/// Rebuilds one sweep's in-memory state from its durable record: cells
/// from the logged spec, finality from the journal (each journaled
/// completion re-marks its cell `Done`/`Quarantined` — exactly-once
/// survives the restart because `finalize` still refuses final cells),
/// failure *class* from the results store (the journal does not carry
/// `transient`). A missing journal is re-created fresh — the sweep was
/// acked before its journal hit disk — but a corrupt one is refused.
fn rebuild_sweep(
    id: u64,
    spec: SweepSpec,
    journal_dir: &Path,
    results: &ResultsStore,
    journal_fault: FaultFuse,
) -> Result<SweepState, CkpError> {
    let rows = spec.rows();
    let mut cells = build_cells(&spec, &rows);
    let dir = journal_dir.join(format!("sweep-{id}"));
    let journal = match read_journal(&dir) {
        Ok(journal) => {
            for jc in &journal.cells {
                let Some(index) = cells.iter().position(|c| {
                    !c.status.is_final()
                        && c.program.label() == jc.column
                        && c.row.to_string() == jc.row
                }) else {
                    // A journal line naming no (or only already-final)
                    // cells: tolerated — recovery never panics on data
                    // that passed its checksums but fails to line up.
                    eprintln!(
                        "coordinator: sweep {id} journal names unknown cell {}/{}; ignored",
                        jc.column, jc.row
                    );
                    continue;
                };
                let cell = &mut cells[index];
                cell.attempts = jc.attempts;
                cell.elapsed_ns = jc.elapsed_ns;
                cell.status = match (&jc.run, &jc.failure) {
                    (Some(run), _) => CellStatus::Done { run: run.clone() },
                    (None, Some(failure)) => CellStatus::Quarantined {
                        failure: failure.clone(),
                        transient: results
                            .get(id, index as u64)
                            .map(|r| r.transient)
                            .unwrap_or(false),
                    },
                    (None, None) => continue, // decodes but carries nothing
                };
            }
            JournalWriter::resume(&dir, &journal)?
        }
        // Missing (the crash landed between the sweep-log ack and the
        // journal's first write): start it fresh, all cells open.
        Err(CkpError::Io { .. }) => JournalWriter::create(&dir, &journal_header(&spec, &rows))?,
        // Interior corruption: refuse to serve from a ledger we cannot
        // trust, mirroring `Evaluation::resume`.
        Err(e) => return Err(e),
    };
    let sweep = SweepState {
        id,
        spec,
        cells,
        journal: Some(journal),
        journal_fault,
    };
    // Backfill the results store from the journal (idempotent): a crash
    // between the journal fsync and the results append loses only the
    // serving-cache copy, which the journal is authoritative for.
    for (index, cell) in sweep.cells.iter().enumerate() {
        if cell.status.is_final() {
            results.append(id, index as u64, &cell_result(cell));
        }
    }
    Ok(sweep)
}

fn submit(state: &mut State, spec: SweepSpec) -> Result<u64, CkpError> {
    let id = state.next_sweep;
    let rows = spec.rows();
    let journal = match &state.config.journal_dir {
        None => None,
        Some(dir) => Some(JournalWriter::create(
            dir.join(format!("sweep-{id}")),
            &journal_header(&spec, &rows),
        )?),
    };
    // Durable intake: the sweep goes into the fsync'd sweep log *before*
    // the submit is acked. On failure the id is not consumed and the
    // freshly-created journal dir is a harmless orphan (recovery ignores
    // journals the sweep log does not name).
    if let Some(log) = &mut state.sweep_log {
        log.sweep(id, &spec)?;
    }
    let cells = build_cells(&spec, &rows);
    state.next_sweep += 1;
    let tenant = spec.tenant.clone();
    let total = cells.len() as u64;
    state.sweeps.push(SweepState {
        id,
        spec,
        cells,
        journal,
        journal_fault: state.config.disk_faults.journal.clone(),
    });
    publish_event(
        &state.events,
        id,
        Event::SweepSubmitted {
            sweep: id,
            tenant,
            cells: total,
        },
    );
    Ok(id)
}

fn lease(state: &mut State, req: &LeaseRequest) -> Response {
    if req.proto != PROTO_VERSION {
        return Response::error(
            400,
            format!(
                "protocol version mismatch: worker speaks {}, coordinator {}",
                req.proto, PROTO_VERSION
            ),
        );
    }
    state.expire_leases();
    let idle_ms = state.config.idle_retry.as_millis().max(1) as u64;
    let Some((s, c)) = state.pick() else {
        return Response::ok(encode(&LeaseReply {
            task: None,
            retry_ms: idle_ms,
            drained: state.drained(),
        }));
    };
    let lease = state.mint_lease();
    let lease_timeout = state.config.lease_timeout;
    let quota = state
        .config
        .quotas
        .get(&state.sweeps[s].spec.tenant)
        .copied()
        .unwrap_or(SimBudget::UNLIMITED);
    let events = Arc::clone(&state.events);
    let sweep = &mut state.sweeps[s];
    let mut sim = sweep.spec.sim;
    sim.budget = merge_budget(sim.budget, quota);
    let cell = &mut sweep.cells[c];
    cell.attempts += 1;
    cell.status = CellStatus::Leased {
        lease,
        expires: Instant::now() + lease_timeout,
    };
    let (program, row, attempt) = (cell.program, cell.row.clone(), cell.attempts);
    publish_event(
        &events,
        sweep.id,
        Event::CellLeased {
            sweep: sweep.id,
            cell: c as u64,
            lease,
            worker: req.worker.clone(),
            tenant: sweep.spec.tenant.clone(),
            attempt,
        },
    );
    Response::ok(encode(&LeaseReply {
        task: Some(CellTask {
            sweep: sweep.id,
            cell: c as u64,
            lease,
            lease_ms: lease_timeout.as_millis().min(u64::MAX as u128) as u64,
            program,
            row,
            policy: sweep.spec.policy,
            sim,
            attempt,
        }),
        retry_ms: 0,
        drained: false,
    }))
}

/// The tighter of two budgets, cap by cap: a tenant quota can only
/// shrink what a sweep asked for, never widen it.
fn merge_budget(sweep: SimBudget, quota: SimBudget) -> SimBudget {
    fn tighter(a: Option<u64>, b: Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, None) | (None, x) => x,
        }
    }
    SimBudget {
        max_events: tighter(sweep.max_events, quota.max_events),
        max_scavenges: tighter(sweep.max_scavenges, quota.max_scavenges),
    }
}

/// Post-finalize bookkeeping shared by success and quarantine: append
/// the cell to the results store, publish `cell_recorded`, and publish
/// `sweep_drained` when this was the sweep's last open cell.
fn record_published(
    sweep: &SweepState,
    index: usize,
    lease: u64,
    worker: &str,
    ok: bool,
    results: &ResultsStore,
    events: &EventLog,
) {
    results.append(sweep.id, index as u64, &cell_result(&sweep.cells[index]));
    publish_event(
        events,
        sweep.id,
        Event::CellRecorded {
            sweep: sweep.id,
            cell: index as u64,
            lease,
            worker: worker.to_string(),
            tenant: sweep.spec.tenant.clone(),
            ok,
        },
    );
    if sweep.is_done() {
        publish_event(
            events,
            sweep.id,
            Event::SweepDrained {
                sweep: sweep.id,
                tenant: sweep.spec.tenant.clone(),
                failed: sweep.failed(),
            },
        );
    }
}

fn complete(state: &mut State, req: &CompleteRequest) -> Response {
    state.expire_leases();
    let max_attempts = 1 + state.config.retry.max_retries;
    let events = Arc::clone(&state.events);
    let results = Arc::clone(&state.results);
    let Some(sweep) = state.sweeps.iter_mut().find(|s| s.id == req.sweep) else {
        return Response::error(404, format!("no sweep {}", req.sweep));
    };
    let index = req.cell as usize;
    let Some(cell) = sweep.cells.get(index) else {
        return Response::error(404, format!("no cell {} in sweep {}", req.cell, req.sweep));
    };
    let reply = |status: CompleteStatus| Response::ok(encode(&CompleteReply { status }));

    if cell.status.is_final() {
        // Exactly-once: the first durable completion won; later copies —
        // worker retries after a lost ack, stale-lease replays — are
        // acknowledged but change nothing and journal nothing.
        return reply(CompleteStatus::Duplicate);
    }
    match cell.status {
        CellStatus::Leased { lease, .. } if lease == req.lease => {}
        // Pending (lease expired and requeued) or re-leased under a new
        // token: this worker lost the race. Discard its result — the
        // current leaseholder owns the cell.
        _ => return reply(CompleteStatus::LeaseLost),
    }

    let attempts = cell.attempts;
    match (&req.run, &req.failure) {
        (Some(run), _) => {
            match sweep.finalize(index, Some(run.clone()), None, false, req.elapsed_ns) {
                Ok(()) => {
                    record_published(
                        sweep,
                        index,
                        req.lease,
                        &req.worker,
                        true,
                        &results,
                        &events,
                    );
                    reply(CompleteStatus::Recorded)
                }
                // Journal write failed: the cell stays leased; the worker
                // sees a 500 (transient) and retries the completion.
                Err(e) => Response::error(500, format!("journal: {e}")),
            }
        }
        (None, Some(cause)) if req.transient && attempts < max_attempts => {
            sweep.cells[index].status = CellStatus::Pending;
            publish_event(
                &events,
                sweep.id,
                Event::CellRequeued {
                    sweep: sweep.id,
                    cell: index as u64,
                    lease: req.lease,
                    worker: req.worker.clone(),
                    tenant: sweep.spec.tenant.clone(),
                    cause: cause.clone(),
                },
            );
            reply(CompleteStatus::Requeued)
        }
        (None, Some(failure)) => {
            // The failure string is stored verbatim — a served failure
            // must render exactly as a local run's would. The attempt
            // count already travels separately as `CellResult::attempts`,
            // and the failure class as `CellResult::transient`.
            match sweep.finalize(
                index,
                None,
                Some(failure.clone()),
                req.transient,
                req.elapsed_ns,
            ) {
                Ok(()) => {
                    record_published(
                        sweep,
                        index,
                        req.lease,
                        &req.worker,
                        false,
                        &results,
                        &events,
                    );
                    reply(CompleteStatus::Recorded)
                }
                Err(e) => Response::error(500, format!("journal: {e}")),
            }
        }
        (None, None) => Response::error(400, "completion carries neither run nor failure"),
    }
}

/// `POST /relay`: splice worker-side event lines into `/events`. Each
/// accepted line is re-framed as a `worker_event` carrying the sweep's
/// tenant and the relaying worker; lines failing the single-line JSON
/// framing check are dropped (counted by the difference between sent
/// and `accepted`). Best-effort by design: relayed telemetry never
/// affects cell state.
fn relay(state: &mut State, req: &RelayRequest) -> Response {
    if req.lines.len() > MAX_RELAY_LINES {
        return Response::error(
            400,
            format!(
                "relay batch of {} exceeds {MAX_RELAY_LINES} lines",
                req.lines.len()
            ),
        );
    }
    let Some(sweep) = state.sweeps.iter().find(|s| s.id == req.sweep) else {
        return Response::error(404, format!("no sweep {}", req.sweep));
    };
    let tenant = json_string(&sweep.spec.tenant);
    let worker = json_string(&req.worker);
    let scope = req.sweep;
    let cell = req.cell;
    let mut accepted = 0u64;
    for line in &req.lines {
        if !crate::events::is_clean_event_line(line) {
            continue;
        }
        state.events.publish_with(|epoch, seq| {
            format!(
                "{{\"epoch\":{epoch},\"seq\":{seq},\"scope\":{scope},\"type\":\"worker_event\",\
                 \"tenant\":{tenant},\"worker\":{worker},\"cell\":{cell},\"event\":{line}}}"
            )
        });
        accepted += 1;
    }
    Response::ok(encode(&RelayReply { accepted }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_core::policy::{PolicyConfig, PolicyKind};
    use dtb_sim::engine::{simulate, SimConfig};
    use dtb_trace::TraceBuilder;

    fn spec() -> SweepSpec {
        SweepSpec {
            tenant: "t1".into(),
            programs: vec![Program::Cfrac],
            policies: vec![PolicyKind::Full, PolicyKind::Fixed1],
            baselines: false,
            policy: PolicyConfig::paper(),
            sim: SimConfig::paper(),
        }
    }

    fn lease_task(state: &mut State) -> Option<CellTask> {
        let resp = lease(
            state,
            &LeaseRequest {
                proto: PROTO_VERSION,
                worker: "w".into(),
            },
        );
        assert_eq!(resp.status, 200);
        decode::<LeaseReply>(&resp.body).unwrap().task
    }

    /// A real (but tiny) run to ship in completions: these tests exercise
    /// the ledger, not the engine.
    fn tiny_run() -> SimRun {
        let mut b = TraceBuilder::new("tiny");
        for _ in 0..4 {
            let id = b.alloc(1_000);
            b.free(id);
        }
        let trace = b.finish().compile().unwrap();
        simulate(
            &trace,
            &mut dtb_core::policy::Full::new(),
            &SimConfig::paper(),
        )
        .unwrap()
    }

    fn completion(task: &CellTask, run: Option<SimRun>) -> CompleteRequest {
        CompleteRequest {
            sweep: task.sweep,
            cell: task.cell,
            lease: task.lease,
            worker: "w".into(),
            run,
            failure: None,
            transient: false,
            elapsed_ns: 1,
        }
    }

    fn status_of(resp: &Response) -> CompleteStatus {
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        decode::<CompleteReply>(&resp.body).unwrap().status
    }

    #[test]
    fn fair_round_robin_across_tenants() {
        let mut st = State::new(CoordinatorConfig::default());
        let mut heavy = spec();
        heavy.tenant = "heavy".into();
        heavy.policies = PolicyKind::ALL.to_vec();
        submit(&mut st, heavy).unwrap();
        let mut light = spec();
        light.tenant = "light".into();
        submit(&mut st, light).unwrap();

        // Four consecutive leases alternate tenants even though "heavy"
        // has three times the pending cells.
        let tenants: Vec<u64> = (0..4)
            .map(|_| lease_task(&mut st).expect("work available").sweep)
            .collect();
        assert_eq!(tenants, [1, 2, 1, 2]);
    }

    #[test]
    fn tenant_quota_tightens_the_cell_budget() {
        let cfg = CoordinatorConfig {
            quotas: HashMap::from([("t1".to_string(), SimBudget::events(10))]),
            ..CoordinatorConfig::default()
        };
        let mut st = State::new(cfg);
        submit(&mut st, spec()).unwrap();
        let task = lease_task(&mut st).unwrap();
        assert_eq!(task.sim.budget.max_events, Some(10));
        // The sweep's own (unlimited) budget was only ever tightened.
        assert_eq!(task.sim.budget.max_scavenges, None);
    }

    #[test]
    fn duplicate_completion_is_idempotent() {
        let mut st = State::new(CoordinatorConfig::default());
        submit(&mut st, spec()).unwrap();
        let task = lease_task(&mut st).unwrap();
        let req = completion(&task, Some(tiny_run()));
        assert_eq!(
            status_of(&complete(&mut st, &req)),
            CompleteStatus::Recorded
        );
        // The same completion again — a worker retrying a lost ack, or a
        // stale-lease replay — is acknowledged but changes nothing.
        assert_eq!(
            status_of(&complete(&mut st, &req)),
            CompleteStatus::Duplicate
        );
    }

    #[test]
    fn expired_lease_requeues_and_stale_completion_is_refused() {
        let cfg = CoordinatorConfig {
            lease_timeout: Duration::from_millis(1),
            ..CoordinatorConfig::default()
        };
        let mut st = State::new(cfg);
        submit(&mut st, spec()).unwrap();
        let stale = lease_task(&mut st).unwrap();
        std::thread::sleep(Duration::from_millis(5));

        // The cell comes back out under a fresh lease and a bumped
        // attempt count…
        let fresh = lease_task(&mut st).unwrap();
        assert_eq!(fresh.cell, stale.cell);
        assert_ne!(fresh.lease, stale.lease);
        assert_eq!(fresh.attempt, 2);

        // …and the stale worker's late completion is discarded. (Pin the
        // fresh lease far into the future first so it cannot also expire
        // on a slow machine.)
        if let CellStatus::Leased { expires, .. } =
            &mut st.sweeps[0].cells[fresh.cell as usize].status
        {
            *expires = Instant::now() + Duration::from_secs(600);
        }
        let run = tiny_run();
        let resp = complete(&mut st, &completion(&stale, Some(run.clone())));
        assert_eq!(status_of(&resp), CompleteStatus::LeaseLost);

        // The current leaseholder's completion is the one that lands.
        let resp = complete(&mut st, &completion(&fresh, Some(run)));
        assert_eq!(status_of(&resp), CompleteStatus::Recorded);
    }

    #[test]
    fn transient_failures_requeue_then_quarantine_with_attempts() {
        let cfg = CoordinatorConfig {
            retry: RetryPolicy::retries(1), // 2 attempts total
            ..CoordinatorConfig::default()
        };
        let mut st = State::new(cfg);
        submit(&mut st, spec()).unwrap();

        let fail = |st: &mut State, task: &CellTask| {
            let mut req = completion(task, None);
            req.failure = Some("connection reset by peer".into());
            req.transient = true;
            status_of(&complete(st, &req))
        };

        let t1 = lease_task(&mut st).unwrap();
        assert_eq!(fail(&mut st, &t1), CompleteStatus::Requeued);
        // The requeued cell comes around again (lease until we find it:
        // cell order within the sweep is not part of the contract).
        let t2 = loop {
            let t = lease_task(&mut st).unwrap();
            if t.cell == t1.cell {
                break t;
            }
        };
        assert_eq!(t2.attempt, 2);
        assert_eq!(fail(&mut st, &t2), CompleteStatus::Recorded);
        let cell = &st.sweeps[0].cells[t1.cell as usize];
        let CellStatus::Quarantined { failure, transient } = &cell.status else {
            panic!("expected quarantine, got {:?}", cell.status);
        };
        // The cause is stored verbatim (no "(after N attempts)" suffix):
        // a served failure renders exactly as a local one; the attempt
        // count travels separately.
        assert_eq!(failure, "connection reset by peer");
        assert!(*transient, "retries-exhausted keeps its transient class");
        assert_eq!(cell.attempts, 2);

        // …and the results store preserves both verbatim.
        let stored = st.results.get(1, t1.cell).unwrap();
        assert_eq!(stored.failure.as_deref(), Some("connection reset by peer"));
        assert!(stored.transient);
        assert_eq!(stored.attempts, 2);
    }

    #[test]
    fn permanent_failures_quarantine_immediately() {
        let mut st = State::new(CoordinatorConfig::default());
        submit(&mut st, spec()).unwrap();
        let task = lease_task(&mut st).unwrap();
        let mut req = completion(&task, None);
        req.failure = Some("policy `FULL` failed: injected".into());
        assert_eq!(
            status_of(&complete(&mut st, &req)),
            CompleteStatus::Recorded
        );
        let cell = &st.sweeps[0].cells[task.cell as usize];
        assert!(matches!(cell.status, CellStatus::Quarantined { .. }));
        assert_eq!(cell.attempts, 1);
    }

    #[test]
    fn version_mismatch_is_refused() {
        let mut st = State::new(CoordinatorConfig::default());
        submit(&mut st, spec()).unwrap();
        let resp = lease(
            &mut st,
            &LeaseRequest {
                proto: PROTO_VERSION + 1,
                worker: "w".into(),
            },
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn journal_records_exactly_one_line_per_cell() {
        let dir = tempdir("svc-journal");
        let cfg = CoordinatorConfig {
            journal_dir: Some(dir.clone()),
            ..CoordinatorConfig::default()
        };
        let mut st = State::new(cfg);
        submit(&mut st, spec()).unwrap();
        let run = tiny_run();
        while let Some(task) = lease_task(&mut st) {
            let req = completion(&task, Some(run.clone()));
            assert_eq!(
                status_of(&complete(&mut st, &req)),
                CompleteStatus::Recorded
            );
            // Replay it: refused as duplicate, nothing re-journaled.
            assert_eq!(
                status_of(&complete(&mut st, &req)),
                CompleteStatus::Duplicate
            );
        }
        let journal = dtb_sim::read_journal(dir.join("sweep-1")).unwrap();
        assert_eq!(journal.cells.len(), 2);
        let mut keys: Vec<(String, String)> = journal
            .cells
            .iter()
            .map(|c| (c.column.clone(), c.row.clone()))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 2, "duplicate journal lines for a cell");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rebuilds_sweeps_and_fences_stale_leases() {
        let dir = tempdir("svc-recover");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = CoordinatorConfig {
            journal_dir: Some(dir.clone()),
            results_path: Some(dir.join("results.dtbres")),
            ..CoordinatorConfig::default()
        };
        let run = tiny_run();
        let (stale, done_cell) = {
            let mut st = State::new(cfg.clone());
            assert_eq!(st.epoch, 1);
            submit(&mut st, spec()).unwrap();
            let done = lease_task(&mut st).unwrap();
            assert_eq!(
                status_of(&complete(&mut st, &completion(&done, Some(run.clone())))),
                CompleteStatus::Recorded
            );
            // Leave the second cell leased — its worker "dies" with the
            // coordinator and will straggle in after the restart.
            let stale = lease_task(&mut st).unwrap();
            (stale, done.cell)
        };

        // "Restart": a new state over the same directories.
        let mut st = State::new(cfg);
        assert_eq!(st.epoch, 2, "every open bumps the epoch");
        assert_eq!(st.recovery.sweeps, 1);
        assert_eq!(st.recovery.finalized, 1);
        assert_eq!(st.recovery.open, 1);
        assert_eq!(st.next_sweep, 2, "sweep ids continue, never reused");
        assert!(
            st.sweeps[0].cells[done_cell as usize].status.is_final(),
            "finalized stays finalized across the restart"
        );

        // The pre-crash worker's completion arrives late: its lease
        // token belongs to epoch 1 and can never match an epoch-2 lease.
        let resp = complete(&mut st, &completion(&stale, Some(run.clone())));
        assert_eq!(status_of(&resp), CompleteStatus::LeaseLost);

        // The open cell re-leases and finishes normally; re-finalizing
        // the recovered cell is refused as a duplicate.
        let fresh = lease_task(&mut st).unwrap();
        assert_eq!(fresh.cell, stale.cell);
        assert!(fresh.lease != stale.lease);
        assert_eq!(fresh.attempt, 1, "recovery re-opens, attempts restart");
        assert_eq!(
            status_of(&complete(&mut st, &completion(&fresh, Some(run.clone())))),
            CompleteStatus::Recorded
        );
        let mut dup = completion(&fresh, Some(run));
        dup.cell = done_cell;
        assert_eq!(
            status_of(&complete(&mut st, &dup)),
            CompleteStatus::Duplicate
        );
        assert!(st.sweeps[0].is_done());

        // Exactly one journal line per cell, across both incarnations.
        let journal = dtb_sim::read_journal(dir.join("sweep-1")).unwrap();
        assert_eq!(journal.cells.len(), 2);
        let mut keys: Vec<(String, String)> = journal
            .cells
            .iter()
            .map(|c| (c.column.clone(), c.row.clone()))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_sweep_log_refuses_recovery() {
        let dir = tempdir("svc-refuse");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = CoordinatorConfig {
            journal_dir: Some(dir.clone()),
            ..CoordinatorConfig::default()
        };
        {
            let mut st = State::new(cfg.clone());
            submit(&mut st, spec()).unwrap();
            submit(&mut st, spec()).unwrap();
        }
        let log = dir.join(crate::sweeplog::SWEEP_LOG_FILE);
        let mut bytes = std::fs::read(&log).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&log, &bytes).unwrap();
        assert!(State::recover(cfg).is_err(), "interior corruption refused");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_disk_fault_leaves_the_cell_open() {
        let dir = tempdir("svc-diskfault");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = CoordinatorConfig {
            journal_dir: Some(dir.clone()),
            disk_faults: DiskFaults {
                journal: FaultFuse::charges(1),
                ..DiskFaults::default()
            },
            ..CoordinatorConfig::default()
        };
        let mut st = State::new(cfg);
        submit(&mut st, spec()).unwrap();
        let task = lease_task(&mut st).unwrap();
        let req = completion(&task, Some(tiny_run()));

        // The armed fuse fails the finalization write: the worker sees a
        // 500, the cell is NOT final, and nothing reached the journal.
        let resp = complete(&mut st, &req);
        assert_eq!(
            resp.status,
            500,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        assert!(!st.sweeps[0].cells[task.cell as usize].status.is_final());
        let journal = dtb_sim::read_journal(dir.join("sweep-1")).unwrap();
        assert!(journal.cells.is_empty(), "no torn finalization");

        // The fuse is spent; the worker's retry of the same completion
        // (same lease) lands durably.
        assert_eq!(
            status_of(&complete(&mut st, &req)),
            CompleteStatus::Recorded
        );
        let journal = dtb_sim::read_journal(dir.join("sweep-1")).unwrap();
        assert_eq!(journal.cells.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dtb-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Event `type` tags published so far, in sequence order.
    fn event_tags(st: &State) -> Vec<String> {
        st.events
            .read_from(1, Duration::ZERO)
            .lines
            .iter()
            .map(|line| {
                line.split("\"type\":\"")
                    .nth(1)
                    .and_then(|rest| rest.split('"').next())
                    .unwrap_or("?")
                    .to_string()
            })
            .collect()
    }

    #[test]
    fn lifecycle_events_stream_in_order() {
        let mut st = State::new(CoordinatorConfig::default());
        submit(&mut st, spec()).unwrap();
        let run = tiny_run();
        while let Some(task) = lease_task(&mut st) {
            let req = completion(&task, Some(run.clone()));
            assert_eq!(
                status_of(&complete(&mut st, &req)),
                CompleteStatus::Recorded
            );
        }
        assert_eq!(
            event_tags(&st),
            [
                "sweep_submitted",
                "cell_leased",
                "cell_recorded",
                "cell_leased",
                "cell_recorded",
                "sweep_drained",
            ]
        );
        // Lines are well-formed envelopes: the epoch-tagged cursor leads
        // and the seq is monotone.
        let lines = st.events.read_from(1, Duration::ZERO).lines;
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"epoch\":1,\"seq\":{},", i + 1)),
                "{line}"
            );
        }
    }

    #[test]
    fn results_store_serves_cells_before_the_sweep_is_done() {
        let mut st = State::new(CoordinatorConfig::default());
        submit(&mut st, spec()).unwrap();
        let task = lease_task(&mut st).unwrap();
        let req = completion(&task, Some(tiny_run()));
        assert_eq!(
            status_of(&complete(&mut st, &req)),
            CompleteStatus::Recorded
        );
        // One of two cells final: /sweep withholds cells, /results serves
        // the finalized one already.
        assert!(!st.sweeps[0].is_done());
        let cells = st.results.sweep_cells(1);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0, task.cell);
        assert!(cells[0].1.run.is_some());
    }

    #[test]
    fn relay_reframes_clean_lines_and_drops_garbage() {
        let mut st = State::new(CoordinatorConfig::default());
        submit(&mut st, spec()).unwrap();
        let resp = relay(
            &mut st,
            &RelayRequest {
                sweep: 1,
                cell: 0,
                worker: "w\"1".into(),
                lines: vec![
                    "{\"type\":\"scavenge\",\"at\":42}".into(),
                    "not json".into(),
                    "{\"multi\":\nline}".into(),
                ],
            },
        );
        assert_eq!(resp.status, 200);
        assert_eq!(decode::<RelayReply>(&resp.body).unwrap().accepted, 1);
        let lines = st.events.read_from(1, Duration::ZERO).lines;
        let relayed = lines.last().unwrap();
        assert!(relayed.contains("\"type\":\"worker_event\""), "{relayed}");
        assert!(relayed.contains("\"tenant\":\"t1\""), "{relayed}");
        assert!(relayed.contains("\"worker\":\"w\\\"1\""), "{relayed}");
        assert!(
            relayed.ends_with("\"event\":{\"type\":\"scavenge\",\"at\":42}}"),
            "{relayed}"
        );

        // Unknown sweeps and oversized batches are refused.
        let resp = relay(
            &mut st,
            &RelayRequest {
                sweep: 99,
                cell: 0,
                worker: "w".into(),
                lines: vec![],
            },
        );
        assert_eq!(resp.status, 404);
        let resp = relay(
            &mut st,
            &RelayRequest {
                sweep: 1,
                cell: 0,
                worker: "w".into(),
                lines: vec!["{}".to_string(); MAX_RELAY_LINES + 1],
            },
        );
        assert_eq!(resp.status, 400);
    }
}
