//! `dtb-worker`: lease matrix cells from a coordinator and run them.
//!
//! ```text
//! dtb-worker --addr 127.0.0.1:7077 --name w1 --exit-when-done
//! ```
//!
//! The `--fault-*` flags wrap the transport in the deterministic
//! [`NetFault`] layer — the chaos suites run real workers over a
//! misbehaving wire and assert the matrix still converges.

use dtb_sim::exec::RetryPolicy;
use dtb_svc::client::TcpTransport;
use dtb_svc::fault::{FaultPlan, NetFault};
use dtb_svc::worker::{run_worker, serve_healthz, WorkerConfig, WorkerExit, WorkerHealth};
use dtb_svc::Client;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dtb-worker --addr HOST:PORT [--name NAME] [--exit-when-done]\n\
         \x20                 [--cell-delay-ms N] [--threads N] [--net-retries N]\n\
         \x20                 [--reconnect-ms N] [--healthz HOST:PORT]\n\
         \x20                 [--fault-drop-every N] [--fault-garble-every N]\n\
         \x20                 [--fault-replay-every N] [--fault-delay-every N:MS]\n\
         \n\
         --addr HOST:PORT      coordinator address (required)\n\
         --name NAME           worker identity (default: worker-<pid>)\n\
         --exit-when-done      exit 0 once the coordinator reports all sweeps done\n\
         --cell-delay-ms N     pause before each cell (crash-test pacing)\n\
         --threads N           intra-cell simulation threads (default 1)\n\
         --relay-events        relay per-scavenge telemetry into the coordinator's /events\n\
         --net-retries N       wire-failure retries per exchange (default 4)\n\
         --reconnect-ms N      ride out up to N ms of continuous coordinator outage\n\
         \x20                      (default: fail fast once --net-retries is spent)\n\
         --healthz HOST:PORT   serve GET /healthz liveness counters on this address\n\
         --fault-*             deterministic network fault injection (see docs)"
    );
    std::process::exit(2);
}

struct Args {
    addr: String,
    config: WorkerConfig,
    net_retries: u32,
    plan: FaultPlan,
    healthz: Option<String>,
}

fn parse_args() -> Args {
    let mut addr: Option<String> = None;
    let mut config = WorkerConfig::new(format!("worker-{}", std::process::id()));
    let mut net_retries = 4u32;
    let mut plan = FaultPlan::none();
    let mut healthz: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--name" => config.name = value("--name"),
            "--exit-when-done" => config.exit_when_done = true,
            "--cell-delay-ms" => {
                config.cell_delay = Duration::from_millis(parse_num(&value("--cell-delay-ms")))
            }
            "--threads" => config.threads = parse_num(&value("--threads")) as usize,
            "--relay-events" => config.relay_events = true,
            "--net-retries" => net_retries = parse_num(&value("--net-retries")) as u32,
            "--reconnect-ms" => {
                config.reconnect = Some(Duration::from_millis(parse_num(&value("--reconnect-ms"))))
            }
            "--healthz" => healthz = Some(value("--healthz")),
            "--fault-drop-every" => plan.drop_every = Some(parse_num(&value("--fault-drop-every"))),
            "--fault-garble-every" => {
                plan.garble_every = Some(parse_num(&value("--fault-garble-every")))
            }
            "--fault-replay-every" => {
                plan.replay_every = Some(parse_num(&value("--fault-replay-every")))
            }
            "--fault-delay-every" => {
                let spec = value("--fault-delay-every");
                let Some((every, ms)) = spec.split_once(':') else {
                    eprintln!("--fault-delay-every wants N:MS, got `{spec}`");
                    usage()
                };
                plan.delay_every = Some((parse_num(every), Duration::from_millis(parse_num(ms))));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("--addr is required");
        usage()
    };
    Args {
        addr,
        config,
        net_retries,
        plan,
        healthz,
    }
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("`{s}` is not a number");
        usage()
    })
}

fn main() {
    let mut args = parse_args();
    if let Some(healthz) = &args.healthz {
        let health = Arc::new(WorkerHealth::default());
        match serve_healthz(healthz, &args.config.name, Arc::clone(&health)) {
            Ok(bound) => {
                args.config.health = Some(health);
                eprintln!("dtb-worker {}: healthz on {bound}", args.config.name);
            }
            Err(e) => {
                eprintln!("dtb-worker: cannot bind healthz {healthz}: {e}");
                std::process::exit(1);
            }
        }
    }
    let transport = NetFault::new(TcpTransport::new(args.addr.clone()), args.plan);
    let mut client =
        Client::with_transport(Box::new(transport), RetryPolicy::retries(args.net_retries));
    eprintln!(
        "dtb-worker {} polling {} (exit-when-done: {})",
        args.config.name, args.addr, args.config.exit_when_done
    );
    match run_worker(&mut client, &args.config) {
        WorkerExit::Drained => {
            eprintln!("dtb-worker {}: drained, exiting", args.config.name);
        }
        WorkerExit::Lost(e) => {
            eprintln!("dtb-worker {}: coordinator lost: {e}", args.config.name);
            std::process::exit(1);
        }
    }
}
