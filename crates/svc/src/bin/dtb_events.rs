//! `dtb-events`: watch and query a running coordinator.
//!
//! ```text
//! dtb-events tail --addr 127.0.0.1:7077 [--from N] [--reconnect-ms N]
//! dtb-events results --addr 127.0.0.1:7077 --sweep 1
//! dtb-events status --addr 127.0.0.1:7077
//! ```
//!
//! `tail` follows the coordinator's `GET /events` server-push stream and
//! prints one JSON event per line until the stream ends (coordinator
//! shutdown) — pipe it through `grep`/`jq` to watch a sweep fill in.
//! With `--reconnect-ms` the tail rides out coordinator restarts,
//! resuming from its epoch-tagged cursor with no gaps or duplicates.
//! `results` queries the `GET /results` store and prints the reply JSON.
//! `status` prints the coordinator's `GET /status` snapshot: recovery
//! epoch, per-sweep progress, and per-tenant queue depths.

use dtb_svc::events::{follow_events, follow_events_resilient, EventCursor};
use dtb_svc::proto::encode;
use dtb_svc::Client;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dtb-events tail --addr HOST:PORT [--from N] [--reconnect-ms N]\n\
         \x20      dtb-events results --addr HOST:PORT --sweep N\n\
         \x20      dtb-events status --addr HOST:PORT\n\
         \n\
         tail     stream /events (one JSON event per line) until the coordinator stops\n\
         results  print the /results reply for one sweep\n\
         status   print the /status snapshot (epoch, sweeps, tenant queues)\n\
         --addr HOST:PORT  coordinator address (required)\n\
         --from N          first event sequence number to stream (default 1)\n\
         --reconnect-ms N  ride out up to N ms of continuous coordinator outage,\n\
         \x20                  resuming the stream from the epoch-tagged cursor\n\
         --sweep N         sweep id to query"
    );
    std::process::exit(2);
}

struct Args {
    command: String,
    addr: Option<String>,
    from: u64,
    reconnect: Option<Duration>,
    sweep: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let mut parsed = Args {
        command,
        addr: None,
        from: 1,
        reconnect: None,
        sweep: None,
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => parsed.addr = Some(value("--addr")),
            "--from" => parsed.from = parse_num(&value("--from")),
            "--reconnect-ms" => {
                parsed.reconnect = Some(Duration::from_millis(parse_num(&value("--reconnect-ms"))))
            }
            "--sweep" => parsed.sweep = Some(parse_num(&value("--sweep"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    parsed
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("`{s}` is not a number");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let Some(addr) = args.addr.clone() else {
        eprintln!("--addr is required");
        usage()
    };
    match args.command.as_str() {
        "tail" => {
            use std::io::Write;
            let stop = AtomicBool::new(false);
            let mut out = std::io::stdout();
            // A closed pipe downstream (e.g. `| head`) ends the tail.
            let followed = match args.reconnect {
                Some(window) => {
                    // Anchor `--from` in the coordinator's current epoch
                    // so it means "seq N of the stream as it is now";
                    // epoch 0 (coordinator unreachable) starts from the
                    // beginning of whatever epoch answers first.
                    let epoch = Client::connect(addr.clone())
                        .status()
                        .map(|s| s.epoch)
                        .unwrap_or(0);
                    let cursor = EventCursor {
                        epoch,
                        seq: args.from,
                    };
                    follow_events_resilient(&addr, cursor, window, &stop, |line| {
                        writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
                    })
                }
                None => follow_events(&addr, args.from, &stop, |line| {
                    writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
                }),
            };
            if let Err(e) = followed {
                eprintln!("dtb-events: stream from {addr} failed: {e}");
                std::process::exit(1);
            }
        }
        "status" => {
            let mut client = Client::connect(addr.clone());
            match client.status() {
                Ok(reply) => {
                    let json = String::from_utf8(encode(&reply)).expect("wire JSON is UTF-8");
                    println!("{json}");
                }
                Err(e) => {
                    eprintln!("dtb-events: /status from {addr} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "results" => {
            let Some(sweep) = args.sweep else {
                eprintln!("--sweep is required for `results`");
                usage()
            };
            let mut client = Client::connect(addr.clone());
            match client.results(sweep) {
                Ok(reply) => {
                    let json = String::from_utf8(encode(&reply)).expect("wire JSON is UTF-8");
                    println!("{json}");
                }
                Err(e) => {
                    eprintln!("dtb-events: /results from {addr} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
