//! `dtb-events`: watch and query a running coordinator.
//!
//! ```text
//! dtb-events tail --addr 127.0.0.1:7077 [--from N]
//! dtb-events results --addr 127.0.0.1:7077 --sweep 1
//! ```
//!
//! `tail` follows the coordinator's `GET /events` server-push stream and
//! prints one JSON event per line until the stream ends (coordinator
//! shutdown) — pipe it through `grep`/`jq` to watch a sweep fill in.
//! `results` queries the `GET /results` store and prints the reply JSON.

use dtb_svc::events::follow_events;
use dtb_svc::proto::encode;
use dtb_svc::Client;
use std::sync::atomic::AtomicBool;

fn usage() -> ! {
    eprintln!(
        "usage: dtb-events tail --addr HOST:PORT [--from N]\n\
         \x20      dtb-events results --addr HOST:PORT --sweep N\n\
         \n\
         tail     stream /events (one JSON event per line) until the coordinator stops\n\
         results  print the /results reply for one sweep\n\
         --addr HOST:PORT  coordinator address (required)\n\
         --from N          first event sequence number to stream (default 1)\n\
         --sweep N         sweep id to query"
    );
    std::process::exit(2);
}

struct Args {
    command: String,
    addr: Option<String>,
    from: u64,
    sweep: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let mut parsed = Args {
        command,
        addr: None,
        from: 1,
        sweep: None,
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => parsed.addr = Some(value("--addr")),
            "--from" => parsed.from = parse_num(&value("--from")),
            "--sweep" => parsed.sweep = Some(parse_num(&value("--sweep"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    parsed
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("`{s}` is not a number");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let Some(addr) = args.addr.clone() else {
        eprintln!("--addr is required");
        usage()
    };
    match args.command.as_str() {
        "tail" => {
            use std::io::Write;
            let stop = AtomicBool::new(false);
            let mut out = std::io::stdout();
            let followed = follow_events(&addr, args.from, &stop, |line| {
                // A closed pipe downstream (e.g. `| head`) ends the tail.
                writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
            });
            if let Err(e) = followed {
                eprintln!("dtb-events: stream from {addr} failed: {e}");
                std::process::exit(1);
            }
        }
        "results" => {
            let Some(sweep) = args.sweep else {
                eprintln!("--sweep is required for `results`");
                usage()
            };
            let mut client = Client::connect(addr.clone());
            match client.results(sweep) {
                Ok(reply) => {
                    let json = String::from_utf8(encode(&reply)).expect("wire JSON is UTF-8");
                    println!("{json}");
                }
                Err(e) => {
                    eprintln!("dtb-events: /results from {addr} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
