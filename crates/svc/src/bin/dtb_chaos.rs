//! `dtb-chaos`: the seeded chaos drill against **real processes**.
//!
//! ```text
//! dtb-chaos --seed 42 --workers 2 --dir chaos-artifacts
//! ```
//!
//! Derives a [`ChaosPlan`] from the seed, then executes it with real
//! SIGKILL: a `dtb-coordinator` process is killed (no destructors, no
//! goodbye) at scripted finalized-cell counts and restarted over the
//! same journal directory on the same port — with a skewed lease clock
//! and disk-write faults armed; one `dtb-worker` process is killed and
//! replaced mid-matrix; every worker runs over a deterministically
//! misbehaving wire; a resilient follower rides the restarts on its
//! epoch-tagged cursor.
//!
//! The drill passes when, despite all of that:
//!
//! 1. the served matrix is **bit-identical** (by report) to a clean
//!    in-process run of the same spec;
//! 2. the journal finalizes every cell **exactly once**;
//! 3. the follower's stream has **no gaps or duplicates** within any
//!    epoch, and spans every incarnation.
//!
//! Exit 0 = all three hold; exit 1 = a violation, with the seed and the
//! artifact directory (coordinator/worker logs, journal, results store,
//! followed stream) printed for replay. The same seed always replays
//! the same schedule.

use dtb_core::policy::PolicyKind;
use dtb_sim::exec::{Matrix, TraceCache};
use dtb_sim::journal::read_journal;
use dtb_svc::proto::{CellResult, CellTask, SweepSpec};
use dtb_svc::worker::run_cell;
use dtb_svc::{
    follow_events_resilient, journal_exactly_once, line_cursor, matrix_from_cells,
    matrix_from_sweep, stream_continuity, ChaosPlan, Client, EventCursor,
};
use dtb_trace::programs::Program;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: dtb-chaos [--seed N] [--workers N] [--dir PATH] [--cell-delay-ms N]\n\
         \n\
         --seed N           chaos plan seed (default 42); a failing run replays from it\n\
         --workers N        worker processes (default 2)\n\
         --dir PATH         artifact directory: logs, journal, results, stream (default chaos-artifacts)\n\
         --cell-delay-ms N  per-cell pacing so kills land mid-matrix (default 250)"
    );
    std::process::exit(2);
}

struct Args {
    seed: u64,
    workers: usize,
    dir: PathBuf,
    cell_delay_ms: u64,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        seed: 42,
        workers: 2,
        dir: PathBuf::from("chaos-artifacts"),
        cell_delay_ms: 250,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => parsed.seed = parse_num(&value("--seed")),
            "--workers" => parsed.workers = parse_num(&value("--workers")) as usize,
            "--dir" => parsed.dir = value("--dir").into(),
            "--cell-delay-ms" => parsed.cell_delay_ms = parse_num(&value("--cell-delay-ms")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    if parsed.workers == 0 {
        eprintln!("--workers must be at least 1");
        usage()
    }
    parsed
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("`{s}` is not a number");
        usage()
    })
}

/// The drill's sweep: one workload, every collector, baselines — small
/// enough for CI, wide enough that kills land between finalizations.
fn drill_spec() -> SweepSpec {
    SweepSpec {
        tenant: "chaos".to_string(),
        programs: vec![Program::Cfrac],
        policies: PolicyKind::ALL.to_vec(),
        baselines: true,
        policy: dtb_core::policy::PolicyConfig::paper(),
        sim: dtb_sim::engine::SimConfig::paper(),
    }
}

/// The clean ground truth, computed in-process through the *same*
/// per-cell runner the workers use.
fn reference_matrix(spec: &SweepSpec) -> Matrix {
    let cache = TraceCache::new();
    let rows = spec.rows();
    let mut cells = Vec::new();
    let mut index = 0u64;
    for &program in &spec.programs {
        for row in &rows {
            let task = CellTask {
                sweep: 0,
                cell: index,
                lease: 0,
                lease_ms: 600_000,
                program,
                row: row.clone(),
                policy: spec.policy,
                sim: spec.sim,
                attempt: 1,
            };
            let done = run_cell(&cache, &task, 1);
            cells.push(CellResult {
                column: program.label().to_string(),
                row: row.to_string(),
                attempts: 1,
                elapsed_ns: done.elapsed_ns,
                run: done.run,
                failure: done.failure,
                transient: done.transient,
            });
            index += 1;
        }
    }
    matrix_from_cells(spec, &cells)
}

/// Bit-identical by report, cell for cell. `Err` lists every diverging
/// cell.
fn compare_matrices(served: &Matrix, clean: &Matrix) -> Result<(), String> {
    let mut diverged = Vec::new();
    let mut compared = 0;
    for (col, cell) in clean.cells() {
        let twin = served
            .column_by_name(col.name())
            .and_then(|c| c.cells.iter().find(|c| c.row == cell.row));
        match twin {
            None => diverged.push(format!(
                "{}/{}: missing from served matrix",
                col.name(),
                cell.row
            )),
            Some(twin) if twin.report() != cell.report() => diverged.push(format!(
                "{}/{}: report diverges from the clean run",
                col.name(),
                cell.row
            )),
            Some(_) => compared += 1,
        }
    }
    if compared == 0 {
        diverged.push("nothing compared".to_string());
    }
    if diverged.is_empty() {
        Ok(())
    } else {
        Err(diverged.join("\n"))
    }
}

/// A sibling binary of this one (all three live in the same target dir).
fn sibling(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("current_exe");
    path.set_file_name(name);
    path
}

fn log_file(dir: &Path, name: &str) -> std::fs::File {
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(name))
        .unwrap_or_else(|e| {
            eprintln!("dtb-chaos: cannot open log {name}: {e}");
            std::process::exit(2);
        })
}

/// Starts a coordinator incarnation and waits for its listening line.
/// `addr` is `None` for the first incarnation (ephemeral port) and the
/// fixed address for restarts. Returns the child and the bound address.
fn start_coordinator(
    args: &Args,
    addr: Option<&str>,
    lease_ms: u64,
    journal_faults: u32,
    results_faults: u32,
    incarnation: u32,
) -> (Child, String) {
    let dir = &args.dir;
    let mut cmd = Command::new(sibling("dtb-coordinator"));
    cmd.args([
        "--addr",
        addr.unwrap_or("127.0.0.1:0"),
        "--lease-ms",
        &lease_ms.to_string(),
        "--retries",
        "2",
        "--journal",
        &dir.join("journal").to_string_lossy(),
        "--results",
        &dir.join("results.bin").to_string_lossy(),
    ]);
    if journal_faults > 0 {
        cmd.args(["--fault-journal-writes", &journal_faults.to_string()]);
    }
    if results_faults > 0 {
        cmd.args(["--fault-results-writes", &results_faults.to_string()]);
    }
    // A killed incarnation leaves the port in use briefly; retry the
    // whole spawn until the new one binds.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut child = cmd
            .stdout(Stdio::piped())
            .stderr(log_file(dir, &format!("coordinator-{incarnation}.stderr")))
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("dtb-chaos: cannot spawn dtb-coordinator: {e}");
                std::process::exit(2);
            });
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let mut bound = None;
        for line in &mut lines {
            let Ok(line) = line else { break };
            eprintln!("[coordinator-{incarnation}] {line}");
            if let Some(rest) = line.strip_prefix("dtb-coordinator listening on ") {
                bound = Some(rest.trim().to_string());
                break;
            }
        }
        match bound {
            Some(bound) => {
                // Drain the rest of stdout to the log in the background.
                let mut log = log_file(dir, &format!("coordinator-{incarnation}.stdout"));
                std::thread::spawn(move || {
                    for line in lines {
                        let Ok(line) = line else { break };
                        let _ = writeln!(log, "{line}");
                    }
                });
                return (child, bound);
            }
            None => {
                // Bind failed (port still draining); reap and retry.
                let _ = child.wait();
                if Instant::now() >= deadline {
                    eprintln!("dtb-chaos: coordinator never bound {addr:?}");
                    std::process::exit(2);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Starts one worker over the plan's wire faults, with a reconnect
/// window and a healthz endpoint the driver can probe.
fn start_worker(args: &Args, plan: &ChaosPlan, addr: &str, index: usize, generation: u32) -> Child {
    let name = format!("chaos-w{index}-g{generation}");
    let wire = &plan.net[index % plan.net.len()];
    let mut cmd = Command::new(sibling("dtb-worker"));
    cmd.args([
        "--addr",
        addr,
        "--name",
        &name,
        "--exit-when-done",
        "--cell-delay-ms",
        &args.cell_delay_ms.to_string(),
        "--reconnect-ms",
        "120000",
        "--healthz",
        "127.0.0.1:0",
    ]);
    if let Some(n) = wire.drop_every {
        cmd.args(["--fault-drop-every", &n.to_string()]);
    }
    if let Some(n) = wire.garble_every {
        cmd.args(["--fault-garble-every", &n.to_string()]);
    }
    if let Some(n) = wire.replay_every {
        cmd.args(["--fault-replay-every", &n.to_string()]);
    }
    cmd.stdout(Stdio::null())
        .stderr(log_file(&args.dir, &format!("{name}.stderr")))
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("dtb-chaos: cannot spawn dtb-worker: {e}");
            std::process::exit(2);
        })
}

fn finalized_count(client: &mut Client, sweep: u64) -> Option<u64> {
    let status = client.status().ok()?;
    status
        .sweeps
        .iter()
        .find(|s| s.sweep == sweep)
        .map(|s| s.finalized)
}

fn fail(seed: u64, dir: &Path, what: &str) -> ! {
    eprintln!("\ndtb-chaos: FAIL — {what}");
    eprintln!(
        "dtb-chaos: replay with --seed {seed}; artifacts kept in {}",
        dir.display()
    );
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(args.dir.join("journal")).unwrap_or_else(|e| {
        eprintln!("dtb-chaos: cannot create {}: {e}", args.dir.display());
        std::process::exit(2);
    });

    let spec = drill_spec();
    let total = (spec.policies.len() + 2) as u64;
    let plan = ChaosPlan::from_seed(args.seed, total, args.workers);
    eprintln!(
        "dtb-chaos: seed {} over {total} cells, {} workers: kill coordinator at {:?}, \
         kill worker {:?}, lease skew {}/{}, {} journal + {} results write faults",
        args.seed,
        args.workers,
        plan.coordinator_kills,
        plan.worker_kill,
        plan.lease_skew.0,
        plan.lease_skew.1,
        plan.journal_faults,
        plan.results_faults,
    );

    eprintln!("dtb-chaos: computing the clean reference matrix in-process…");
    let clean = reference_matrix(&spec);

    // ── incarnation 1 ──
    let lease_ms = 4_000u64;
    let (mut coordinator, addr) = start_coordinator(&args, None, lease_ms, 0, 0, 1);

    // The resilient follower rides every restart; its stream is both an
    // artifact and the continuity evidence.
    let stop = Arc::new(AtomicBool::new(false));
    let cursors: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let follower = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let cursors = Arc::clone(&cursors);
        let mut stream_log = log_file(&args.dir, "stream.jsonl");
        std::thread::spawn(move || {
            follow_events_resilient(
                &addr,
                EventCursor::start(),
                Duration::from_secs(120),
                &stop,
                |line| {
                    if let Some(at) = line_cursor(line) {
                        cursors.lock().unwrap().push((at.epoch, at.seq));
                    }
                    let _ = writeln!(stream_log, "{line}");
                    true
                },
            )
        })
    };

    let mut workers: Vec<Child> = (0..args.workers)
        .map(|i| start_worker(&args, &plan, &addr, i, 1))
        .collect();

    let mut client = Client::connect(addr.clone());
    let sweep = match client.submit(&spec) {
        Ok(reply) => reply.sweep,
        Err(e) => fail(args.seed, &args.dir, &format!("submit refused: {e}")),
    };

    // ── execute the schedule: kills at scripted finalized counts ──
    let mut kills = plan.coordinator_kills.clone();
    kills.sort_unstable();
    kills.dedup();
    let mut worker_kill = plan.worker_kill;
    let mut incarnation = 1u32;
    let (num, den) = plan.lease_skew;
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        if Instant::now() >= deadline {
            fail(args.seed, &args.dir, "drill did not converge within 600 s");
        }
        let Some(finalized) = finalized_count(&mut client, sweep) else {
            // Coordinator down (between kill and restart) — keep polling.
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        if let Some((victim, at)) = worker_kill {
            if finalized >= at.min(total - 1) {
                let victim_idx = victim % workers.len();
                eprintln!(
                    "dtb-chaos: {finalized}/{total} finalized — SIGKILL worker {victim_idx}, starting replacement"
                );
                let _ = workers[victim_idx].kill();
                let _ = workers[victim_idx].wait();
                workers[victim_idx] = start_worker(&args, &plan, &addr, victim_idx, 2);
                worker_kill = None;
            }
        }
        if let Some(&at) = kills.first() {
            if finalized >= at.min(total - 1) {
                incarnation += 1;
                eprintln!(
                    "dtb-chaos: {finalized}/{total} finalized — SIGKILL coordinator, restarting as incarnation {incarnation}"
                );
                let _ = coordinator.kill(); // SIGKILL: no destructors, no goodbye
                let _ = coordinator.wait();
                // Restart over the same dirs on the same port, lease
                // clock skewed, disk-write faults armed.
                let skewed = (lease_ms.saturating_mul(num) / den).max(500);
                let (child, rebound) = start_coordinator(
                    &args,
                    Some(&addr),
                    skewed,
                    plan.journal_faults,
                    plan.results_faults,
                    incarnation,
                );
                assert_eq!(rebound, addr, "restart must reuse the address");
                coordinator = child;
                kills.remove(0);
                continue;
            }
        }
        if kills.is_empty() && worker_kill.is_none() && finalized >= total {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // ── quiescence: the sweep is served done, workers drain ──
    let reply = match client.wait_sweep(
        sweep,
        Duration::from_millis(200),
        Some(Duration::from_secs(120)),
    ) {
        Ok(reply) => reply,
        Err(e) => fail(
            args.seed,
            &args.dir,
            &format!("sweep never served done: {e}"),
        ),
    };
    for (i, worker) in workers.iter_mut().enumerate() {
        match worker.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => fail(args.seed, &args.dir, &format!("worker {i} exited {status}")),
            Err(e) => fail(args.seed, &args.dir, &format!("worker {i} unreapable: {e}")),
        }
    }

    // ── verdicts ──
    let mut violations = Vec::new();

    // 1. Bit-identical matrix.
    if let Err(e) = compare_matrices(&matrix_from_sweep(&reply), &clean) {
        violations.push(format!("matrix diverged:\n{e}"));
    } else {
        eprintln!("dtb-chaos: matrix is bit-identical to the clean run ({total} cells)");
    }

    // 2. Exactly-once journal.
    match read_journal(args.dir.join("journal").join(format!("sweep-{sweep}"))) {
        Ok(journal) => {
            let keys: Vec<(String, String)> = journal
                .cells
                .iter()
                .map(|c| (c.column.clone(), c.row.clone()))
                .collect();
            if keys.len() as u64 != total {
                violations.push(format!(
                    "journal holds {} lines, expected {total}",
                    keys.len()
                ));
            }
            if let Err(e) = journal_exactly_once(&keys) {
                violations.push(format!("journal exactly-once violated: {e}"));
            } else {
                eprintln!("dtb-chaos: journal finalized every cell exactly once");
            }
        }
        Err(e) => violations.push(format!("journal unreadable after the drill: {e}")),
    }

    // 3. Gapless stream across every incarnation. Stop the follower by
    // shutting the last coordinator down (closes the stream) and join.
    stop.store(true, Ordering::Relaxed);
    let _ = Client::connect(addr.clone()).shutdown();
    let _ = coordinator.wait();
    match follower.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => violations.push(format!("follower died: {e}")),
        Err(_) => violations.push("follower panicked".to_string()),
    }
    {
        let seen = cursors.lock().unwrap();
        if let Err(e) = stream_continuity(&seen) {
            violations.push(format!("stream continuity violated: {e}"));
        }
        let epochs: std::collections::BTreeSet<u64> = seen.iter().map(|&(e, _)| e).collect();
        if epochs.len() < incarnation as usize {
            violations.push(format!(
                "follower saw epochs {epochs:?}, expected all {incarnation} incarnations"
            ));
        } else {
            eprintln!(
                "dtb-chaos: follower streamed {} lines across epochs {epochs:?} with no gaps or duplicates",
                seen.len()
            );
        }
    }

    if !violations.is_empty() {
        fail(args.seed, &args.dir, &violations.join("\n---\n"));
    }
    println!(
        "dtb-chaos: PASS — seed {} survived {} coordinator kill(s), {} worker kill(s), wire + disk faults",
        args.seed,
        incarnation - 1,
        if plan.worker_kill.is_some() { 1 } else { 0 },
    );
}
