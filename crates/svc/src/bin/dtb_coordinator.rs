//! `dtb-coordinator`: serve the distributed evaluation protocol.
//!
//! ```text
//! dtb-coordinator --addr 127.0.0.1:7077 --journal runs/served \
//!                 --lease-ms 60000 --retries 2
//! ```
//!
//! Runs until `POST /shutdown`. Sweeps arrive over `POST /submit` (e.g.
//! from `repro_full_matrix --submit`), workers over `POST /lease`.

use dtb_sim::exec::RetryPolicy;
use dtb_sim::SimBudget;
use dtb_svc::{Coordinator, CoordinatorConfig, FaultFuse};
use std::collections::HashMap;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dtb-coordinator [--addr HOST:PORT] [--journal DIR] [--results FILE]\n\
         \x20                      [--lease-ms N] [--retries N] [--idle-ms N]\n\
         \x20                      [--quota TENANT=EVENTS]...\n\
         \x20                      [--fault-journal-writes N] [--fault-results-writes N]\n\
         \n\
         --addr HOST:PORT   listen address (default 127.0.0.1:7077; port 0 = ephemeral)\n\
         --journal DIR      durable per-sweep journals under DIR/sweep-<id>/\n\
         --lease-ms N       lease validity window in ms (default 60000)\n\
         --retries N        transient-failure retries per cell beyond the first attempt (default 2)\n\
         --idle-ms N        poll backoff handed to idle workers in ms (default 100)\n\
         --quota T=N        cap tenant T's cells at N simulation events (repeatable)\n\
         --results FILE     append-only results store behind GET /results (DTBRES01)\n\
         --fault-journal-writes N   chaos: fail the next N journal finalization writes\n\
         --fault-results-writes N   chaos: tear the next N results-store appends"
    );
    std::process::exit(2);
}

fn parse_args() -> (String, CoordinatorConfig) {
    let mut addr = "127.0.0.1:7077".to_string();
    let mut config = CoordinatorConfig::default();
    let mut quotas = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--journal" => config.journal_dir = Some(value("--journal").into()),
            "--results" => config.results_path = Some(value("--results").into()),
            "--lease-ms" => {
                config.lease_timeout = Duration::from_millis(parse_num(&value("--lease-ms")))
            }
            "--retries" => {
                config.retry = RetryPolicy::retries(parse_num(&value("--retries")) as u32)
            }
            "--idle-ms" => {
                config.idle_retry = Duration::from_millis(parse_num(&value("--idle-ms")))
            }
            "--fault-journal-writes" => {
                config.disk_faults.journal =
                    FaultFuse::charges(parse_num(&value("--fault-journal-writes")) as u32)
            }
            "--fault-results-writes" => {
                config.disk_faults.results =
                    FaultFuse::charges(parse_num(&value("--fault-results-writes")) as u32)
            }
            "--quota" => {
                let spec = value("--quota");
                let Some((tenant, events)) = spec.split_once('=') else {
                    eprintln!("--quota wants TENANT=EVENTS, got `{spec}`");
                    usage()
                };
                quotas.insert(tenant.to_string(), SimBudget::events(parse_num(events)));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    config.quotas = quotas;
    (addr, config)
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("`{s}` is not a number");
        usage()
    })
}

fn main() {
    let (addr, config) = parse_args();
    let coordinator = match Coordinator::bind(&addr, config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dtb-coordinator: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // The test harnesses parse this line for the ephemeral port; flush
    // explicitly — stdout is block-buffered when piped.
    println!("dtb-coordinator listening on {}", coordinator.addr());
    let report = coordinator.recovery_report();
    println!(
        "dtb-coordinator epoch {} (recovered {} sweeps: {} finalized, {} open cells)",
        coordinator.epoch(),
        report.sweeps,
        report.finalized,
        report.open
    );
    use std::io::Write;
    let _ = std::io::stdout().flush();
    // Serve until `POST /shutdown` stops the accept loop.
    coordinator.join();
}
