//! The coordinator/worker message vocabulary.
//!
//! Every message is a plain JSON object carried in an HTTP body (see
//! [`crate::http`]). The types here are the single source of truth for
//! both sides; a message that does not decode into one of them is a
//! protocol error, answered with `400` by the coordinator and classified
//! as a garbled (transient) response by the worker.
//!
//! Cells are addressed the same way the durable journal addresses them —
//! by `(column, row)` label — so the coordinator's journal lines double
//! as the service's exactly-once completion record with no translation.

use dtb_core::policy::{PolicyConfig, PolicyKind, Row};
use dtb_sim::engine::{SimConfig, SimRun};
use dtb_trace::programs::Program;
use serde::{Deserialize, Serialize};

/// Protocol version spoken by this build. The coordinator refuses leases
/// to workers announcing a different version — mixed fleets fail loudly,
/// not subtly. Version 2 added epoch-fenced lease tokens, epoch-tagged
/// `/events` cursors, and the richer `/status` shape.
pub const PROTO_VERSION: u32 = 2;

/// One submitted sweep: a (programs × policies) matrix to evaluate, owned
/// by a tenant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// The submitting tenant. Scheduling is round-robin across tenants
    /// with pending work, so no tenant can starve another by submitting
    /// more sweeps.
    pub tenant: String,
    /// Workload columns (presets only: the wire ships names, not bytes).
    pub programs: Vec<Program>,
    /// Collector rows.
    pub policies: Vec<PolicyKind>,
    /// Whether to append the `No GC` / `LIVE` baseline rows.
    pub baselines: bool,
    /// Constraint configuration for every policy in the sweep.
    pub policy: PolicyConfig,
    /// Simulation parameters for every cell in the sweep.
    pub sim: SimConfig,
}

impl SweepSpec {
    /// The paper's full matrix for one tenant.
    pub fn paper(tenant: impl Into<String>) -> SweepSpec {
        SweepSpec {
            tenant: tenant.into(),
            programs: Program::ALL.to_vec(),
            policies: PolicyKind::ALL.to_vec(),
            baselines: true,
            policy: PolicyConfig::paper(),
            sim: SimConfig::paper(),
        }
    }

    /// The row list this sweep evaluates, in table order.
    pub fn rows(&self) -> Vec<Row> {
        let mut rows: Vec<Row> = self.policies.iter().copied().map(Row::Policy).collect();
        if self.baselines {
            rows.push(Row::NoGc);
            rows.push(Row::Live);
        }
        rows
    }
}

/// `POST /submit` body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// The sweep to evaluate.
    pub spec: SweepSpec,
}

/// `POST /submit` reply.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubmitReply {
    /// Coordinator-assigned sweep id, used to poll and fetch results.
    pub sweep: u64,
    /// Cells in the sweep's matrix.
    pub cells: u64,
}

/// `POST /lease` body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeaseRequest {
    /// Protocol version the worker speaks ([`PROTO_VERSION`]).
    pub proto: u32,
    /// Worker identity, for diagnostics and lease bookkeeping.
    pub worker: String,
}

/// One leased cell: everything a worker needs to run it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellTask {
    /// The sweep the cell belongs to.
    pub sweep: u64,
    /// The cell's index within the sweep (column-major, stable).
    pub cell: u64,
    /// Lease token; completions must echo it. A completion whose token
    /// does not match the cell's *current* lease is stale and discarded.
    pub lease: u64,
    /// Milliseconds the lease is valid for. A worker that cannot finish
    /// within this window should expect its completion to be refused.
    pub lease_ms: u64,
    /// The workload column.
    pub program: Program,
    /// The row to run (collector or baseline).
    pub row: Row,
    /// Constraint configuration.
    pub policy: PolicyConfig,
    /// Simulation parameters, with the tenant's
    /// [`SimBudget`](dtb_sim::engine::SimBudget) quota already merged in
    /// by the coordinator.
    pub sim: SimConfig,
    /// How many times this cell has been handed out (1 = first lease).
    pub attempt: u32,
}

/// `POST /lease` reply.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeaseReply {
    /// The leased cell, when work was available.
    pub task: Option<CellTask>,
    /// When `task` is `None`: how long to wait before asking again.
    pub retry_ms: u64,
    /// True when every submitted sweep is finished and no more work will
    /// ever appear; workers started with `--exit-when-done` use it to
    /// terminate cleanly.
    pub drained: bool,
}

/// The worker's account of one finished cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompleteRequest {
    /// Sweep the cell belongs to.
    pub sweep: u64,
    /// Cell index within the sweep.
    pub cell: u64,
    /// The lease token the cell was leased under.
    pub lease: u64,
    /// Worker identity (diagnostics only).
    pub worker: String,
    /// The completed run, when the simulation succeeded.
    pub run: Option<SimRun>,
    /// The stringified failure, when it did not.
    pub failure: Option<String>,
    /// Whether the failure is worth retrying (worker-side
    /// classification: deadlines and shard I/O are transient; policy
    /// errors, invariant violations, and panics are permanent).
    pub transient: bool,
    /// Wall-clock nanoseconds the cell took on the worker.
    pub elapsed_ns: u64,
}

/// What the coordinator did with a completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompleteStatus {
    /// The outcome was journaled (fsync'd) and the cell is now final.
    Recorded,
    /// The cell was already final — a duplicate completion (worker
    /// retry, replayed request). Idempotent: nothing was re-journaled.
    Duplicate,
    /// The lease token is not the cell's current lease (the lease
    /// expired and the cell was re-leased, or the token is garbage).
    /// The result was discarded; the current leaseholder owns the cell.
    LeaseLost,
    /// The failure was transient and the cell has retries left: it went
    /// back to the pending queue.
    Requeued,
}

/// `POST /complete` reply.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompleteReply {
    /// What happened to the reported outcome.
    pub status: CompleteStatus,
}

/// One cell's final state, as served by `GET /sweep`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Workload column label.
    pub column: String,
    /// Row label.
    pub row: String,
    /// Attempts consumed (leases granted).
    pub attempts: u32,
    /// Wall-clock nanoseconds the successful attempt took on its worker.
    pub elapsed_ns: u64,
    /// The completed run, when the cell succeeded.
    pub run: Option<SimRun>,
    /// The quarantine cause, when the cell failed permanently (or
    /// exhausted its retries).
    pub failure: Option<String>,
    /// Whether the quarantining failure was transient-class (retries
    /// exhausted, lease expiries) rather than permanent. Preserved so a
    /// served failure renders with the same transient/permanent
    /// classification a local run would give it. `false` for completed
    /// cells.
    pub transient: bool,
}

/// `GET /sweep?id=N` reply.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepReply {
    /// The sweep id.
    pub sweep: u64,
    /// The sweep's spec, echoed back.
    pub spec: SweepSpec,
    /// Cells finalized so far (done or quarantined).
    pub finalized: u64,
    /// Total cells in the sweep.
    pub total: u64,
    /// True when every cell is finalized.
    pub done: bool,
    /// Final cells, in column-major table order, present only when
    /// `done` (partial results stay on the coordinator).
    pub cells: Vec<CellResult>,
}

/// `GET /status` reply: coordinator identity and recovery provenance,
/// one line per sweep, one queue-depth line per tenant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatusReply {
    /// Protocol version the coordinator speaks.
    pub proto: u32,
    /// The coordinator's incarnation number (lease epochs are fenced by
    /// it; 1 = never restarted, or no durable sweep log).
    pub epoch: u64,
    /// Sweeps rebuilt from durable storage at startup.
    pub recovered_sweeps: u64,
    /// Cells already finalized by earlier incarnations.
    pub recovered_finalized: u64,
    /// Per-sweep progress.
    pub sweeps: Vec<SweepStatus>,
    /// Per-tenant queue depth, sorted by tenant name.
    pub tenants: Vec<TenantStatus>,
}

/// Progress of one sweep, as reported by `GET /status`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepStatus {
    /// The sweep id.
    pub sweep: u64,
    /// The owning tenant.
    pub tenant: String,
    /// Cells finalized (done or quarantined).
    pub finalized: u64,
    /// Cells waiting for a worker.
    pub pending: u64,
    /// Cells currently leased to workers.
    pub leased: u64,
    /// Cells quarantined (failed permanently or out of retries).
    pub quarantined: u64,
    /// Total cells.
    pub total: u64,
}

/// One tenant's queue depth, as reported by `GET /status`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantStatus {
    /// The tenant name.
    pub tenant: String,
    /// Sweeps the tenant has submitted (still held in memory).
    pub sweeps: u64,
    /// Cells waiting for a worker across those sweeps.
    pub pending: u64,
    /// Cells currently leased.
    pub leased: u64,
}

/// `POST /relay` body: a batch of worker-side observability event
/// lines for the coordinator to splice into its `/events` stream.
///
/// Each line must be a single-line JSON object (the worker sends
/// `dtb_obs::encode_json` output); the coordinator re-frames every
/// accepted line as a `worker_event` tagged with the sweep's tenant and
/// this worker, and drops lines that fail the framing check. Batches
/// are capped at [`MAX_RELAY_LINES`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RelayRequest {
    /// Sweep the events belong to.
    pub sweep: u64,
    /// Cell index the events were produced by.
    pub cell: u64,
    /// The relaying worker's identity.
    pub worker: String,
    /// Single-line JSON event objects, oldest first.
    pub lines: Vec<String>,
}

/// Most event lines one `POST /relay` may carry.
pub const MAX_RELAY_LINES: usize = 256;

/// `POST /relay` reply.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RelayReply {
    /// Lines accepted into the event stream (the rest failed the
    /// framing check and were dropped).
    pub accepted: u64,
}

/// `GET /results?sweep=N` reply: finalized cells served straight from
/// the coordinator's results store. Unlike `GET /sweep`, cells are
/// available as soon as each is final — a sweep can be watched filling
/// in — and they survive coordinator queries after the in-memory sweep
/// state would have aged out.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResultsReply {
    /// The sweep id.
    pub sweep: u64,
    /// Cells finalized (and therefore stored) so far.
    pub stored: u64,
    /// Total cells in the sweep (0 when the coordinator no longer holds
    /// the sweep's in-memory state).
    pub total: u64,
    /// True when every cell of the sweep is stored.
    pub complete: bool,
    /// Stored cells in cell-index order.
    pub cells: Vec<CellResult>,
}

/// Encodes a message as its JSON wire bytes.
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_string(msg)
        .expect("wire messages serialize infallibly")
        .into_bytes()
}

/// Decodes JSON wire bytes into a message. Any failure — not UTF-8, not
/// JSON, wrong shape — is a `String` error, never a panic.
pub fn decode<T: Deserialize>(bytes: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "body is not UTF-8".to_string())?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_spec_round_trips() {
        let spec = SweepSpec::paper("acme");
        let decoded: SweepSpec = decode(&encode(&spec)).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!(decoded.rows().len(), PolicyKind::ALL.len() + 2);
    }

    #[test]
    fn lease_reply_round_trips_with_and_without_task() {
        let idle = LeaseReply {
            task: None,
            retry_ms: 50,
            drained: false,
        };
        assert_eq!(decode::<LeaseReply>(&encode(&idle)).unwrap(), idle);

        let task = LeaseReply {
            task: Some(CellTask {
                sweep: 3,
                cell: 7,
                lease: 0xABCD,
                lease_ms: 30_000,
                program: Program::Cfrac,
                row: Row::Policy(PolicyKind::DtbFm),
                policy: PolicyConfig::paper(),
                sim: SimConfig::paper(),
                attempt: 2,
            }),
            retry_ms: 0,
            drained: false,
        };
        assert_eq!(decode::<LeaseReply>(&encode(&task)).unwrap(), task);
    }

    #[test]
    fn complete_status_is_a_readable_label() {
        let reply = CompleteReply {
            status: CompleteStatus::Duplicate,
        };
        let json = String::from_utf8(encode(&reply)).unwrap();
        assert!(json.contains("Duplicate"), "{json}");
        assert_eq!(decode::<CompleteReply>(json.as_bytes()).unwrap(), reply);
    }

    #[test]
    fn garbage_decodes_to_errors_not_panics() {
        for raw in [
            &b""[..],
            b"{",
            b"[1,2,3]",
            b"\xff\xfe",
            b"{\"proto\":\"not a number\"}",
            b"null",
        ] {
            assert!(decode::<LeaseRequest>(raw).is_err());
            assert!(decode::<CompleteRequest>(raw).is_err());
            assert!(decode::<SweepReply>(raw).is_err());
        }
    }
}
