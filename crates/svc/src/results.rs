//! The queryable results store behind `GET /results`.
//!
//! An append-only, checksummed record file (format `DTBRES01`) plus an
//! in-memory index. The coordinator appends one record per *finalized*
//! cell — the same moment the journal line lands — and `/results`
//! serves cells straight from the store, so results outlive the
//! in-memory sweep state and can be queried while a sweep is still
//! running (unlike `GET /sweep`, which withholds cells until the sweep
//! is done).
//!
//! # On-disk format
//!
//! The container reuses the `DTBCTC01`/`DTBCKP01` checksum discipline
//! (FNV-1a over the payload, hex in a fixed-width header):
//!
//! ```text
//! DTBRES01\n
//! {fnv:016x} {sweep} {cell} {len}\n
//! <len bytes of JSON payload>\n
//! ...
//! ```
//!
//! The payload is the JSON [`CellResult`]. Replay on open is tolerant
//! of a truncated tail (a crash mid-append): records are read until the
//! first short or checksum-failing record, and appends resume from
//! there. The store is a serving cache — the journal remains the
//! durability story — so append failures are reported to stderr but
//! never fail a completion.

use crate::chaos::FaultFuse;
use crate::proto::{decode, encode, CellResult};
use dtb_trace::ckp::checksum;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use std::sync::Mutex;

/// Magic first line of a results file.
pub const RESULTS_MAGIC: &str = "DTBRES01";

/// Append-only results store: file-backed when opened with a path,
/// memory-only otherwise.
pub struct ResultsStore {
    inner: Mutex<StoreInner>,
}

struct StoreInner {
    file: Option<File>,
    /// `(sweep, cell)` → finalized result. Insertion order is not kept;
    /// queries sort by cell index.
    index: HashMap<(u64, u64), CellResult>,
    /// Chaos fuse: a tripped charge tears the next append mid-record.
    fault: FaultFuse,
}

impl ResultsStore {
    /// A memory-only store (nothing persisted).
    pub fn memory() -> ResultsStore {
        ResultsStore {
            inner: Mutex::new(StoreInner {
                file: None,
                index: HashMap::new(),
                fault: FaultFuse::none(),
            }),
        }
    }

    /// Opens (or creates) a file-backed store at `path`, replaying any
    /// existing records into the index.
    ///
    /// # Errors
    ///
    /// I/O failures opening or creating the file. A corrupt or
    /// truncated *tail* is not an error — replay stops there and later
    /// appends continue after the last good record.
    pub fn open(path: &Path) -> std::io::Result<ResultsStore> {
        let mut index = HashMap::new();
        let existing = match File::open(path) {
            Ok(f) => Some(f),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        // Byte offset of the first byte past the last good record.
        let mut good = 0u64;
        if let Some(f) = existing {
            good = replay(f, &mut index)?;
        }
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false) // keep good records; set_len drops the torn tail
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(good)?;
        use std::io::Seek;
        if good == 0 {
            file.seek(std::io::SeekFrom::Start(0))?;
            file.write_all(RESULTS_MAGIC.as_bytes())?;
            file.write_all(b"\n")?;
        } else {
            file.seek(std::io::SeekFrom::Start(good))?;
        }
        file.sync_data()?;
        Ok(ResultsStore {
            inner: Mutex::new(StoreInner {
                file: Some(file),
                index,
                fault: FaultFuse::none(),
            }),
        })
    }

    /// Opens a file-backed store, falling back to memory-only (with a
    /// note on stderr) when the file cannot be opened — the coordinator
    /// must come up either way.
    pub fn open_or_memory(path: Option<&Path>) -> ResultsStore {
        match path {
            None => ResultsStore::memory(),
            Some(p) => ResultsStore::open(p).unwrap_or_else(|e| {
                eprintln!(
                    "coordinator: results store {} unavailable ({e}); serving from memory",
                    p.display()
                );
                ResultsStore::memory()
            }),
        }
    }

    /// Records one finalized cell. Idempotent per `(sweep, cell)`: a
    /// re-append of an already-stored cell is ignored (the first
    /// durable record won, mirroring the journal's exactly-once line).
    /// File write failures are reported to stderr, never propagated.
    pub fn append(&self, sweep: u64, cell: u64, result: &CellResult) {
        let mut inner = self.lock();
        if inner.index.contains_key(&(sweep, cell)) {
            return;
        }
        let torn = inner.file.is_some() && inner.fault.trip();
        if let Some(file) = &mut inner.file {
            let payload = encode(result);
            let header = format!(
                "{:016x} {sweep} {cell} {}\n",
                checksum(&payload),
                payload.len()
            );
            let write = if torn {
                // Injected crash-mid-append: the header and half the
                // payload land, no separator, no fsync — exactly the
                // torn tail replay is built to drop. The record stays
                // servable from memory; recovery backfills it from the
                // journal.
                eprintln!("coordinator: results append torn by injected fault (sweep {sweep} cell {cell})");
                file.write_all(header.as_bytes())
                    .and_then(|()| file.write_all(&payload[..payload.len() / 2]))
            } else {
                file.write_all(header.as_bytes())
                    .and_then(|()| file.write_all(&payload))
                    .and_then(|()| file.write_all(b"\n"))
                    .and_then(|()| file.sync_data())
            };
            if let Err(e) = write {
                eprintln!("coordinator: results append failed ({e}); record kept in memory");
            }
        }
        inner.index.insert((sweep, cell), result.clone());
    }

    /// Arms a chaos fuse over appends: each tripped charge tears one
    /// record mid-write (header and a half-payload, no separator, no
    /// fsync) — what a crash in the middle of an append leaves behind.
    /// Replay on the next open drops everything from the torn record on;
    /// the coordinator's recovery backfills dropped records from the
    /// journal, which stays the durability story.
    pub fn inject_fault(&self, fault: FaultFuse) {
        self.lock().fault = fault;
    }

    /// One cell's stored result.
    pub fn get(&self, sweep: u64, cell: u64) -> Option<CellResult> {
        self.lock().index.get(&(sweep, cell)).cloned()
    }

    /// All stored cells of one sweep, sorted by cell index.
    pub fn sweep_cells(&self, sweep: u64) -> Vec<(u64, CellResult)> {
        let inner = self.lock();
        let mut cells: Vec<(u64, CellResult)> = inner
            .index
            .iter()
            .filter(|((s, _), _)| *s == sweep)
            .map(|((_, c), r)| (*c, r.clone()))
            .collect();
        cells.sort_by_key(|(c, _)| *c);
        cells
    }

    /// Records stored across all sweeps.
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    /// True when nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Replays a results file into `index`, returning the byte offset just
/// past the last good record (0 when even the magic line is missing or
/// wrong — the file is then rewritten from scratch).
fn replay(file: File, index: &mut HashMap<(u64, u64), CellResult>) -> std::io::Result<u64> {
    let mut r = BufReader::new(file);
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 || line.trim_end() != RESULTS_MAGIC {
        return Ok(0);
    }
    let mut good = line.len() as u64;
    loop {
        line.clear();
        let header_len = r.read_line(&mut line)?;
        if header_len == 0 {
            break;
        }
        let Some((fnv, sweep, cell, len)) = parse_header(line.trim_end()) else {
            break;
        };
        let mut payload = vec![0u8; len];
        if r.read_exact(&mut payload).is_err() {
            break;
        }
        let mut sep = [0u8; 1];
        if r.read_exact(&mut sep).is_err() || sep[0] != b'\n' {
            break;
        }
        if checksum(&payload) != fnv {
            break;
        }
        let Ok(result) = decode::<CellResult>(&payload) else {
            break;
        };
        index.insert((sweep, cell), result);
        good += header_len as u64 + len as u64 + 1;
    }
    Ok(good)
}

fn parse_header(line: &str) -> Option<(u64, u64, u64, usize)> {
    let mut parts = line.split(' ');
    let fnv = u64::from_str_radix(parts.next()?, 16).ok()?;
    let sweep = parts.next()?.parse().ok()?;
    let cell = parts.next()?.parse().ok()?;
    let len: usize = parts.next()?.parse().ok()?;
    if parts.next().is_some() || len > 64 << 20 {
        return None;
    }
    Some((fnv, sweep, cell, len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn result(row: &str, ok: bool) -> CellResult {
        CellResult {
            column: "CFRAC".into(),
            row: row.into(),
            attempts: 1,
            elapsed_ns: 42,
            run: None,
            failure: if ok { None } else { Some("injected".into()) },
            transient: false,
        }
    }

    fn tempfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dtb-res-{tag}-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn memory_store_round_trips_and_sorts() {
        let store = ResultsStore::memory();
        store.append(1, 2, &result("FIXED 1.0", true));
        store.append(1, 0, &result("FULL", true));
        store.append(2, 0, &result("FULL", false));
        assert_eq!(store.len(), 3);
        let cells = store.sweep_cells(1);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0, 0);
        assert_eq!(cells[1].0, 2);
        assert_eq!(
            store.get(2, 0).unwrap().failure.as_deref(),
            Some("injected")
        );
        // Idempotent: a second append of the same cell changes nothing.
        store.append(1, 0, &result("FULL", false));
        assert!(store.get(1, 0).unwrap().failure.is_none());
    }

    #[test]
    fn file_store_survives_reopen() {
        let path = tempfile("reopen");
        std::fs::remove_file(&path).ok();
        {
            let store = ResultsStore::open(&path).unwrap();
            store.append(1, 0, &result("FULL", true));
            store.append(1, 1, &result("FIXED 1.0", false));
        }
        let store = ResultsStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1, 1).unwrap().row, "FIXED 1.0");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_and_appends_continue() {
        let path = tempfile("trunc");
        std::fs::remove_file(&path).ok();
        {
            let store = ResultsStore::open(&path).unwrap();
            store.append(1, 0, &result("FULL", true));
            store.append(1, 1, &result("FIXED 1.0", true));
        }
        // Chop bytes off the tail: the second record becomes garbage.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let store = ResultsStore::open(&path).unwrap();
        assert_eq!(store.len(), 1, "torn tail record must be dropped");
        store.append(1, 1, &result("FIXED 1.0", true));
        drop(store);
        let store = ResultsStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_fault_tears_one_record_and_reopen_drops_it() {
        let path = tempfile("torn");
        std::fs::remove_file(&path).ok();
        {
            let store = ResultsStore::open(&path).unwrap();
            store.append(1, 0, &result("FULL", true));
            store.inject_fault(FaultFuse::charges(1));
            // This append is torn mid-record on disk but stays servable
            // from the in-memory index.
            store.append(1, 1, &result("FIXED 1.0", true));
            assert_eq!(store.len(), 2);
            assert!(store.get(1, 1).is_some());
        }
        // The reopened store drops the torn record — never a garbled one.
        let store = ResultsStore::open(&path).unwrap();
        assert_eq!(store.len(), 1, "torn record must be dropped on replay");
        assert!(store.get(1, 1).is_none());
        // A journal-style backfill re-append restores it durably.
        store.append(1, 1, &result("FIXED 1.0", true));
        drop(store);
        let store = ResultsStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1, 1).unwrap().row, "FIXED 1.0");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = tempfile("corrupt");
        std::fs::remove_file(&path).ok();
        {
            let store = ResultsStore::open(&path).unwrap();
            store.append(1, 0, &result("FULL", true));
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2; // inside the JSON payload
        bytes[last] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let store = ResultsStore::open(&path).unwrap();
        assert_eq!(store.len(), 0);
        std::fs::remove_file(&path).ok();
    }
}
