//! Distributed evaluation service for the DTB matrix.
//!
//! The in-process executor (`dtb_sim::exec::Evaluation`) runs the
//! paper's (program × policy) matrix on one machine. This crate spreads
//! the same matrix across processes and machines without changing what a
//! cell *is*: a **coordinator** ([`Coordinator`]) shards each submitted
//! sweep into cells and leases them out; **workers**
//! ([`worker::run_worker`], the `dtb-worker` binary) lease, simulate,
//! and report back; completions land in the executor's own fsync'd
//! journal format, giving **exactly-once** recording — worker crashes,
//! duplicate completions, and expired-lease stragglers all converge to
//! the matrix a single-process run would have produced, cell for cell.
//!
//! The stack, bottom up:
//!
//! * [`http`] — bounded, never-panicking HTTP/1.1 framing over
//!   `std::net` (no external dependencies);
//! * [`proto`] — the JSON message vocabulary both sides speak;
//! * [`coordinator`] — lease/complete state machine, tenant-fair
//!   scheduling, per-tenant [`SimBudget`](dtb_sim::SimBudget) quotas,
//!   journal-backed finality;
//! * [`worker`] — the lease → run → complete loop with the executor's
//!   deadline and failure taxonomy;
//! * [`client`] — retrying protocol client and reassembly of a served
//!   sweep into the executor's `Matrix` ([`matrix_from_sweep`]);
//! * [`events`] — the `/events` server-push channel: a bounded event
//!   log streamed to followers over chunked transfer, with
//!   [`follow_events`] as the tailing client;
//! * [`results`] — the checksummed append-only store behind
//!   `GET /results`, serving finalized cells while a sweep still runs;
//! * [`fault`] — deterministic network fault injection for the chaos
//!   suites;
//! * [`sweeplog`] — the checksummed sweep-intake log that makes
//!   submissions durable: [`Coordinator::recover`] replays it (plus the
//!   journals and the results store) to rebuild state after a crash,
//!   with lease **epochs** fencing out stale pre-crash workers;
//! * [`chaos`] — seeded, replayable whole-system fault plans
//!   ([`ChaosPlan`]) and the continuity/exactly-once verifiers the
//!   `dtb-chaos` driver and the crash suites share.

pub mod chaos;
pub mod client;
pub mod coordinator;
pub mod events;
pub mod fault;
pub mod http;
pub mod proto;
pub mod results;
pub mod sweeplog;
pub mod worker;

pub use chaos::{
    journal_exactly_once, stream_continuity, ChaosPlan, DiskFaults, FaultFuse, SplitMix64,
};
pub use client::{matrix_from_cells, matrix_from_sweep, Client, SvcError, TcpTransport, Transport};
pub use coordinator::{Coordinator, CoordinatorConfig, RecoveryReport};
pub use events::{follow_events, follow_events_resilient, line_cursor, EventCursor, EventLog};
pub use fault::{FaultPlan, NetFault};
pub use proto::{SweepSpec, TenantStatus, PROTO_VERSION};
pub use results::ResultsStore;
pub use sweeplog::SweepLog;
pub use worker::{idle_backoff, run_worker, serve_healthz, WorkerConfig, WorkerExit, WorkerHealth};
