//! Plain-text table rendering for the `repro_*` binaries.
//!
//! Renders aligned columns with a header row, in the visual style of the
//! paper's tables, with paper-published values shown in brackets next to
//! each measured value.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Renders the table with right-aligned data columns (first column
    /// left-aligned).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String]| {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[0]));
                } else {
                    line.push_str(&format!("  {:>width$}", cell, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats a measured value with the paper's published value in brackets:
/// `"1262 [1262]"`.
pub fn vs_paper(measured: f64, paper: f64) -> String {
    format!("{} [{}]", fmt_num(measured), fmt_num(paper))
}

/// Formats a number with no trailing noise: integers without decimals,
/// small values with one decimal place.
pub fn fmt_num(v: f64) -> String {
    if v >= 100.0 || v == v.trunc() {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(["Collector", "A", "B"]);
        t.row(["FULL", "1", "22"]);
        t.row(["FIXED1", "333", "4"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Collector"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Data columns right-aligned to equal width.
        assert!(lines[2].ends_with(" 22"));
        assert!(lines[3].ends_with("  4"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        TextTable::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(1262.4), "1262");
        assert_eq!(fmt_num(15.0), "15");
        assert_eq!(fmt_num(4.13), "4.1");
        assert_eq!(vs_paper(1260.0, 1262.0), "1260 [1262]");
    }
}
