//! Regenerates Table 4: total kilobytes traced and estimated CPU overhead
//! (percent). Published values in brackets.

use dtb_bench::table::{vs_paper, TextTable};
use dtb_bench::{exit_reporting_failures, full_matrix_cli, paper};
use dtb_core::policy::PolicyKind;
use dtb_trace::programs::Program;
use std::process::ExitCode;

fn main() -> ExitCode {
    println!("Table 4: Total Bytes Traced (Kilobytes) and Estimated CPU Overhead (%)");
    println!("measured [paper]\n");
    let matrix = full_matrix_cli();

    for metric in ["Traced (KB)", "Overhead (%)"] {
        let mut t = TextTable::new(
            std::iter::once("Collector".to_string())
                .chain(Program::ALL.iter().map(|p| p.label().to_string())),
        );
        for kind in PolicyKind::ALL {
            let mut cells = vec![kind.label().to_string()];
            for p in Program::ALL {
                let Some(r) = matrix.get(p, kind) else {
                    cells.push("FAILED".to_string());
                    continue;
                };
                let measured = if metric.starts_with("Traced") {
                    r.traced_kb()
                } else {
                    r.overhead_pct
                };
                let published = paper::table4(kind, p);
                let published = if metric.starts_with("Traced") {
                    published.0
                } else {
                    published.1
                };
                cells.push(vs_paper(measured, published));
            }
            t.row(cells);
        }
        println!("== {metric} ==");
        println!("{}", t.render());
    }
    exit_reporting_failures(&matrix)
}
