//! Regenerates Figure 2: garbage-collector memory use over time.
//!
//! The paper's figure plots storage in use against execution time for a
//! full collector (sawtooth dropping to the live curve `L`) and a dynamic
//! threatening boundary collector (riding above `L` by its tenured
//! garbage, with the boundary moving between scavenges). This binary
//! writes one CSV per collector (`time,mem,live,boundary`) under
//! `target/repro/` and prints a coarse summary.

use dtb_bench::{exit_reporting_failures, RunOpts};
use dtb_core::policy::PolicyKind;
use dtb_sim::engine::SimConfig;
use dtb_sim::exec::Evaluation;
use dtb_trace::programs::Program;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> std::io::Result<ExitCode> {
    let out_dir = Path::new("target/repro");
    fs::create_dir_all(out_dir)?;

    println!("Figure 2: Garbage Collector Memory Use — GHOST(1)");
    println!("curves written to target/repro/fig2_<collector>.csv\n");
    let eval = Evaluation::new()
        .programs([Program::Ghost1])
        .policies([PolicyKind::Full, PolicyKind::DtbMem, PolicyKind::DtbFm])
        .baselines(false)
        .sim_config(SimConfig::paper().with_curve());
    // This binary builds its own evaluation (it needs curves), so it
    // honours the observability flags itself rather than through
    // `matrix_for_opts`.
    let opts = RunOpts::from_args();
    let _capture = opts.capture();
    opts.spawn_follow();
    let matrix = match opts.apply(eval).try_run() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("run journal error: {e}");
            std::process::exit(2);
        }
    };
    dtb_obs::flush();
    let column = matrix.column(Program::Ghost1).expect("requested column");

    for cell in &column.cells {
        let kind = cell.row.policy().expect("collector rows only");
        let Some(run) = cell.run() else {
            println!("== {} == FAILED (no curve written)\n", kind.label());
            continue;
        };
        let path = out_dir.join(format!("fig2_{}.csv", kind.label().to_lowercase()));
        let mut buf = Vec::new();
        run.curve.write_csv(&mut buf)?;
        fs::write(&path, buf)?;

        // Coarse summary: like the figure, memory before/after scavenges.
        println!("== {} ==", kind.label());
        let scavenges: Vec<_> = run
            .curve
            .points()
            .iter()
            .filter(|p| p.boundary.is_some())
            .collect();
        for pair in scavenges.chunks(2).take(6) {
            if let [before, after] = pair {
                println!(
                    "  t={:>9}  Mem {:>8} -> {:>8}  (L={:>8}, TB={:>9})",
                    before.at.as_u64(),
                    before.mem.as_u64(),
                    after.mem.as_u64(),
                    before.live.as_u64(),
                    before.boundary.unwrap().as_u64(),
                );
            }
        }
        println!(
            "  ... {} scavenges total, {} curve points, final mem {} bytes\n",
            run.report.collections,
            run.curve.len(),
            run.curve.points().last().map_or(0, |p| p.mem.as_u64()),
        );
    }
    Ok(exit_reporting_failures(&matrix))
}
