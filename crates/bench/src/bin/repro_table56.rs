//! Regenerates Tables 5 and 6: workload descriptions and allocation
//! behaviour of the programs measured. Published values in brackets.

use dtb_bench::table::{vs_paper, TextTable};
use dtb_trace::programs::Program;
use dtb_trace::stats::TraceStats;

fn main() {
    println!("Table 5: General information about the test programs\n");
    for p in Program::ALL {
        let spec = p.spec();
        println!("{:12} {}", p.label(), spec.description);
    }

    println!("\nTable 6: Allocation Behavior of Programs Measured");
    println!("measured [paper]\n");
    let mut t = TextTable::new([
        "Program",
        "Lines of Source",
        "Exec Time (s)",
        "Total Alloc (MB)",
        "Alloc Rate (KB/s)",
        "Collections",
    ]);
    for p in Program::ALL {
        let prof = p.paper_profile();
        let stats = TraceStats::compute(&p.generate());
        t.row([
            p.label().to_string(),
            format!("{}", prof.source_lines),
            format!("{}", stats.exec_seconds),
            vs_paper(
                stats.total_allocated.as_u64() as f64 / (1024.0 * 1024.0),
                prof.total_alloc as f64 / (1024.0 * 1024.0),
            ),
            format!("{:.0}", stats.alloc_rate / 1024.0),
            vs_paper(stats.collections_at_1mb as f64, prof.collections as f64),
        ]);
    }
    println!("{}", t.render());
    println!("(object count / mean size, synthetic traces)");
    for p in Program::ALL {
        let stats = TraceStats::compute(&p.generate());
        println!(
            "{:12} {:>9} objects, mean {:>5.1} bytes",
            p.label(),
            stats.object_count,
            stats.mean_object_size
        );
    }
}
