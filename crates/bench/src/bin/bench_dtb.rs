//! `bench_dtb`: the end-to-end simulator performance harness.
//!
//! Generates a paper-scale synthetic trace (heavy short-lived churn, a
//! medium-lived band, an immortal ramp and a permanent startup structure
//! — the mixture that keeps a large live set resident), then runs the
//! **six-policy matrix** through the engine up to five times:
//!
//! 1. on the incremental `OracleHeap` with the block-structured drive
//!    loop (the headline configuration);
//! 2. with `block_events(1)` — the per-event reference path — which must
//!    be report-identical to (1); the timing ratio is `block_speedup`
//!    (schema v5);
//! 3. streaming the same records back from an on-disk `DTBCTC01` shard
//!    store through `simulate_source` — must be report-identical to (1),
//!    and its events/second is the streaming-path column;
//! 4. through the intra-cell parallel engine (`Sim::threads(n)`, the
//!    epoch-decomposed drive) whenever the machine has ≥ 2 hardware
//!    threads — must also be report-identical to (1), by the determinism
//!    contract;
//! 5. on the scan-based `NaiveHeap` baseline (the pre-incremental
//!    implementation) unless `--skip-naive`.
//!
//! All passes must produce identical reports — the harness doubles as a
//! differential check at scale — and the naive/incremental timing ratio
//! is the headline speedup.
//!
//! Results are written as JSON (see `BENCH_dtb.json` at the repo root):
//! events/second and ns/scavenge per policy per engine, peak RSS, and the
//! overall speedup. `streaming_peak_rss_delta_bytes` records how much the
//! `VmHWM` high-water rose *during* the streaming pass — near zero by
//! design, since the streaming engine holds only live objects while the
//! in-memory pass already parked the whole trace in RAM (the absolute
//! bound is asserted by the dedicated `stream_smoke` binary, which never
//! materializes a trace). With `--baseline <file>`, the run fails
//! (exit 1) if incremental — or, when both sides recorded it, streaming
//! or parallel — events/second drops below 70% of the recorded baseline
//! — the CI `bench-smoke` job's regression gate.
//! `--expect-parallel-speedup X` additionally fails the run unless the
//! parallel pass beat the serial incremental pass by at least `X`×; CI
//! passes it only on runners with ≥ 4 cores, since the speedup is a
//! property of the hardware, not the code.
//!
//! With `--resume <dir>`, every completed (engine × policy) cell is
//! written to `<dir>` as a checksummed done-file; rerunning with the same
//! `--resume <dir>` after an interruption (including `SIGKILL`) reuses
//! those cells — original timings and all — and only simulates the
//! missing ones. Done-files from a different trace or `--events` count
//! are ignored, and the cross-engine differential checks still compare
//! the full matrices.
//!
//! ```text
//! bench_dtb [--events N] [--out PATH] [--baseline PATH] [--skip-naive]
//!           [--resume DIR] [--threads N] [--expect-parallel-speedup X]
//!           [--thread-curve N] [--events-out PATH]
//! ```
//!
//! `--events-out PATH` captures the run's telemetry stream (scavenge
//! spans, run summaries) to a file — `--events` being taken for the
//! trace event count. Capture perturbs the timings, so the regression
//! gate and the capture flag should not be combined.
//!
//! `--thread-curve N` additionally re-runs the matrix at every thread
//! count from 1 to N and records the speedup curve in the report (schema
//! v4) — point 1 runs through the parallel engine too, so the curve
//! isolates scaling from engine overhead.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use dtb_bench::peak_rss_bytes;
use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::{simulate, simulate_source, Sim, SimConfig};
use dtb_sim::{NaiveHeap, SimReport};
use dtb_trace::ckp::{read_blob, write_blob};
use dtb_trace::event::CompiledTrace;
use dtb_trace::lifetime::{LifetimeDist, SizeDist};
use dtb_trace::synth::{ClassSpec, WorkloadSpec};
use dtb_trace::{ctc, ShardReader};
use serde::{Deserialize, Serialize};

/// Records per shard for the streaming pass's temporary store.
const STORE_STRIDE: u64 = 65_536;

/// Timing for one (policy × engine) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PolicyTiming {
    policy: String,
    seconds: f64,
    scavenges: usize,
    events_per_sec: f64,
    ns_per_scavenge: f64,
}

/// One engine's pass over the whole policy matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct EngineTiming {
    heap: String,
    total_seconds: f64,
    events_per_sec: f64,
    policies: Vec<PolicyTiming>,
}

/// One point of the thread-scaling curve: the full six-policy matrix run
/// at a fixed intra-cell thread count.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ThreadCurvePoint {
    /// Worker threads this point ran with (1 = the serial engine).
    threads: usize,
    /// Wall-clock seconds for the whole matrix at this thread count.
    total_seconds: f64,
    /// Aggregate events/second at this thread count.
    events_per_sec: f64,
    /// Serial-matrix seconds / this point's seconds (≥ 1 means scaling).
    speedup: f64,
}

/// The harness output schema (`BENCH_dtb.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    events: usize,
    total_alloc_bytes: u64,
    trace: String,
    incremental: EngineTiming,
    /// The incremental matrix re-run with `block_events(1)` — every event
    /// routed through the exact per-event engine body. The block-path
    /// reference column: reports must be bit-identical to `incremental`,
    /// and the timing ratio is `block_speedup` (absent in pre-v5
    /// reports).
    per_event: Option<EngineTiming>,
    /// per-event total seconds / incremental (blocked) total seconds —
    /// what the chunked drive loop buys end to end (absent in pre-v5
    /// reports).
    block_speedup: Option<f64>,
    /// The same matrix replayed from an on-disk `DTBCTC01` shard store
    /// (absent in pre-v2 reports; the vendored deserializer maps a
    /// missing field to `None`).
    streaming: Option<EngineTiming>,
    /// The same matrix through the intra-cell parallel engine
    /// (`Sim::threads(n)`); absent in pre-v3 reports and on single-core
    /// machines, where the engine would fall back to serial anyway.
    parallel: Option<EngineTiming>,
    /// Worker threads the parallel pass ran with.
    parallel_threads: Option<usize>,
    /// incremental total seconds / parallel total seconds.
    parallel_speedup: Option<f64>,
    /// Speedup at each thread count from 1 to `--thread-curve N` (absent
    /// in pre-v4 reports and when the flag is not given). Point 1 re-runs
    /// the matrix through `Sim::threads(1)` so the curve's own baseline
    /// shares the parallel engine's fixed costs.
    thread_curve: Option<Vec<ThreadCurvePoint>>,
    naive: Option<EngineTiming>,
    /// naive total seconds / incremental total seconds.
    speedup: Option<f64>,
    peak_rss_bytes: Option<u64>,
    /// How much `VmHWM` rose during the streaming pass. Near zero by
    /// design: the in-memory pass already set the high-water mark, and
    /// streaming replay stays under it (absent in pre-v2 reports).
    streaming_peak_rss_delta_bytes: Option<u64>,
}

/// One completed cell as persisted by `--resume`: the timing and report,
/// tagged with the trace identity so stale done-files (different trace
/// or `--events`) are ignored rather than mixed in.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct SavedCell {
    trace: String,
    events: usize,
    timing: PolicyTiming,
    report: SimReport,
}

/// Per-cell done-files under the `--resume` directory, one checksummed
/// `DTBCKP01` blob per (engine × policy) cell. With no directory
/// configured every operation is a no-op. Loads are best-effort: a
/// missing, corrupt, or mismatched file simply means the cell is
/// simulated again (and its done-file rewritten atomically).
struct CellStore {
    dir: Option<PathBuf>,
    trace: String,
    events: usize,
}

impl CellStore {
    fn path(&self, label: &str, kind: PolicyKind) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{label}-{}.cell", kind.label())))
    }

    fn load(&self, label: &str, kind: PolicyKind) -> Option<(PolicyTiming, SimReport)> {
        let bytes = read_blob(self.path(label, kind)?).ok()?;
        let saved: SavedCell = serde_json::from_str(std::str::from_utf8(&bytes).ok()?).ok()?;
        (saved.trace == self.trace && saved.events == self.events)
            .then_some((saved.timing, saved.report))
    }

    fn save(&self, label: &str, kind: PolicyKind, timing: &PolicyTiming, report: &SimReport) {
        let Some(path) = self.path(label, kind) else {
            return;
        };
        if let Some(dir) = &self.dir {
            let _ = std::fs::create_dir_all(dir);
        }
        let saved = SavedCell {
            trace: self.trace.clone(),
            events: self.events,
            timing: timing.clone(),
            report: report.clone(),
        };
        if let Ok(json) = serde_json::to_string(&saved) {
            if let Err(e) = write_blob(&path, json.as_bytes()) {
                eprintln!("bench_dtb: warning: writing done-file failed: {e}");
            }
        }
    }
}

/// The synthetic benchmark workload, scaled so the steady-state mixture
/// allocates roughly `events` objects (~1 KB mean object) and a 1 MB
/// trigger fires about once per thousand events. The mixture keeps a
/// large long-lived resident set, which is exactly what makes the
/// scan-based heap's O(heap) scavenges expensive.
fn workload(events: usize) -> WorkloadSpec {
    // ~1160 bytes of allocation per object across the mixture (steady
    // state averages ~1 KB objects; the permanent startup ramp uses 8 KB
    // ones), so `events` requested ≈ objects compiled, and the 1 MB
    // trigger fires a little more than once per thousand events.
    let total_alloc = (events as u64).max(1_000) * 1_160;
    WorkloadSpec {
        name: format!("BENCHSYN({}k)", events / 1_000),
        description: "perf-harness mixture: churn + medium band + immortal ramp".into(),
        exec_seconds: 10.0,
        total_alloc,
        initial_permanent: total_alloc / 10,
        initial_object_size: 8_192,
        classes: vec![
            ClassSpec::new(
                "short",
                0.55,
                SizeDist::Uniform { min: 64, max: 2048 },
                LifetimeDist::Exponential { mean: 200_000.0 },
            ),
            ClassSpec::new(
                "medium",
                0.25,
                SizeDist::Uniform { min: 64, max: 2048 },
                LifetimeDist::Exponential { mean: 3_000_000.0 },
            ),
            ClassSpec::new(
                "immortal-ramp",
                0.20,
                SizeDist::Uniform { min: 64, max: 2048 },
                LifetimeDist::Immortal,
            ),
        ],
        phase_period: None,
        seed: 0xD7B_BE1C,
    }
}

/// Runs the six-policy matrix through one engine configuration, timing
/// each policy's full simulation. `simulate_one` owns the choice of heap
/// and event source (in-memory slice or a fresh on-disk cursor per
/// policy).
fn run_matrix(
    label: &str,
    events: usize,
    store: &CellStore,
    mut simulate_one: impl FnMut(PolicyKind) -> Result<dtb_sim::SimRun, String>,
) -> Result<(EngineTiming, Vec<dtb_sim::SimReport>), String> {
    let mut policies = Vec::new();
    let mut reports = Vec::new();
    let mut total = 0.0f64;
    for kind in PolicyKind::ALL {
        if let Some((timing, report)) = store.load(label, kind) {
            eprintln!(
                "[{label}] {:<7} resumed from done-file ({} scavenges)",
                kind.label(),
                report.collections
            );
            total += timing.seconds;
            policies.push(timing);
            reports.push(report);
            continue;
        }
        let start = Instant::now();
        let run = simulate_one(kind).map_err(|e| format!("{label}/{kind}: {e}"))?;
        let seconds = start.elapsed().as_secs_f64();
        total += seconds;
        let scavenges = run.report.collections;
        eprintln!(
            "[{label}] {:<7} {seconds:>8.3}s  {scavenges:>5} scavenges",
            kind.label()
        );
        let timing = PolicyTiming {
            policy: kind.label().to_string(),
            seconds,
            scavenges,
            events_per_sec: events as f64 / seconds.max(1e-9),
            ns_per_scavenge: seconds * 1e9 / (scavenges.max(1) as f64),
        };
        store.save(label, kind, &timing, &run.report);
        policies.push(timing);
        reports.push(run.report);
    }
    Ok((
        EngineTiming {
            heap: label.to_string(),
            total_seconds: total,
            events_per_sec: (events * PolicyKind::ALL.len()) as f64 / total.max(1e-9),
            policies,
        },
        reports,
    ))
}

/// Shards the benchmark trace into a temporary `DTBCTC01` store and
/// replays the whole matrix from it, opening a fresh [`ShardReader`]
/// cursor per policy (sources are consumed by reading).
fn run_matrix_streaming(
    trace: &CompiledTrace,
    policy_cfg: &PolicyConfig,
    sim_cfg: &SimConfig,
    store: &CellStore,
) -> Result<(EngineTiming, Vec<dtb_sim::SimReport>), String> {
    let dir = std::env::temp_dir().join(format!("dtb-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ctc::write_shards(&dir, trace, STORE_STRIDE)
        .map_err(|e| format!("writing shard store: {e}"))?;
    let result = run_matrix("streaming", trace.len(), store, |kind| {
        let mut policy = kind.build(policy_cfg);
        let mut reader =
            ShardReader::open(&dir).map_err(|e| format!("opening shard store: {e}"))?;
        simulate_source(&mut reader, &mut policy, sim_cfg).map_err(|e| e.to_string())
    });
    let _ = std::fs::remove_dir_all(&dir);
    result
}

struct Args {
    events: usize,
    out: String,
    baseline: Option<String>,
    skip_naive: bool,
    resume: Option<PathBuf>,
    /// Worker threads for the parallel pass; 0 means one per core.
    threads: usize,
    /// Minimum parallel-over-serial speedup, enforced when set.
    expect_parallel_speedup: Option<f64>,
    /// Record a speedup curve at 1..=N threads (0 = off).
    thread_curve: usize,
    /// Capture the observability event stream to this file (`--events`
    /// is taken: it is the trace event *count*).
    events_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        events: 1_000_000,
        out: "BENCH_dtb.json".to_string(),
        baseline: None,
        skip_naive: false,
        resume: None,
        threads: 0,
        expect_parallel_speedup: None,
        thread_curve: 0,
        events_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--events" => {
                let v = it.next().ok_or("--events needs a value")?;
                args.events = v.parse().map_err(|_| format!("bad --events: {v}"))?;
            }
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--baseline" => args.baseline = Some(it.next().ok_or("--baseline needs a value")?),
            "--skip-naive" => args.skip_naive = true,
            "--resume" => {
                args.resume = Some(PathBuf::from(it.next().ok_or("--resume needs a value")?));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad --threads: {v}"))?;
            }
            "--thread-curve" => {
                let v = it.next().ok_or("--thread-curve needs a value")?;
                args.thread_curve = v.parse().map_err(|_| format!("bad --thread-curve: {v}"))?;
            }
            "--events-out" => {
                args.events_out = Some(PathBuf::from(
                    it.next().ok_or("--events-out needs a value")?,
                ));
            }
            "--expect-parallel-speedup" => {
                let v = it.next().ok_or("--expect-parallel-speedup needs a value")?;
                args.expect_parallel_speedup = Some(
                    v.parse()
                        .map_err(|_| format!("bad --expect-parallel-speedup: {v}"))?,
                );
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_dtb: {e}");
            eprintln!(
                "usage: bench_dtb [--events N] [--out PATH] [--baseline PATH] [--skip-naive] \
                 [--resume DIR] [--threads N] [--expect-parallel-speedup X] [--thread-curve N] \
                 [--events-out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };

    // `--events-out` opts the whole run into telemetry capture. Without
    // it no sink is installed and the instrumented hot paths stay a
    // single disabled-flag load — the throughput floors measure that.
    let _capture = args
        .events_out
        .as_deref()
        .map(|path| match dtb_obs::FileSink::create(path) {
            Ok(sink) => dtb_obs::install(std::sync::Arc::new(sink)),
            Err(e) => {
                eprintln!(
                    "bench_dtb: cannot capture events to {}: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
        });

    let spec = workload(args.events);
    eprintln!(
        "generating {} (~{} events, {} MB total allocation)…",
        spec.name,
        args.events,
        spec.total_alloc / 1_000_000
    );
    let trace = match spec
        .generate()
        .map_err(|e| e.to_string())
        .and_then(|t| t.compile().map_err(|e| e.to_string()))
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_dtb: trace generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "compiled: {} objects, end clock {:?}",
        trace.len(),
        trace.end
    );

    let policy_cfg = PolicyConfig::paper();
    let sim_cfg = SimConfig::paper().with_invariant_checks(false);
    let store = CellStore {
        dir: args.resume.clone(),
        trace: spec.name.clone(),
        events: trace.len(),
    };

    let (incremental, fast_reports) = match run_matrix("incremental", trace.len(), &store, |kind| {
        let mut policy = kind.build(&policy_cfg);
        simulate(&trace, &mut policy, &sim_cfg).map_err(|e| e.to_string())
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_dtb: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Per-event reference pass: the same matrix with the block path
    // disabled (`block_events(1)` routes every event through the exact
    // per-event body). Reports must be bit-identical to the blocked
    // incremental pass — the block drive loop's determinism contract at
    // benchmark scale — and the timing ratio is the block speedup.
    let (per_event, ref_reports) = match run_matrix("per-event", trace.len(), &store, |kind| {
        let mut policy = kind.build(&policy_cfg);
        Sim::new(sim_cfg)
            .block_events(1)
            .run_trace(&trace, &mut policy)
            .map_err(|e| e.to_string())
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_dtb: {e}");
            return ExitCode::FAILURE;
        }
    };
    if fast_reports != ref_reports {
        eprintln!("bench_dtb: blocked and per-event runs diverged — refusing to report");
        return ExitCode::FAILURE;
    }
    let block_speedup = per_event.total_seconds / incremental.total_seconds.max(1e-9);

    // Streaming pass: same matrix, records read back from an on-disk
    // shard store. VmHWM is already pinned at the in-memory pass's peak,
    // so the delta directly measures whether streaming replay ever
    // exceeded it (it must not — the engine holds only the live set).
    let rss_before_streaming = peak_rss_bytes();
    let (streaming, stream_reports) =
        match run_matrix_streaming(&trace, &policy_cfg, &sim_cfg, &store) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_dtb: {e}");
                return ExitCode::FAILURE;
            }
        };
    let streaming_peak_rss_delta_bytes = peak_rss_bytes()
        .zip(rss_before_streaming)
        .map(|(after, before)| after.saturating_sub(before));
    if fast_reports != stream_reports {
        eprintln!("bench_dtb: incremental and streaming runs diverged — refusing to report");
        return ExitCode::FAILURE;
    }

    // Parallel pass: the same matrix through the epoch-decomposed
    // intra-cell engine. Reports must be bit-identical to serial — the
    // determinism contract — so this doubles as a differential check at
    // benchmark scale. Skipped on single-core machines, where the engine
    // falls back to serial and the timing would only measure noise.
    let threads = if args.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        args.threads
    };
    let mut parallel = None;
    let mut parallel_threads = None;
    let mut parallel_speedup = None;
    if threads >= 2 {
        let label = format!("parallel{threads}");
        let result = run_matrix(&label, trace.len(), &store, |kind| {
            let mut policy = kind.build(&policy_cfg);
            Sim::new(sim_cfg)
                .threads(threads)
                .run_trace(&trace, &mut policy)
                .map_err(|e| e.to_string())
        });
        let (mut timing, par_reports) = match result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_dtb: {e}");
                return ExitCode::FAILURE;
            }
        };
        if fast_reports != par_reports {
            eprintln!("bench_dtb: incremental and parallel runs diverged — refusing to report");
            return ExitCode::FAILURE;
        }
        timing.heap = "parallel".to_string();
        parallel_speedup = Some(incremental.total_seconds / timing.total_seconds.max(1e-9));
        parallel_threads = Some(threads);
        parallel = Some(timing);
    } else {
        eprintln!("bench_dtb: one hardware thread — skipping the parallel pass");
    }

    // Thread-scaling curve: the whole matrix at every thread count from
    // 1 to N. Point 1 goes through the parallel engine too, so the curve
    // measures scaling, not serial-vs-parallel engine overhead; every
    // point must stay report-identical to the serial pass.
    let mut thread_curve = None;
    if args.thread_curve > 0 {
        let curve_base = args.thread_curve.min(64);
        let mut points = Vec::with_capacity(curve_base);
        let mut serial_seconds = None;
        for t in 1..=curve_base {
            let label = format!("curve{t}");
            let result = run_matrix(&label, trace.len(), &store, |kind| {
                let mut policy = kind.build(&policy_cfg);
                Sim::new(sim_cfg)
                    .threads(t)
                    .run_trace(&trace, &mut policy)
                    .map_err(|e| e.to_string())
            });
            let (timing, curve_reports) = match result {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("bench_dtb: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if fast_reports != curve_reports {
                eprintln!(
                    "bench_dtb: {t}-thread curve point diverged from serial — refusing to report"
                );
                return ExitCode::FAILURE;
            }
            let base = *serial_seconds.get_or_insert(timing.total_seconds);
            points.push(ThreadCurvePoint {
                threads: t,
                total_seconds: timing.total_seconds,
                events_per_sec: timing.events_per_sec,
                speedup: base / timing.total_seconds.max(1e-9),
            });
        }
        thread_curve = Some(points);
    }

    let mut naive = None;
    let mut speedup = None;
    if !args.skip_naive {
        let (timing, slow_reports) = match run_matrix("naive", trace.len(), &store, |kind| {
            let mut policy = kind.build(&policy_cfg);
            Sim::new(sim_cfg)
                .heap::<NaiveHeap>()
                .run_trace(&trace, &mut policy)
                .map_err(|e| e.to_string())
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_dtb: {e}");
                return ExitCode::FAILURE;
            }
        };
        // The harness doubles as a differential check at benchmark scale.
        if fast_reports != slow_reports {
            eprintln!("bench_dtb: incremental and naive heap runs diverged — refusing to report");
            return ExitCode::FAILURE;
        }
        speedup = Some(timing.total_seconds / incremental.total_seconds.max(1e-9));
        naive = Some(timing);
    }

    let report = BenchReport {
        schema: "bench_dtb/v5".to_string(),
        events: trace.len(),
        total_alloc_bytes: spec.total_alloc,
        trace: spec.name.clone(),
        incremental,
        per_event: Some(per_event),
        block_speedup: Some(block_speedup),
        streaming: Some(streaming),
        parallel,
        parallel_threads,
        parallel_speedup,
        thread_curve,
        naive,
        speedup,
        peak_rss_bytes: peak_rss_bytes(),
        streaming_peak_rss_delta_bytes,
    };

    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_dtb: serialization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("bench_dtb: writing {} failed: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "incremental: {:.0} events/s ({:.2}× over per-event), streaming: {:.0} events/s{}{}  → {}",
        report.incremental.events_per_sec,
        report.block_speedup.unwrap_or(0.0),
        report
            .streaming
            .as_ref()
            .map(|s| s.events_per_sec)
            .unwrap_or(0.0),
        report
            .parallel
            .as_ref()
            .zip(report.parallel_speedup)
            .map(|(p, s)| {
                format!(
                    ", parallel×{}: {:.0} events/s ({s:.2}× serial)",
                    report.parallel_threads.unwrap_or(0),
                    p.events_per_sec
                )
            })
            .unwrap_or_default(),
        report
            .speedup
            .map(|s| format!(", {s:.1}× over naive"))
            .unwrap_or_default(),
        args.out
    );

    // Hardware gate: the parallel pass must beat serial by the demanded
    // factor. Only meaningful on multi-core runners — CI keys the flag
    // on the core count.
    if let Some(min) = args.expect_parallel_speedup {
        match report.parallel_speedup {
            Some(s) if s >= min => {
                eprintln!("parallel gate ok: {s:.2}× ≥ required {min:.2}×");
            }
            Some(s) => {
                eprintln!(
                    "bench_dtb: REGRESSION — parallel speedup {s:.2}× is below the required \
                     {min:.2}×"
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!(
                    "bench_dtb: --expect-parallel-speedup given but the parallel pass did not \
                     run (one hardware thread?)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // Regression gate: fail when incremental — or streaming, once the
    // baseline records it — throughput drops more than 30% below the
    // recorded baseline.
    if let Some(path) = &args.baseline {
        let baseline: BenchReport = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_dtb: reading baseline {path} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut gates = vec![(
            "incremental",
            report.incremental.events_per_sec,
            baseline.incremental.events_per_sec,
        )];
        if let (Some(ours), Some(theirs)) = (&report.streaming, &baseline.streaming) {
            gates.push(("streaming", ours.events_per_sec, theirs.events_per_sec));
        }
        if let (Some(ours), Some(theirs)) = (&report.parallel, &baseline.parallel) {
            gates.push(("parallel", ours.events_per_sec, theirs.events_per_sec));
        }
        for (label, measured, recorded) in gates {
            if measured < recorded * 0.7 {
                eprintln!(
                    "bench_dtb: REGRESSION — {label} {measured:.0} events/s is below 70% of \
                     baseline {recorded:.0}"
                );
                return ExitCode::FAILURE;
            }
            eprintln!("baseline gate ok: {label} {measured:.0} events/s ≥ 70% of {recorded:.0}");
        }
    }
    ExitCode::SUCCESS
}
