//! `stream_smoke`: proves the streaming pipeline holds bounded memory.
//!
//! Two phases, one process, one `VmHWM` ceiling:
//!
//! 1. **Shard replay** — generates a synthetic event trace (default
//!    300 k events), writes it as a `.dtbtrc` file, runs the streaming
//!    two-pass converter to a `DTBCTC01` shard store, and replays the
//!    store through the engine (`FULL` and `DTBFM`) with fresh
//!    [`ShardReader`] cursors. The raw trace is dropped before replay, so
//!    replay itself runs record-at-a-time.
//! 2. **Unbounded generator** — replays a [`SynthSource`] whose total
//!    allocation (default 4 000 MB) is far more than 10× the largest
//!    in-memory preset (`GHOST(2)`, 104 MiB), with churn-only object
//!    classes so the live set stays small while the record stream is
//!    enormous. Nothing is ever materialized: if the engine or the
//!    oracle heap accumulated per-record state (at the default scale,
//!    roughly 90 MB of index for ~3.8 M objects), this phase would blow
//!    straight through the ceiling.
//!
//! The process then reads its own `VmHWM` high-water mark and **fails
//! (exit 1) if it exceeds `--max-rss-mb`** (default 96 MB — a healthy
//! run peaks near 22 MB). The ceiling is checked in as an explicit flag
//! in the CI `stream-smoke` job, so a regression that breaks the
//! O(live set) bound turns the build red.
//!
//! ```text
//! stream_smoke [--events N] [--synth-mb MB] [--max-rss-mb MB]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use dtb_bench::peak_rss_bytes;
use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::{simulate_source, SimConfig};
use dtb_trace::ctc::convert_trace_file;
use dtb_trace::io::write_trace;
use dtb_trace::lifetime::{LifetimeDist, SizeDist};
use dtb_trace::synth::{ClassSpec, WorkloadSpec};
use dtb_trace::{EventSource, ShardReader, SynthSource};

/// Phase-1 policies: the cheapest boundary (everything threatened) and
/// the most complex one (pause-constrained DTB). The shard store has a
/// fixed size, so even a policy that accumulates tenured garbage stays
/// under the ceiling here.
const SHARD_POLICIES: [PolicyKind; 2] = [PolicyKind::Full, PolicyKind::DtbFm];

/// Phase-2 policies: the stream is arbitrarily long, so only policies
/// whose *simulated* resident set is bounded demonstrate the engine's
/// O(live set) memory — `FULL` reclaims all garbage every scavenge and
/// `DTBMEM` moves the boundary to bound memory. (`DTBFM` trades memory
/// for pauses and legitimately accrues tenured garbage proportional to
/// stream length on a pure-churn workload; the engine must track those
/// residents, so it would hide an engine regression behind policy
/// behaviour.)
const SYNTH_POLICIES: [PolicyKind; 2] = [PolicyKind::Full, PolicyKind::DtbMem];

/// Records per shard for the phase-1 store — small enough that the
/// default 300 k-event trace spans several shards.
const STORE_STRIDE: u64 = 65_536;

/// Phase-1 workload: the same shape as `bench_dtb`'s mixture (churn +
/// medium band + immortal ramp) so shard replay crosses a realistic
/// resident set.
fn shard_workload(events: usize) -> WorkloadSpec {
    let total_alloc = (events as u64).max(1_000) * 1_160;
    WorkloadSpec {
        name: format!("SMOKESYN({}k)", events / 1_000),
        description: "stream-smoke shard phase: churn + medium band + immortal ramp".into(),
        exec_seconds: 10.0,
        total_alloc,
        initial_permanent: total_alloc / 10,
        initial_object_size: 8_192,
        classes: vec![
            ClassSpec::new(
                "short",
                0.55,
                SizeDist::Uniform { min: 64, max: 2048 },
                LifetimeDist::Exponential { mean: 200_000.0 },
            ),
            ClassSpec::new(
                "medium",
                0.25,
                SizeDist::Uniform { min: 64, max: 2048 },
                LifetimeDist::Exponential { mean: 3_000_000.0 },
            ),
            ClassSpec::new(
                "immortal-ramp",
                0.20,
                SizeDist::Uniform { min: 64, max: 2048 },
                LifetimeDist::Immortal,
            ),
        ],
        phase_period: None,
        seed: 0x57EA_4B0A,
    }
}

/// Phase-2 workload: churn only — no immortal ramp, no permanent startup
/// structure — so the live set stays bounded no matter how much the
/// stream allocates in total. Memory growth here could only come from
/// the engine itself.
fn synth_workload(total_mb: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("STREAMSYN({total_mb}M)"),
        description: "stream-smoke generator phase: bounded live set, unbounded stream".into(),
        exec_seconds: 10.0,
        total_alloc: total_mb * 1_000_000,
        initial_permanent: 0,
        initial_object_size: 1_024,
        classes: vec![
            ClassSpec::new(
                "short",
                0.80,
                SizeDist::Uniform { min: 64, max: 2048 },
                LifetimeDist::Exponential { mean: 200_000.0 },
            ),
            ClassSpec::new(
                "medium",
                0.20,
                SizeDist::Uniform { min: 64, max: 2048 },
                LifetimeDist::Exponential { mean: 3_000_000.0 },
            ),
        ],
        phase_period: None,
        seed: 0x57EA_4B0B,
    }
}

/// Streams `make_source`'s records through the engine once per policy,
/// insisting each run actually collected (a run that never scavenges
/// would bound nothing).
fn replay(
    label: &str,
    policies: [PolicyKind; 2],
    mut make_source: impl FnMut() -> Result<Box<dyn EventSource>, String>,
) -> Result<(), String> {
    let policy_cfg = PolicyConfig::paper();
    let sim_cfg = SimConfig::paper().with_invariant_checks(false);
    for kind in policies {
        let mut policy = kind.build(&policy_cfg);
        let mut source = make_source()?;
        let start = Instant::now();
        let run = simulate_source(&mut *source, &mut policy, &sim_cfg)
            .map_err(|e| format!("{label}/{kind}: {e}"))?;
        if run.report.collections == 0 {
            return Err(format!(
                "{label}/{kind}: no scavenges — nothing was exercised"
            ));
        }
        eprintln!(
            "[{label}] {:<7} {:>8.3}s  {:>6} scavenges  live max {:.0} KB",
            kind.label(),
            start.elapsed().as_secs_f64(),
            run.report.collections,
            run.report.mem_max.as_kb(),
        );
    }
    Ok(())
}

struct Args {
    events: usize,
    synth_mb: u64,
    max_rss_mb: u64,
    /// Telemetry capture file (`--events` is taken: the event *count*).
    events_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        events: 300_000,
        synth_mb: 4_000,
        max_rss_mb: 96,
        events_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--events" => {
                let v = value("--events")?;
                args.events = v.parse().map_err(|_| format!("bad --events: {v}"))?;
            }
            "--synth-mb" => {
                let v = value("--synth-mb")?;
                args.synth_mb = v.parse().map_err(|_| format!("bad --synth-mb: {v}"))?;
            }
            "--max-rss-mb" => {
                let v = value("--max-rss-mb")?;
                args.max_rss_mb = v.parse().map_err(|_| format!("bad --max-rss-mb: {v}"))?;
            }
            "--events-out" => {
                args.events_out = Some(std::path::PathBuf::from(value("--events-out")?));
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let scratch = std::env::temp_dir().join(format!("dtb-stream-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).map_err(|e| format!("creating {scratch:?}: {e}"))?;

    // Phase 1: event file → two-pass converter → shard store → replay.
    let spec = shard_workload(args.events);
    eprintln!("phase 1: {} → shard store → streaming replay", spec.name);
    let src = scratch.join("smoke.dtbtrc");
    {
        let trace = spec.generate().map_err(|e| format!("generate: {e}"))?;
        write_trace(&src, &trace).map_err(|e| format!("write {src:?}: {e}"))?;
        // The raw trace drops here; replay below is record-at-a-time.
    }
    let store = scratch.join("store");
    let manifest =
        convert_trace_file(&src, &store, STORE_STRIDE).map_err(|e| format!("convert: {e}"))?;
    eprintln!(
        "store: {} records across {} shards",
        manifest.total_records,
        manifest.shards.len()
    );
    replay("shards", SHARD_POLICIES, || {
        Ok(Box::new(
            ShardReader::open(&store).map_err(|e| format!("open store: {e}"))?,
        ))
    })?;

    // Phase 2: unbounded generator, never materialized.
    let spec = synth_workload(args.synth_mb);
    eprintln!(
        "phase 2: {} on the fly ({} MB total allocation, churn only)",
        spec.name, args.synth_mb
    );
    replay("synth", SYNTH_POLICIES, || {
        Ok(Box::new(
            SynthSource::new(spec.clone()).map_err(|e| format!("synth spec: {e}"))?,
        ))
    })?;

    let _ = std::fs::remove_dir_all(&scratch);

    // The ceiling: the whole process — generation, conversion, and both
    // replay phases — must have stayed under the checked-in bound.
    match peak_rss_bytes() {
        Some(peak) => {
            let ceiling = args.max_rss_mb * 1_000_000;
            eprintln!(
                "peak RSS (VmHWM): {:.1} MB, ceiling {} MB",
                peak as f64 / 1e6,
                args.max_rss_mb
            );
            if peak > ceiling {
                return Err(format!(
                    "peak RSS {peak} bytes exceeds the {ceiling}-byte ceiling — \
                     the streaming pipeline is no longer O(live set)"
                ));
            }
        }
        None => eprintln!("VmHWM unavailable on this platform; ceiling not checked"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stream_smoke: {e}");
            eprintln!(
                "usage: stream_smoke [--events N] [--synth-mb MB] [--max-rss-mb MB] \
                 [--events-out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    // Note: a capture sink buffers in the ring and the file writer, so
    // the RSS ceiling still holds only because the bus is bounded.
    let _capture = args
        .events_out
        .as_deref()
        .map(|path| match dtb_obs::FileSink::create(path) {
            Ok(sink) => dtb_obs::install(std::sync::Arc::new(sink)),
            Err(e) => {
                eprintln!(
                    "stream_smoke: cannot capture events to {}: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
        });
    match run(&args) {
        Ok(()) => {
            eprintln!("stream-smoke ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stream_smoke: {e}");
            ExitCode::FAILURE
        }
    }
}
