//! Regenerates Table 2: mean and maximum memory allocated (kilobytes) for
//! each collector over each workload. Published values in brackets.

use dtb_bench::table::{vs_paper, TextTable};
use dtb_bench::{collector_rows, exit_reporting_failures, full_matrix_cli, paper};
use dtb_core::policy::Row;
use dtb_trace::programs::Program;
use std::process::ExitCode;

fn main() -> ExitCode {
    println!("Table 2: Mean and Maximum Memory Allocated (Kilobytes)");
    println!("measured [paper]\n");
    let matrix = full_matrix_cli();

    for metric in ["Mean", "Max"] {
        let mut t = TextTable::new(
            std::iter::once("Collector".to_string())
                .chain(Program::ALL.iter().map(|p| p.label().to_string())),
        );
        for row in collector_rows() {
            let mut cells = vec![row.to_string()];
            for p in Program::ALL {
                let Some(r) = matrix.get_row(p, &row) else {
                    cells.push("FAILED".to_string());
                    continue;
                };
                let (mean_kb, max_kb) = r.mem_kb();
                let measured = if metric == "Mean" { mean_kb } else { max_kb };
                let published = match &row {
                    Row::Policy(kind) => paper::table2(*kind, p),
                    Row::NoGc => paper::table2_nogc(p),
                    _ => paper::table2_live(p),
                };
                let published = if metric == "Mean" {
                    published.0
                } else {
                    published.1
                };
                cells.push(vs_paper(measured, published));
            }
            t.row(cells);
        }
        println!("== {metric} memory (KB) ==");
        println!("{}", t.render());
    }
    exit_reporting_failures(&matrix)
}
