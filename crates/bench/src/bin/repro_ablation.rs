//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. `DTBMEM`'s live-data estimate `L_est` — the paper takes the midpoint
//!    of `S_{n-1}` and `Trace_{n-1}`; how do the two endpoints behave?
//! 2. The when-to-collect trigger — the paper fixes 1 MB of allocation;
//!    what do memory-growth and memory-ceiling triggers change?
//! 3. The `DTBDUAL` extension — both constraints at once.

use dtb_core::policy::{DtbDual, DtbMem, LiveEstimate, PolicyConfig, PolicyKind};
use dtb_core::time::Bytes;
use dtb_sim::engine::{simulate, SimConfig};
use dtb_sim::error::SimError;
use dtb_sim::trigger::Trigger;
use dtb_trace::programs::Program;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ablation run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SimError> {
    let trace = Program::Espresso2.compiled();
    let sim = SimConfig::paper();

    println!("== Ablation 1: DTBMEM live-data estimate (ESPRESSO(2), 3000 KB budget) ==\n");
    println!(
        "{:>10}  {:>9}  {:>9}  {:>9}  {:>9}",
        "estimate", "mem mean", "mem max", "traced", "overhead"
    );
    for (name, kind) in [
        ("Traced", LiveEstimate::Traced),
        ("Midpoint", LiveEstimate::Midpoint),
        ("Surviving", LiveEstimate::Surviving),
    ] {
        let mut policy = DtbMem::with_estimate(Bytes::from_kb(3000), kind);
        let run = simulate(&trace, &mut policy, &sim)?;
        println!(
            "{:>10}  {:>6.0} KB  {:>6.0} KB  {:>6.0} KB  {:>8.1}%",
            name,
            run.report.mem_kb().0,
            run.report.mem_kb().1,
            run.report.traced_kb(),
            run.report.overhead_pct,
        );
    }
    println!(
        "\nTraced under-estimates live data, running closer to the budget with \
         less tracing;\nSurviving over-estimates, tracing more for extra \
         headroom; Midpoint sits between —\nthe constraint holds under all \
         three, so the design is robust to the estimate."
    );

    println!("\n== Ablation 2: when-to-collect trigger (ESPRESSO(2), DTBMEM) ==\n");
    println!(
        "{:>28}  {:>5}  {:>9}  {:>9}  {:>9}",
        "trigger", "GCs", "mem max", "traced", "overhead"
    );
    for (name, trigger) in [
        ("allocation 1 MB (paper)", Trigger::paper()),
        (
            "allocation 0.5 MB",
            Trigger::Allocation(Bytes::new(500_000)),
        ),
        (
            "memory growth 1.5x",
            Trigger::MemoryGrowth {
                factor: 1.5,
                min_allocation: Bytes::new(100_000),
            },
        ),
        (
            "memory ceiling 3000 KB",
            Trigger::MemoryCeiling(Bytes::from_kb(3000)),
        ),
    ] {
        let cfg = SimConfig {
            trigger,
            ..SimConfig::paper()
        };
        let mut policy = PolicyKind::DtbMem.build(&PolicyConfig::paper());
        let run = simulate(&trace, &mut policy, &cfg)?;
        println!(
            "{:>28}  {:>5}  {:>6.0} KB  {:>6.0} KB  {:>8.1}%",
            name,
            run.report.collections,
            run.report.mem_kb().1,
            run.report.traced_kb(),
            run.report.overhead_pct,
        );
    }
    println!(
        "\nWhat-to-collect (the boundary) and when-to-collect are orthogonal: \
         the memory\nconstraint holds under every trigger; the trigger moves \
         the frequency/overhead point."
    );

    println!("\n== Ablation 3: DTBDUAL — both constraints at once (ESPRESSO(2)) ==\n");
    println!(
        "{:>8}  {:>12}  {:>9}  {:>9}",
        "policy", "median pause", "mem max", "overhead"
    );
    for (name, run) in [
        ("DTBFM", {
            let mut policy = PolicyKind::DtbFm.build(&PolicyConfig::paper());
            simulate(&trace, &mut policy, &sim)?
        }),
        ("DTBMEM", {
            let mut policy = PolicyKind::DtbMem.build(&PolicyConfig::paper());
            simulate(&trace, &mut policy, &sim)?
        }),
        ("DTBDUAL", {
            let mut dual = DtbDual::new(Bytes::new(50_000), Bytes::from_kb(3000));
            simulate(&trace, &mut dual, &sim)?
        }),
    ] {
        println!(
            "{:>8}  {:>9.1} ms  {:>6.0} KB  {:>8.1}%",
            name,
            run.report.pause_median_ms,
            run.report.mem_kb().1,
            run.report.overhead_pct,
        );
    }
    println!(
        "\nDTBDUAL holds the pause budget like DTBFM while staying inside \
         DTBMEM's memory\nceiling whenever both are simultaneously feasible."
    );
    Ok(())
}
