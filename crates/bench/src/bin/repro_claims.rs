//! Checks the paper's Section 6.1 / 6.2 qualitative claims against the
//! regenerated evaluation matrix and prints PASS/FAIL for each.

use dtb_bench::{exit_reporting_failures, full_matrix_cli};
use dtb_core::policy::PolicyKind;
use dtb_sim::exec::Matrix;
use dtb_sim::metrics::SimReport;
use dtb_trace::programs::Program;
use std::process::ExitCode;

fn report(matrix: &Matrix, p: Program, k: PolicyKind) -> Option<&SimReport> {
    matrix.get(p, k)
}

fn check(name: &str, ok: bool, detail: String) {
    println!(
        "[{}] {name}\n       {detail}",
        if ok { "PASS" } else { "FAIL" }
    );
}

fn main() -> ExitCode {
    let matrix = full_matrix_cli();
    let mem_budget_kb = 3000.0;
    println!("Section 6.1/6.2 claims, re-checked on the synthetic traces\n");

    // §6.1: DTBMEM respects the 3000 KB constraint when feasible.
    for p in [
        Program::Ghost1,
        Program::Espresso1,
        Program::Espresso2,
        Program::Cfrac,
    ] {
        let name = format!("DTBMEM max memory <= 3000 KB on {p} (feasible case)");
        let Some(r) = report(&matrix, p, PolicyKind::DtbMem) else {
            check(&name, false, "cell failed to simulate".to_string());
            continue;
        };
        let (_, max_kb) = r.mem_kb();
        check(
            &name,
            max_kb <= mem_budget_kb * 1.01,
            format!("max = {max_kb:.0} KB"),
        );
    }

    // §6.1: over-constrained cases come within ~7% of FULL.
    for p in [Program::Ghost2, Program::Sis] {
        let name = format!("over-constrained DTBMEM within 10% of FULL on {p}");
        let (Some(mem_r), Some(full_r)) = (
            report(&matrix, p, PolicyKind::DtbMem),
            report(&matrix, p, PolicyKind::Full),
        ) else {
            check(&name, false, "cell failed to simulate".to_string());
            continue;
        };
        let (mem, full) = (mem_r.mem_kb().1, full_r.mem_kb().1);
        check(
            &name,
            mem <= full * 1.10,
            format!("DTBMEM {mem:.0} KB vs FULL {full:.0} KB"),
        );
    }

    // §6.1: when feasible, DTBMEM CPU overhead ≈ FIXED1 (the cheap end).
    for p in [Program::Ghost1, Program::Espresso1] {
        // CFRAC is excluded: with only 4 collections the mandatory
        // initial full scavenge dominates every policy's overhead.
        let name = format!("feasible DTBMEM overhead near FIXED1, well under FULL on {p}");
        let (Some(dtb_r), Some(f1_r), Some(full_r)) = (
            report(&matrix, p, PolicyKind::DtbMem),
            report(&matrix, p, PolicyKind::Fixed1),
            report(&matrix, p, PolicyKind::Full),
        ) else {
            check(&name, false, "cell failed to simulate".to_string());
            continue;
        };
        let (dtb, fixed1, full) = (dtb_r.overhead_pct, f1_r.overhead_pct, full_r.overhead_pct);
        check(
            &name,
            dtb <= fixed1 * 2.0 && dtb < full * 0.5,
            format!("DTBMEM {dtb:.1}% vs FIXED1 {fixed1:.1}% vs FULL {full:.1}%"),
        );
    }

    // §6.1: much over-constrained DTBMEM degrades to FULL (SIS).
    {
        let name = "over-constrained DTBMEM degrades to FULL-like overhead on SIS";
        match (
            report(&matrix, Program::Sis, PolicyKind::DtbMem),
            report(&matrix, Program::Sis, PolicyKind::Full),
        ) {
            (Some(dtb_r), Some(full_r)) => {
                let (dtb, full) = (dtb_r.overhead_pct, full_r.overhead_pct);
                check(
                    name,
                    dtb >= full * 0.8,
                    format!("DTBMEM {dtb:.1}% vs FULL {full:.1}%"),
                );
            }
            _ => check(name, false, "cell failed to simulate".to_string()),
        }
    }

    // §6.2: DTBFM median pause is near the 100 ms budget on the
    // allocation-heavy programs.
    for p in [Program::Ghost1, Program::Ghost2, Program::Espresso2] {
        let name = format!("DTBFM median pause within 25% of the 100 ms budget on {p}");
        let Some(r) = report(&matrix, p, PolicyKind::DtbFm) else {
            check(&name, false, "cell failed to simulate".to_string());
            continue;
        };
        let med = r.pause_median_ms;
        check(
            &name,
            (75.0..=125.0).contains(&med),
            format!("median = {med:.1} ms"),
        );
    }

    // §6.2: DTBFM uses no more memory than FEEDMED (it reclaims the
    // tenured garbage FEEDMED strands); ESPRESSO is the paper's showcase.
    for p in [Program::Espresso2, Program::Espresso1] {
        let name = format!("DTBFM mean memory <= FEEDMED on {p}");
        let (Some(dtb_r), Some(fm_r)) = (
            report(&matrix, p, PolicyKind::DtbFm),
            report(&matrix, p, PolicyKind::FeedMed),
        ) else {
            check(&name, false, "cell failed to simulate".to_string());
            continue;
        };
        let (dtb, fm) = (dtb_r.mem_kb().0, fm_r.mem_kb().0);
        check(
            &name,
            dtb <= fm * 1.02,
            format!("DTBFM {dtb:.0} KB vs FEEDMED {fm:.0} KB"),
        );
    }

    // §6.2: DTBFM's 90th percentile is not catastrophically worse than
    // FEEDMED's (interactive response stays comparable).
    for p in [Program::Ghost1, Program::Espresso2] {
        let name = format!("DTBFM p90 pause within 4x of FEEDMED on {p}");
        let (Some(dtb_r), Some(fm_r)) = (
            report(&matrix, p, PolicyKind::DtbFm),
            report(&matrix, p, PolicyKind::FeedMed),
        ) else {
            check(&name, false, "cell failed to simulate".to_string());
            continue;
        };
        let (dtb, fm) = (dtb_r.pause_p90_ms, fm_r.pause_p90_ms);
        check(
            &name,
            dtb <= fm * 4.0,
            format!("DTBFM {dtb:.0} ms vs FEEDMED {fm:.0} ms"),
        );
    }

    exit_reporting_failures(&matrix)
}
