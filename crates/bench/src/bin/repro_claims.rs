//! Checks the paper's Section 6.1 / 6.2 qualitative claims against the
//! regenerated evaluation matrix and prints PASS/FAIL for each.

use dtb_bench::full_matrix;
use dtb_core::policy::PolicyKind;
use dtb_sim::exec::Matrix;
use dtb_sim::metrics::SimReport;
use dtb_trace::programs::Program;

fn report(matrix: &Matrix, p: Program, k: PolicyKind) -> &SimReport {
    matrix.get(p, k).expect("full matrix has every cell")
}

fn check(name: &str, ok: bool, detail: String) {
    println!(
        "[{}] {name}\n       {detail}",
        if ok { "PASS" } else { "FAIL" }
    );
}

fn main() {
    let matrix = full_matrix();
    let mem_budget_kb = 3000.0;
    println!("Section 6.1/6.2 claims, re-checked on the synthetic traces\n");

    // §6.1: DTBMEM respects the 3000 KB constraint when feasible.
    for p in [
        Program::Ghost1,
        Program::Espresso1,
        Program::Espresso2,
        Program::Cfrac,
    ] {
        let r = report(&matrix, p, PolicyKind::DtbMem);
        let (_, max_kb) = r.mem_kb();
        check(
            &format!("DTBMEM max memory <= 3000 KB on {p} (feasible case)"),
            max_kb <= mem_budget_kb * 1.01,
            format!("max = {max_kb:.0} KB"),
        );
    }

    // §6.1: over-constrained cases come within ~7% of FULL.
    for p in [Program::Ghost2, Program::Sis] {
        let mem = report(&matrix, p, PolicyKind::DtbMem).mem_kb().1;
        let full = report(&matrix, p, PolicyKind::Full).mem_kb().1;
        check(
            &format!("over-constrained DTBMEM within 10% of FULL on {p}"),
            mem <= full * 1.10,
            format!("DTBMEM {mem:.0} KB vs FULL {full:.0} KB"),
        );
    }

    // §6.1: when feasible, DTBMEM CPU overhead ≈ FIXED1 (the cheap end).
    for p in [Program::Ghost1, Program::Espresso1] {
        // CFRAC is excluded: with only 4 collections the mandatory
        // initial full scavenge dominates every policy's overhead.
        let dtb = report(&matrix, p, PolicyKind::DtbMem).overhead_pct;
        let fixed1 = report(&matrix, p, PolicyKind::Fixed1).overhead_pct;
        let full = report(&matrix, p, PolicyKind::Full).overhead_pct;
        check(
            &format!("feasible DTBMEM overhead near FIXED1, well under FULL on {p}"),
            dtb <= fixed1 * 2.0 && dtb < full * 0.5,
            format!("DTBMEM {dtb:.1}% vs FIXED1 {fixed1:.1}% vs FULL {full:.1}%"),
        );
    }

    // §6.1: much over-constrained DTBMEM degrades to FULL (SIS).
    {
        let dtb = report(&matrix, Program::Sis, PolicyKind::DtbMem).overhead_pct;
        let full = report(&matrix, Program::Sis, PolicyKind::Full).overhead_pct;
        check(
            "over-constrained DTBMEM degrades to FULL-like overhead on SIS",
            dtb >= full * 0.8,
            format!("DTBMEM {dtb:.1}% vs FULL {full:.1}%"),
        );
    }

    // §6.2: DTBFM median pause is near the 100 ms budget on the
    // allocation-heavy programs.
    for p in [Program::Ghost1, Program::Ghost2, Program::Espresso2] {
        let med = report(&matrix, p, PolicyKind::DtbFm).pause_median_ms;
        check(
            &format!("DTBFM median pause within 25% of the 100 ms budget on {p}"),
            (75.0..=125.0).contains(&med),
            format!("median = {med:.1} ms"),
        );
    }

    // §6.2: DTBFM uses no more memory than FEEDMED (it reclaims the
    // tenured garbage FEEDMED strands); ESPRESSO is the paper's showcase.
    for p in [Program::Espresso2, Program::Espresso1] {
        let dtb = report(&matrix, p, PolicyKind::DtbFm).mem_kb().0;
        let fm = report(&matrix, p, PolicyKind::FeedMed).mem_kb().0;
        check(
            &format!("DTBFM mean memory <= FEEDMED on {p}"),
            dtb <= fm * 1.02,
            format!("DTBFM {dtb:.0} KB vs FEEDMED {fm:.0} KB"),
        );
    }

    // §6.2: DTBFM's 90th percentile is not catastrophically worse than
    // FEEDMED's (interactive response stays comparable).
    for p in [Program::Ghost1, Program::Espresso2] {
        let dtb = report(&matrix, p, PolicyKind::DtbFm).pause_p90_ms;
        let fm = report(&matrix, p, PolicyKind::FeedMed).pause_p90_ms;
        check(
            &format!("DTBFM p90 pause within 4x of FEEDMED on {p}"),
            dtb <= fm * 4.0,
            format!("DTBFM {dtb:.0} ms vs FEEDMED {fm:.0} ms"),
        );
    }
}
