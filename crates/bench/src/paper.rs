//! The paper's published evaluation numbers, embedded for paper-vs-measured
//! comparison in the table printers and in EXPERIMENTS.md.
//!
//! Units follow the paper: Table 2 and Table 4's traced column are
//! kilobytes; Table 3 is milliseconds; Table 4's overhead is percent.

use dtb_core::policy::PolicyKind;
use dtb_trace::programs::Program;

/// One cell of Table 2: (mean KB, max KB).
pub type MemCell = (f64, f64);
/// One cell of Table 3: (median ms, 90th-percentile ms).
pub type PauseCell = (f64, f64);
/// One cell of Table 4: (traced KB, overhead %).
pub type TraceCell = (f64, f64);

/// Index of a program in the tables' column order.
fn col(p: Program) -> usize {
    Program::ALL
        .iter()
        .position(|q| *q == p)
        .expect("known program")
}

/// Index of a collector in the tables' row order.
fn row(k: PolicyKind) -> usize {
    PolicyKind::ALL
        .iter()
        .position(|q| *q == k)
        .expect("known policy")
}

/// Table 2 cell for a collector × program (published values).
pub fn table2(k: PolicyKind, p: Program) -> MemCell {
    // Rows: FULL, FIXED1, FIXED4, DTBMEM, FEEDMED, DTBFM
    // Columns: GHOST(1), GHOST(2), ESPRESSO(1), ESPRESSO(2), SIS, CFRAC
    const T: [[MemCell; 6]; 6] = [
        [
            (1262.0, 2065.0),
            (1807.0, 3033.0),
            (564.0, 1076.0),
            (640.0, 1188.0),
            (4524.0, 6980.0),
            (497.0, 992.0),
        ],
        [
            (1465.0, 2453.0),
            (2130.0, 3632.0),
            (667.0, 1226.0),
            (1577.0, 2837.0),
            (4691.0, 7166.0),
            (498.0, 993.0),
        ],
        [
            (1262.0, 2065.0),
            (1807.0, 3033.0),
            (567.0, 1088.0),
            (760.0, 1372.0),
            (4524.0, 6980.0),
            (497.0, 992.0),
        ],
        [
            (1460.0, 2393.0),
            (1984.0, 3242.0),
            (667.0, 1226.0),
            (1481.0, 2365.0),
            (4552.0, 6980.0),
            (498.0, 993.0),
        ],
        [
            (1316.0, 2125.0),
            (1891.0, 3168.0),
            (620.0, 1137.0),
            (1095.0, 1748.0),
            (4691.0, 7166.0),
            (497.0, 992.0),
        ],
        [
            (1265.0, 2066.0),
            (1839.0, 3078.0),
            (569.0, 1111.0),
            (695.0, 1612.0),
            (4691.0, 7166.0),
            (497.0, 992.0),
        ],
    ];
    T[row(k)][col(p)]
}

/// Table 2's `No GC` row (published values).
pub fn table2_nogc(p: Program) -> MemCell {
    const T: [MemCell; 6] = [
        (24601.0, 49004.0),
        (44243.0, 87681.0),
        (7874.0, 14852.0),
        (45428.0, 104338.0),
        (8346.0, 14542.0),
        (3853.0, 7813.0),
    ];
    T[col(p)]
}

/// Table 2's `LIVE` row (published values).
pub fn table2_live(p: Program) -> MemCell {
    const T: [MemCell; 6] = [
        (777.0, 1118.0),
        (1323.0, 2080.0),
        (89.0, 173.0),
        (160.0, 269.0),
        (4197.0, 6423.0),
        (10.0, 21.0),
    ];
    T[col(p)]
}

/// Table 3 cell (median ms, 90th percentile ms), published values.
pub fn table3(k: PolicyKind, p: Program) -> PauseCell {
    const T: [[PauseCell; 6]; 6] = [
        [
            (1743.0, 2130.0),
            (2720.0, 4108.0),
            (164.0, 197.0),
            (333.0, 387.0),
            (8165.0, 11787.0),
            (15.0, 37.0),
        ],
        [
            (31.0, 102.0),
            (27.0, 139.0),
            (12.0, 111.0),
            (18.0, 68.0),
            (726.0, 1609.0),
            (5.0, 7.0),
        ],
        [
            (120.0, 334.0),
            (150.0, 409.0),
            (20.0, 192.0),
            (28.0, 137.0),
            (2901.0, 4545.0),
            (15.0, 22.0),
        ],
        [
            (34.0, 112.0),
            (200.0, 1345.0),
            (12.0, 111.0),
            (19.0, 68.0),
            (8165.0, 11787.0),
            (5.0, 7.0),
        ],
        [
            (104.0, 143.0),
            (90.0, 188.0),
            (16.0, 111.0),
            (40.0, 93.0),
            (726.0, 1609.0),
            (15.0, 37.0),
        ],
        [
            (106.0, 168.0),
            (97.0, 234.0),
            (53.0, 178.0),
            (93.0, 364.0),
            (726.0, 1609.0),
            (15.0, 37.0),
        ],
    ];
    T[row(k)][col(p)]
}

/// Table 4 cell (traced KB, overhead %), published values.
pub fn table4(k: PolicyKind, p: Program) -> TraceCell {
    const T: [[TraceCell; 6]; 6] = [
        [
            (40153.0, 179.2),
            (119011.0, 203.7),
            (1236.0, 4.1),
            (16389.0, 14.0),
            (57015.0, 385.5),
            (73.0, 0.7),
        ],
        [
            (1373.0, 6.1),
            (2456.0, 4.2),
            (209.0, 0.7),
            (1615.0, 1.4),
            (6610.0, 44.7),
            (19.0, 0.2),
        ],
        [
            (4610.0, 20.5),
            (8590.0, 14.7),
            (487.0, 1.6),
            (2878.0, 2.5),
            (24001.0, 162.3),
            (57.0, 0.6),
        ],
        [
            (1489.0, 6.6),
            (23689.0, 40.5),
            (209.0, 0.7),
            (1662.0, 1.4),
            (50776.0, 343.3),
            (19.0, 0.2),
        ],
        [
            (2641.0, 11.8),
            (4377.0, 7.5),
            (231.0, 0.8),
            (2642.0, 2.3),
            (6610.0, 44.7),
            (73.0, 0.7),
        ],
        [
            (3026.0, 13.5),
            (5585.0, 9.6),
            (684.0, 2.3),
            (8201.0, 7.0),
            (6610.0, 44.7),
            (73.0, 0.7),
        ],
    ];
    T[row(k)][col(p)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lookups_match_spot_checks() {
        assert_eq!(table2(PolicyKind::Full, Program::Ghost1), (1262.0, 2065.0));
        assert_eq!(table2(PolicyKind::DtbFm, Program::Cfrac), (497.0, 992.0));
        assert_eq!(
            table3(PolicyKind::FeedMed, Program::Espresso2),
            (40.0, 93.0)
        );
        assert_eq!(table4(PolicyKind::DtbMem, Program::Sis), (50776.0, 343.3));
        assert_eq!(table2_live(Program::Sis), (4197.0, 6423.0));
        assert_eq!(table2_nogc(Program::Ghost2), (44243.0, 87681.0));
    }

    #[test]
    fn live_row_consistent_with_program_profiles() {
        for p in Program::ALL {
            let (mean_kb, max_kb) = table2_live(p);
            let prof = p.paper_profile();
            assert_eq!(prof.live_mean, (mean_kb as u64) * 1024, "{p} mean");
            assert_eq!(prof.live_max, (max_kb as u64) * 1024, "{p} max");
        }
    }
}
