//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! * `repro_table2` — mean and maximum memory per collector per workload;
//! * `repro_table3` — median and 90th-percentile pause times;
//! * `repro_table4` — total bytes traced and estimated CPU overhead;
//! * `repro_table56` — workload descriptions and allocation behaviour;
//! * `repro_fig2` — the memory-over-time curves (CSV series);
//! * `repro_claims` — the §6.1/§6.2 qualitative claims, checked;
//! * Criterion benches (`benches/`) measure simulator and policy cost.
//!
//! [`paper`] embeds the published numbers so every printer can show
//! paper-vs-measured side by side; [`table`] renders aligned text tables.
//!
//! All the `repro_*` binaries regenerate the matrix through
//! [`Evaluation`]: preset traces compile exactly once per process and the
//! (program × policy) cells fan out over a worker pool, with per-cell
//! progress on stderr. The matrix-driven binaries take
//! `--journal <dir>` / `--resume <dir>` ([`RunOpts`]) to survive
//! interruption: a journaled run that dies — even to `SIGKILL` — resumes
//! losing at most the cells in flight.

pub mod paper;
pub mod table;

/// Peak resident set size (`VmHWM`) from `/proc/self/status`, in bytes
/// (Linux; `None` elsewhere).
///
/// `VmHWM` is the process-lifetime **high-water** mark: it only ever
/// rises. A phase that allocates less than an earlier phase therefore
/// reads a delta of zero — useful for asserting a later phase stayed
/// *under* an earlier peak (`bench_dtb`'s streaming column) or for
/// bounding a whole process (`stream_smoke`), but not for profiling an
/// individual phase in isolation.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

use dtb_core::policy::{PolicyConfig, Row};
use dtb_sim::engine::SimConfig;
use dtb_sim::exec::{Evaluation, Matrix};
use std::path::PathBuf;

/// Crash-safety options shared by the `repro_*` binaries, parsed from
/// the command line:
///
/// * `--journal <dir>` — write a durable run journal while evaluating,
///   so a later `--resume <dir>` can pick up where a crash stopped;
/// * `--resume <dir>` — resume from that journal: cells it records as
///   completed are reused verbatim, only the missing ones are computed
///   (and journaled in turn).
///
/// Unknown flags are rejected with a usage message on stderr and exit
/// code 2, so each binary stays a one-liner.
#[derive(Clone, Debug, Default)]
pub struct RunOpts {
    /// Journal directory, if any.
    pub journal: Option<PathBuf>,
    /// Whether to resume from (rather than overwrite) the journal.
    pub resume: bool,
}

impl RunOpts {
    /// Parses the process arguments; exits with a usage message on
    /// unknown flags.
    pub fn from_args() -> RunOpts {
        let mut opts = RunOpts::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let dir = |it: &mut dyn Iterator<Item = String>| {
                it.next().map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("{flag} needs a directory");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--journal" => {
                    opts.journal = Some(dir(&mut it));
                    opts.resume = false;
                }
                "--resume" => {
                    opts.journal = Some(dir(&mut it));
                    opts.resume = true;
                }
                other => {
                    eprintln!("unknown flag: {other}");
                    eprintln!("usage: [--journal <dir> | --resume <dir>]");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// Applies these options to an evaluation builder.
    pub fn apply(&self, eval: Evaluation) -> Evaluation {
        match &self.journal {
            Some(dir) if self.resume => eval.resume(dir),
            Some(dir) => eval.journal(dir),
            None => eval,
        }
    }
}

/// Runs the full evaluation matrix with the paper's parameters: every
/// collector (plus baselines) over every workload.
///
/// This is the data behind Tables 2, 3 and 4. Cells run in parallel;
/// progress goes to stderr.
pub fn full_matrix() -> Matrix {
    matrix_for(&PolicyConfig::paper(), &SimConfig::paper())
}

/// [`full_matrix`] honouring the `--journal`/`--resume` command-line
/// options — the entry point of the table-regenerating binaries.
pub fn full_matrix_cli() -> Matrix {
    matrix_for_opts(
        &PolicyConfig::paper(),
        &SimConfig::paper(),
        &RunOpts::from_args(),
    )
}

/// Runs the evaluation matrix with explicit parameters.
pub fn matrix_for(cfg: &PolicyConfig, sim: &SimConfig) -> Matrix {
    matrix_for_opts(cfg, sim, &RunOpts::default())
}

/// Runs the evaluation matrix with explicit parameters and crash-safety
/// options. A journal that cannot be written or refuses to resume
/// (version/shape mismatch, corruption) is a hard error: the message
/// goes to stderr and the process exits with code 2.
pub fn matrix_for_opts(cfg: &PolicyConfig, sim: &SimConfig, opts: &RunOpts) -> Matrix {
    let eval = Evaluation::new()
        .policy_config(*cfg)
        .sim_config(*sim)
        .on_cell(|ev| {
            eprintln!(
                "[{:>2}/{}] {} × {} in {:.1?}",
                ev.completed, ev.total, ev.program, ev.row, ev.elapsed
            );
        });
    match opts.apply(eval).try_run() {
        Ok(matrix) => matrix,
        Err(e) => {
            eprintln!("run journal error: {e}");
            std::process::exit(2);
        }
    }
}

/// The rows of Tables 2–4, in order: six collectors, then the baselines
/// that appear only in Table 2.
pub fn collector_rows() -> [Row; 8] {
    Row::table_rows()
}

/// Lists every failed cell on stderr and turns the matrix's completeness
/// into a process exit code.
///
/// The `repro_*` binaries print their tables with failed cells marked
/// (the healthy cells are still useful), then finish through this so a
/// partial run is visible to scripts and CI as a nonzero exit.
pub fn exit_reporting_failures(matrix: &Matrix) -> std::process::ExitCode {
    let failures: Vec<_> = matrix.failures().collect();
    if failures.is_empty() {
        return std::process::ExitCode::SUCCESS;
    }
    eprintln!("\n{} cell(s) failed:", failures.len());
    for f in &failures {
        eprintln!("  {f}");
    }
    std::process::ExitCode::FAILURE
}
