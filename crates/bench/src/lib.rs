//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! * `repro_table2` — mean and maximum memory per collector per workload;
//! * `repro_table3` — median and 90th-percentile pause times;
//! * `repro_table4` — total bytes traced and estimated CPU overhead;
//! * `repro_table56` — workload descriptions and allocation behaviour;
//! * `repro_fig2` — the memory-over-time curves (CSV series);
//! * `repro_claims` — the §6.1/§6.2 qualitative claims, checked;
//! * Criterion benches (`benches/`) measure simulator and policy cost.
//!
//! [`paper`] embeds the published numbers so every printer can show
//! paper-vs-measured side by side; [`table`] renders aligned text tables.
//!
//! All the `repro_*` binaries regenerate the matrix through
//! [`Evaluation`]: preset traces compile exactly once per process and the
//! (program × policy) cells fan out over a worker pool, with per-cell
//! progress on stderr.

pub mod paper;
pub mod table;

/// Peak resident set size (`VmHWM`) from `/proc/self/status`, in bytes
/// (Linux; `None` elsewhere).
///
/// `VmHWM` is the process-lifetime **high-water** mark: it only ever
/// rises. A phase that allocates less than an earlier phase therefore
/// reads a delta of zero — useful for asserting a later phase stayed
/// *under* an earlier peak (`bench_dtb`'s streaming column) or for
/// bounding a whole process (`stream_smoke`), but not for profiling an
/// individual phase in isolation.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

use dtb_core::policy::{PolicyConfig, Row};
use dtb_sim::engine::SimConfig;
use dtb_sim::exec::{Evaluation, Matrix};

/// Runs the full evaluation matrix with the paper's parameters: every
/// collector (plus baselines) over every workload.
///
/// This is the data behind Tables 2, 3 and 4. Cells run in parallel;
/// progress goes to stderr.
pub fn full_matrix() -> Matrix {
    matrix_for(&PolicyConfig::paper(), &SimConfig::paper())
}

/// Runs the evaluation matrix with explicit parameters.
pub fn matrix_for(cfg: &PolicyConfig, sim: &SimConfig) -> Matrix {
    Evaluation::new()
        .policy_config(*cfg)
        .sim_config(*sim)
        .on_cell(|ev| {
            eprintln!(
                "[{:>2}/{}] {} × {} in {:.1?}",
                ev.completed, ev.total, ev.program, ev.row, ev.elapsed
            );
        })
        .run()
}

/// The rows of Tables 2–4, in order: six collectors, then the baselines
/// that appear only in Table 2.
pub fn collector_rows() -> [Row; 8] {
    Row::table_rows()
}

/// Lists every failed cell on stderr and turns the matrix's completeness
/// into a process exit code.
///
/// The `repro_*` binaries print their tables with failed cells marked
/// (the healthy cells are still useful), then finish through this so a
/// partial run is visible to scripts and CI as a nonzero exit.
pub fn exit_reporting_failures(matrix: &Matrix) -> std::process::ExitCode {
    let failures: Vec<_> = matrix.failures().collect();
    if failures.is_empty() {
        return std::process::ExitCode::SUCCESS;
    }
    eprintln!("\n{} cell(s) failed:", failures.len());
    for f in &failures {
        eprintln!("  {f}");
    }
    std::process::ExitCode::FAILURE
}
