//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! * `repro_table2` — mean and maximum memory per collector per workload;
//! * `repro_table3` — median and 90th-percentile pause times;
//! * `repro_table4` — total bytes traced and estimated CPU overhead;
//! * `repro_table56` — workload descriptions and allocation behaviour;
//! * `repro_fig2` — the memory-over-time curves (CSV series);
//! * `repro_claims` — the §6.1/§6.2 qualitative claims, checked;
//! * Criterion benches (`benches/`) measure simulator and policy cost.
//!
//! [`paper`] embeds the published numbers so every printer can show
//! paper-vs-measured side by side; [`table`] renders aligned text tables.
//!
//! All the `repro_*` binaries regenerate the matrix through
//! [`Evaluation`]: preset traces compile exactly once per process and the
//! (program × policy) cells fan out over a worker pool, with per-cell
//! progress on stderr. The matrix-driven binaries take
//! `--journal <dir>` / `--resume <dir>` ([`RunOpts`]) to survive
//! interruption: a journaled run that dies — even to `SIGKILL` — resumes
//! losing at most the cells in flight.

pub mod paper;
pub mod table;

/// Peak resident set size (`VmHWM`) from `/proc/self/status`, in bytes
/// (Linux; `None` elsewhere).
///
/// `VmHWM` is the process-lifetime **high-water** mark: it only ever
/// rises. A phase that allocates less than an earlier phase therefore
/// reads a delta of zero — useful for asserting a later phase stayed
/// *under* an earlier peak (`bench_dtb`'s streaming column) or for
/// bounding a whole process (`stream_smoke`), but not for profiling an
/// individual phase in isolation.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

use dtb_core::policy::{PolicyConfig, Row};
use dtb_sim::engine::SimConfig;
use dtb_sim::exec::{Evaluation, Matrix};
use std::path::PathBuf;

/// Crash-safety and observability options shared by the `repro_*`
/// binaries, parsed from the command line:
///
/// * `--journal <dir>` — write a durable run journal while evaluating,
///   so a later `--resume <dir>` can pick up where a crash stopped;
/// * `--resume <dir>` — resume from that journal: cells it records as
///   completed are reused verbatim, only the missing ones are computed
///   (and journaled in turn);
/// * `--events <path>` — capture the run's full telemetry stream
///   (per-scavenge spans, cell lifecycle) to a file: JSON lines, or the
///   compact binary framing when the path ends in `.bin`;
/// * `--follow <host:port>` — tail a coordinator's `GET /events`
///   server-push stream on stderr while the run proceeds (pairs with
///   `--submit` to watch the distributed workers fill the sweep in).
///
/// Unknown flags are rejected with a usage message on stderr and exit
/// code 2, so each binary stays a one-liner.
#[derive(Clone, Debug, Default)]
pub struct RunOpts {
    /// Journal directory, if any.
    pub journal: Option<PathBuf>,
    /// Whether to resume from (rather than overwrite) the journal.
    pub resume: bool,
    /// Submit the matrix to a running `dtb-coordinator` at this address
    /// instead of evaluating in-process (`--submit HOST:PORT`).
    pub submit: Option<String>,
    /// Capture the observability event stream to this file
    /// (`--events PATH`).
    pub events: Option<PathBuf>,
    /// Tail this coordinator's `/events` stream on stderr
    /// (`--follow HOST:PORT`).
    pub follow: Option<String>,
}

impl RunOpts {
    /// Parses the process arguments; exits with a usage message on
    /// unknown flags.
    pub fn from_args() -> RunOpts {
        let mut opts = RunOpts::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let dir = |it: &mut dyn Iterator<Item = String>| {
                it.next().map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("{flag} needs a path");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--journal" => {
                    opts.journal = Some(dir(&mut it));
                    opts.resume = false;
                }
                "--resume" => {
                    opts.journal = Some(dir(&mut it));
                    opts.resume = true;
                }
                "--submit" => {
                    opts.submit = Some(it.next().unwrap_or_else(|| {
                        eprintln!("--submit needs a coordinator address (host:port)");
                        std::process::exit(2)
                    }));
                }
                "--events" => {
                    opts.events = Some(dir(&mut it));
                }
                "--follow" => {
                    opts.follow = Some(it.next().unwrap_or_else(|| {
                        eprintln!("--follow needs a coordinator address (host:port)");
                        std::process::exit(2)
                    }));
                }
                other => {
                    eprintln!("unknown flag: {other}");
                    eprintln!(
                        "usage: [--journal <dir> | --resume <dir> | --submit <host:port>] \
                         [--events <path>] [--follow <host:port>]"
                    );
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// Applies these options to an evaluation builder.
    pub fn apply(&self, eval: Evaluation) -> Evaluation {
        match &self.journal {
            Some(dir) if self.resume => eval.resume(dir),
            Some(dir) => eval.journal(dir),
            None => eval,
        }
    }

    /// Installs the `--events <path>` capture sink, when asked for.
    ///
    /// The returned guard must outlive the run: dropping it uninstalls
    /// the sink (flushing what the ring still holds). An unwritable
    /// path is a hard error — same contract as a broken journal.
    pub fn capture(&self) -> Option<dtb_obs::SinkGuard> {
        let path = self.events.as_deref()?;
        match dtb_obs::FileSink::create(path) {
            Ok(sink) => Some(dtb_obs::install(std::sync::Arc::new(sink))),
            Err(e) => {
                eprintln!("cannot capture events to {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    /// Starts the `--follow <addr>` tail, when asked for: a background
    /// thread streaming the coordinator's `/events` push channel to
    /// stderr, one JSON event per line. The tail rides out coordinator
    /// restarts (it resumes from its epoch-tagged cursor, so a restart
    /// costs no events and repeats none) and gives up only after a
    /// minute of continuous unreachability — reported on stderr, never
    /// failing the run: the tail is a window, not a dependency.
    pub fn spawn_follow(&self) {
        let Some(addr) = self.follow.clone() else {
            return;
        };
        std::thread::spawn(move || {
            static STOP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
            let followed = dtb_svc::follow_events_resilient(
                &addr,
                dtb_svc::EventCursor::start(),
                std::time::Duration::from_secs(60),
                &STOP,
                |line| {
                    eprintln!("{line}");
                    true
                },
            );
            if let Err(e) = followed {
                eprintln!("--follow {addr}: stream ended: {e}");
            }
        });
    }
}

/// Runs the full evaluation matrix with the paper's parameters: every
/// collector (plus baselines) over every workload.
///
/// This is the data behind Tables 2, 3 and 4. Cells run in parallel;
/// progress goes to stderr.
pub fn full_matrix() -> Matrix {
    matrix_for(&PolicyConfig::paper(), &SimConfig::paper())
}

/// [`full_matrix`] honouring the `--journal`/`--resume` command-line
/// options — the entry point of the table-regenerating binaries.
pub fn full_matrix_cli() -> Matrix {
    matrix_for_opts(
        &PolicyConfig::paper(),
        &SimConfig::paper(),
        &RunOpts::from_args(),
    )
}

/// Runs the evaluation matrix with explicit parameters.
pub fn matrix_for(cfg: &PolicyConfig, sim: &SimConfig) -> Matrix {
    matrix_for_opts(cfg, sim, &RunOpts::default())
}

/// Runs the evaluation matrix with explicit parameters and crash-safety
/// options. A journal that cannot be written or refuses to resume
/// (version/shape mismatch, corruption) is a hard error: the message
/// goes to stderr and the process exits with code 2.
///
/// With `--submit <addr>` the matrix is not evaluated here at all: the
/// sweep goes to a running `dtb-coordinator`, workers do the computing,
/// and the served result is reassembled into the same [`Matrix`] shape —
/// the table printers cannot tell the difference.
pub fn matrix_for_opts(cfg: &PolicyConfig, sim: &SimConfig, opts: &RunOpts) -> Matrix {
    let _capture = opts.capture();
    opts.spawn_follow();
    if let Some(addr) = &opts.submit {
        return matrix_served(addr, cfg, sim);
    }
    // Per-cell progress renders from the observability bus — the same
    // `cell_finished` events a capture file or a coordinator follower
    // sees — rather than from a private callback, so every consumer of
    // the run watches one stream.
    let _progress = progress_sink();
    let eval = Evaluation::new().policy_config(*cfg).sim_config(*sim);
    let matrix = match opts.apply(eval).try_run() {
        Ok(matrix) => matrix,
        Err(e) => {
            eprintln!("run journal error: {e}");
            std::process::exit(2);
        }
    };
    // Drain the ring before the table prints so progress lines and the
    // `--events` capture are complete.
    dtb_obs::flush();
    matrix
}

/// Installs a bus sink that renders cell completions as the classic
/// stderr progress line. The guard keeps instrumentation enabled for
/// the evaluation's duration.
fn progress_sink() -> dtb_obs::SinkGuard {
    dtb_obs::install(std::sync::Arc::new(dtb_obs::FnSink(
        |env: &dtb_obs::Envelope| {
            if let dtb_obs::Event::CellFinished {
                column,
                row,
                elapsed_ns,
                completed,
                total,
                ..
            } = &env.event
            {
                eprintln!(
                    "[{:>2}/{}] {} × {} in {:.1?}",
                    completed,
                    total,
                    column,
                    row,
                    std::time::Duration::from_nanos(*elapsed_ns)
                );
            }
        },
    )))
}

/// Submits the paper matrix to the coordinator at `addr`, waits for the
/// distributed workers to finish it, and reassembles the served sweep.
///
/// The wait survives coordinator restarts: the sweep is durable in the
/// coordinator's sweep log, so after a crash the poll simply resumes
/// against the recovered incarnation. Only a permanent protocol refusal
/// (`4xx`) or a full minute of continuous unreachability exits with
/// code 2 — same contract as a broken journal.
fn matrix_served(addr: &str, cfg: &PolicyConfig, sim: &SimConfig) -> Matrix {
    use dtb_svc::proto::SweepSpec;
    use std::time::{Duration, Instant};
    let spec = SweepSpec {
        tenant: "repro".to_string(),
        programs: dtb_trace::programs::Program::ALL.to_vec(),
        policies: dtb_core::policy::PolicyKind::ALL.to_vec(),
        baselines: true,
        policy: *cfg,
        sim: *sim,
    };
    let mut client = dtb_svc::Client::connect(addr).retry(dtb_sim::exec::RetryPolicy::retries(8));
    let submitted = match client.submit(&spec) {
        Ok(reply) => reply,
        Err(e) => {
            eprintln!("submit to {addr} failed: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "submitted sweep {} ({} cells) to {addr}; waiting for workers",
        submitted.sweep, submitted.cells
    );
    // A restart-tolerant wait: each successful poll resets the outage
    // clock, so only *continuous* downtime counts against the budget.
    let outage_budget = Duration::from_secs(60);
    let mut outage_started: Option<Instant> = None;
    loop {
        match client.sweep(submitted.sweep) {
            Ok(reply) if reply.done => return dtb_svc::matrix_from_sweep(&reply),
            Ok(_) => outage_started = None,
            Err(e @ dtb_svc::SvcError::Protocol { status, .. }) if (400..500).contains(&status) => {
                eprintln!("sweep {} refused: {e}", submitted.sweep);
                std::process::exit(2);
            }
            Err(e) => {
                let started = *outage_started.get_or_insert_with(Instant::now);
                if started.elapsed() >= outage_budget {
                    eprintln!(
                        "sweep {}: coordinator unreachable for {:?}: {e}",
                        submitted.sweep, outage_budget
                    );
                    std::process::exit(2);
                }
                eprintln!(
                    "sweep {}: coordinator away ({e}); retrying until it recovers",
                    submitted.sweep
                );
            }
        }
        std::thread::sleep(Duration::from_millis(500));
    }
}

/// The rows of Tables 2–4, in order: six collectors, then the baselines
/// that appear only in Table 2.
pub fn collector_rows() -> [Row; 8] {
    Row::table_rows()
}

/// Lists every failed cell on stderr and turns the matrix's completeness
/// into a process exit code.
///
/// The `repro_*` binaries print their tables with failed cells marked
/// (the healthy cells are still useful), then finish through this so a
/// partial run is visible to scripts and CI as a nonzero exit.
pub fn exit_reporting_failures(matrix: &Matrix) -> std::process::ExitCode {
    let failed: Vec<_> = matrix
        .cells()
        .filter(|(_, cell)| cell.failure().is_some())
        .collect();
    if failed.is_empty() {
        return std::process::ExitCode::SUCCESS;
    }
    eprintln!("\n{} cell(s) failed:", failed.len());
    for (_, cell) in &failed {
        let failure = cell.failure().expect("filtered to failed cells");
        // One formatter for local and served failures
        // (`CellFailure::render`): a `--submit` run and an in-process
        // run report the same cell identically, provenance prefix
        // aside.
        eprintln!("  {}", failure.render(cell.attempts));
    }
    std::process::ExitCode::FAILURE
}
