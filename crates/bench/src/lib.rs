//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! * `repro_table2` — mean and maximum memory per collector per workload;
//! * `repro_table3` — median and 90th-percentile pause times;
//! * `repro_table4` — total bytes traced and estimated CPU overhead;
//! * `repro_table56` — workload descriptions and allocation behaviour;
//! * `repro_fig2` — the memory-over-time curves (CSV series);
//! * `repro_claims` — the §6.1/§6.2 qualitative claims, checked;
//! * Criterion benches (`benches/`) measure simulator and policy cost.
//!
//! [`paper`] embeds the published numbers so every printer can show
//! paper-vs-measured side by side; [`table`] renders aligned text tables.

pub mod paper;
pub mod table;

use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::SimConfig;
use dtb_sim::metrics::SimReport;
use dtb_sim::run::run_column;
use dtb_trace::programs::Program;

/// Runs the full evaluation matrix with the paper's parameters: every
/// collector (plus baselines) over every workload.
///
/// This is the data behind Tables 2, 3 and 4. Takes a few seconds in
/// release mode.
pub fn full_matrix() -> Vec<(Program, Vec<SimReport>)> {
    matrix_for(&PolicyConfig::paper(), &SimConfig::paper())
}

/// Runs the evaluation matrix with explicit parameters.
pub fn matrix_for(cfg: &PolicyConfig, sim: &SimConfig) -> Vec<(Program, Vec<SimReport>)> {
    Program::ALL
        .iter()
        .map(|p| {
            let trace = p
                .generate()
                .compile()
                .expect("preset traces are well-formed");
            (*p, run_column(&trace, cfg, sim))
        })
        .collect()
}

/// The row labels of Tables 2–4, in order: six collectors, then the
/// baselines that appear only in Table 2.
pub fn collector_rows() -> Vec<&'static str> {
    let mut rows: Vec<&'static str> = PolicyKind::ALL.iter().map(|k| k.label()).collect();
    rows.push("No GC");
    rows.push("LIVE");
    rows
}
