//! Criterion bench for Table 3's data: pause-time measurement of the
//! pause-constrained collectors, plus the cost of the boundary decisions
//! themselves (the policy code that runs at every scavenge).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtb_core::history::{ScavengeHistory, ScavengeRecord};
use dtb_core::policy::{
    DtbFm, FeedMed, NoSurvivalInfo, PolicyConfig, PolicyKind, ScavengeContext, TbPolicy,
};
use dtb_core::time::{Bytes, VirtualTime};
use dtb_sim::engine::{simulate, SimConfig};
use dtb_trace::programs::Program;

fn synthetic_history(n: usize) -> ScavengeHistory {
    (1..=n as u64)
        .map(|i| ScavengeRecord {
            at: VirtualTime::from_bytes(i * 1_000_000),
            boundary: VirtualTime::from_bytes((i - 1) * 1_000_000),
            traced: Bytes::new(40_000 + (i % 7) * 4_000),
            surviving: Bytes::new(500_000 + i * 10_000),
            reclaimed: Bytes::new(400_000),
            mem_before: Bytes::new(900_000 + i * 10_000),
        })
        .collect()
}

fn bench_table3(c: &mut Criterion) {
    let trace = Program::Cfrac.compiled();
    let cfg = PolicyConfig::paper();
    let sim = SimConfig::paper();

    let mut runs = c.benchmark_group("table3/pause_constrained_run_cfrac");
    for kind in [PolicyKind::FeedMed, PolicyKind::DtbFm] {
        runs.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut policy = kind.build(&cfg);
                black_box(simulate(&trace, &mut policy, &sim))
            })
        });
    }
    runs.finish();

    // The per-scavenge decision cost: what the mutator pays in the pause
    // before tracing begins.
    let history = synthetic_history(100);
    let est = NoSurvivalInfo;
    let ctx = ScavengeContext {
        now: VirtualTime::from_bytes(101 * 1_000_000),
        mem_before: Bytes::new(2_000_000),
        history: &history,
        survival: &est,
    };
    let mut decisions = c.benchmark_group("table3/boundary_decision");
    decisions.bench_function("DTBFM", |b| {
        let mut p = DtbFm::new(Bytes::new(50_000));
        b.iter(|| black_box(p.select_boundary(&ctx)))
    });
    decisions.bench_function("FEEDMED", |b| {
        let mut p = FeedMed::new(Bytes::new(50_000));
        b.iter(|| black_box(p.select_boundary(&ctx)))
    });
    decisions.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_table3
}
criterion_main!(benches);
