//! Criterion bench for regenerating Table 2's data: simulating every
//! collector's memory behaviour over a workload.
//!
//! Uses the CFRAC preset (the smallest workload) so a bench iteration is
//! a full six-collector column; the `repro_table2` binary produces the
//! full table over all programs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::{simulate, SimConfig};
use dtb_sim::exec::Evaluation;
use dtb_trace::programs::Program;

fn bench_table2(c: &mut Criterion) {
    let trace = Program::Cfrac.compiled();
    let cfg = PolicyConfig::paper();
    let sim = SimConfig::paper();

    c.bench_function("table2/full_column_cfrac", |b| {
        b.iter(|| {
            black_box(
                Evaluation::new()
                    .trace(trace.clone())
                    .policy_config(cfg)
                    .sim_config(sim)
                    .parallelism(1)
                    .run(),
            )
        })
    });

    let mut per_policy = c.benchmark_group("table2/per_policy_cfrac");
    for kind in PolicyKind::ALL {
        per_policy.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut policy = kind.build(&cfg);
                black_box(simulate(&trace, &mut policy, &sim))
            })
        });
    }
    per_policy.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_table2
}
criterion_main!(benches);
