//! Criterion bench for the real collector (`dtb-heap`): allocation, the
//! write barrier, and scavenges under different boundary policies.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtb_core::policy::PolicyKind;
use dtb_core::time::Bytes;
use dtb_heap::{collect_now, configure, Gc, GcCell, HeapConfig, Trace, Tracer};

struct Node {
    _label: u64,
    next: GcCell<Option<Gc<Node>>>,
}

// SAFETY: `next` is the only Gc-bearing field.
unsafe impl Trace for Node {
    fn trace(&self, t: &mut Tracer) {
        self.next.trace(t);
    }
    fn root(&self) {
        self.next.root();
    }
    fn unroot(&self) {
        self.next.unroot();
    }
}

fn node(label: u64) -> Gc<Node> {
    Gc::new(Node {
        _label: label,
        next: GcCell::new(None),
    })
}

fn bench_heap(c: &mut Criterion) {
    // Auto-collection with a FULL policy and a 4 MB trigger keeps the
    // heap bounded while criterion drives millions of allocations.
    configure(
        HeapConfig::default()
            .with_policy(PolicyKind::Full)
            .with_trigger(Bytes::from_mb(4)),
    );
    c.bench_function("heap/alloc_and_release", |b| b.iter(|| black_box(node(1))));

    configure(HeapConfig::manual_full().with_trigger(Bytes::from_mb(1024)));
    collect_now(); // clear the alloc garbage

    c.bench_function("heap/write_barrier_set", |b| {
        let owner = node(0);
        let target = node(1);
        b.iter(|| {
            owner.next.set(&owner, Some(target.clone()));
        })
    });
    collect_now();

    // Scavenge cost over a linked structure, per policy.
    let mut group = c.benchmark_group("heap/scavenge_1000_nodes");
    for kind in [PolicyKind::Full, PolicyKind::Fixed1, PolicyKind::DtbFm] {
        group.bench_function(kind.label(), |b| {
            configure(
                HeapConfig::manual_full()
                    .with_policy(kind)
                    .with_trigger(Bytes::from_mb(1024)),
            );
            // A live chain of 1000 nodes plus churn garbage.
            let head = node(0);
            let mut cur = head.clone();
            for i in 1..1000 {
                let n = node(i);
                cur.next.set(&cur, Some(n.clone()));
                cur = n;
            }
            b.iter(|| {
                // Some garbage each iteration, then a scavenge.
                for i in 0..50 {
                    let _ = node(10_000 + i);
                }
                black_box(collect_now())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_heap
}
criterion_main!(benches);
