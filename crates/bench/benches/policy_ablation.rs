//! Criterion bench for the ablation axes: DTBMEM's live-data estimators,
//! the when-to-collect triggers, and the dual-constraint policy — the
//! runtime cost of each design variant on the same workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtb_core::policy::{DtbDual, DtbMem, LiveEstimate, PolicyConfig, PolicyKind};
use dtb_core::time::Bytes;
use dtb_sim::engine::{simulate, SimConfig};
use dtb_sim::trigger::Trigger;
use dtb_trace::programs::Program;

fn bench_ablation(c: &mut Criterion) {
    let trace = Program::Cfrac.compiled();

    let mut estimates = c.benchmark_group("ablation/dtbmem_estimate");
    for (name, kind) in [
        ("traced", LiveEstimate::Traced),
        ("midpoint", LiveEstimate::Midpoint),
        ("surviving", LiveEstimate::Surviving),
    ] {
        estimates.bench_function(name, |b| {
            b.iter(|| {
                let mut p = DtbMem::with_estimate(Bytes::from_kb(3000), kind);
                black_box(simulate(&trace, &mut p, &SimConfig::paper()))
            })
        });
    }
    estimates.finish();

    let mut triggers = c.benchmark_group("ablation/trigger");
    for (name, trigger) in [
        ("allocation_1mb", Trigger::paper()),
        (
            "memory_growth_1_5x",
            Trigger::MemoryGrowth {
                factor: 1.5,
                min_allocation: Bytes::new(100_000),
            },
        ),
        (
            "memory_ceiling_3000kb",
            Trigger::MemoryCeiling(Bytes::from_kb(3000)),
        ),
    ] {
        triggers.bench_function(name, |b| {
            let cfg = SimConfig {
                trigger,
                ..SimConfig::paper()
            };
            b.iter(|| {
                let mut policy = PolicyKind::DtbMem.build(&PolicyConfig::paper());
                black_box(simulate(&trace, &mut policy, &cfg))
            })
        });
    }
    triggers.finish();

    c.bench_function("ablation/dtbdual", |b| {
        b.iter(|| {
            let mut p = DtbDual::new(Bytes::new(50_000), Bytes::from_kb(3000));
            black_box(simulate(&trace, &mut p, &SimConfig::paper()))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ablation
}
criterion_main!(benches);
