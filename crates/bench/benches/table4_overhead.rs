//! Criterion bench for Table 4's data: the tracing work each collector
//! performs, measured as simulator throughput per policy, and the oracle
//! heap's scavenge primitives that dominate it.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use dtb_core::policy::{PolicyConfig, PolicyKind, SurvivalEstimator};
use dtb_core::time::VirtualTime;
use dtb_sim::engine::{simulate, SimConfig};
use dtb_sim::heap::{OracleHeap, SimObject};
use dtb_trace::programs::Program;

fn filled_heap(n: u64) -> OracleHeap {
    let mut h = OracleHeap::new();
    for i in 0..n {
        h.insert(SimObject {
            birth: VirtualTime::from_bytes((i + 1) * 64),
            size: 64,
            death: if i % 3 == 0 {
                Some(VirtualTime::from_bytes((i + 1) * 64 + 4_096))
            } else {
                None
            },
        });
    }
    h
}

fn bench_table4(c: &mut Criterion) {
    let trace = Program::Cfrac.compiled();
    let cfg = PolicyConfig::paper();
    let sim = SimConfig::paper();

    // The cheap and expensive ends of the tracing spectrum.
    let mut group = c.benchmark_group("table4/tracing_extremes_cfrac");
    for kind in [PolicyKind::Fixed1, PolicyKind::Full, PolicyKind::DtbMem] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut policy = kind.build(&cfg);
                black_box(simulate(&trace, &mut policy, &sim))
            })
        });
    }
    group.finish();

    // The scavenge primitive: partitioning + reclaiming a 50k-object heap.
    c.bench_function("table4/oracle_heap_full_scavenge_50k", |b| {
        b.iter_batched(
            || filled_heap(50_000),
            |mut h| black_box(h.scavenge(VirtualTime::ZERO, VirtualTime::from_bytes(10_000_000))),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("table4/survival_snapshot_50k", |b| {
        let mut h = filled_heap(50_000);
        let now = VirtualTime::from_bytes(10_000_000);
        b.iter(|| {
            // Borrow the view and answer one boundary query, end to end.
            let snap = h.survival_snapshot(now);
            black_box(snap.surviving_born_after(VirtualTime::from_bytes(1_600_000)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_table4
}
criterion_main!(benches);
