//! Criterion bench for Figure 2's data: simulation with memory-curve
//! recording enabled, and the CSV export path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::{simulate, SimConfig};
use dtb_trace::programs::Program;

fn bench_fig2(c: &mut Criterion) {
    let trace = Program::Cfrac.compiled();
    let cfg = PolicyConfig::paper();

    c.bench_function("fig2/simulate_with_curve_cfrac", |b| {
        let sim = SimConfig::paper().with_curve();
        b.iter(|| {
            let mut policy = PolicyKind::DtbMem.build(&cfg);
            black_box(simulate(&trace, &mut policy, &sim))
        })
    });

    c.bench_function("fig2/curve_overhead_vs_plain_cfrac", |b| {
        let sim = SimConfig::paper();
        b.iter(|| {
            let mut policy = PolicyKind::DtbMem.build(&cfg);
            black_box(simulate(&trace, &mut policy, &sim))
        })
    });

    let sim = SimConfig::paper().with_curve();
    let mut full = PolicyKind::Full.build(&cfg);
    let run = simulate(&trace, &mut full, &sim).expect("ghost1 simulates");
    c.bench_function("fig2/csv_export", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(16 * 1024);
            run.curve.write_csv(&mut out).expect("vec write");
            black_box(out)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig2
}
criterion_main!(benches);
