//! Criterion bench for Figure 2's data: simulation with memory-curve
//! recording enabled, and the CSV export path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtb_core::policy::{PolicyConfig, PolicyKind};
use dtb_sim::engine::SimConfig;
use dtb_sim::run::run_trace;
use dtb_trace::programs::Program;

fn bench_fig2(c: &mut Criterion) {
    let trace = Program::Cfrac
        .generate()
        .compile()
        .expect("preset traces are well-formed");
    let cfg = PolicyConfig::paper();

    c.bench_function("fig2/simulate_with_curve_cfrac", |b| {
        let sim = SimConfig::paper().with_curve();
        b.iter(|| black_box(run_trace(&trace, PolicyKind::DtbMem, &cfg, &sim)))
    });

    c.bench_function("fig2/curve_overhead_vs_plain_cfrac", |b| {
        let sim = SimConfig::paper();
        b.iter(|| black_box(run_trace(&trace, PolicyKind::DtbMem, &cfg, &sim)))
    });

    let sim = SimConfig::paper().with_curve();
    let run = run_trace(&trace, PolicyKind::Full, &cfg, &sim);
    c.bench_function("fig2/csv_export", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(16 * 1024);
            run.curve.write_csv(&mut out).expect("vec write");
            black_box(out)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig2
}
criterion_main!(benches);
