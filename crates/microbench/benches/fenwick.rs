//! Fenwick kernel microbenches: append (push vs block extend), prefix
//! descent, the branchless `lower_bound` descent, and batched point
//! updates vs repeated singles.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use dtb_core::fenwick::Fenwick;
use dtb_microbench::{build_fenwick, Mix};

const N: usize = 100_000;
const BATCH: usize = 4_096;

fn bench_fenwick(c: &mut Criterion) {
    let values: Vec<u64> = {
        let mut rng = Mix::new(3);
        (0..N).map(|_| 16 + rng.next() % 4096).collect()
    };

    let mut group = c.benchmark_group("fenwick/build_100k");
    group.bench_function("push", |b| {
        b.iter(|| {
            let mut tree = Fenwick::with_capacity(N);
            for &v in &values {
                tree.push(v);
            }
            black_box(tree.total())
        })
    });
    group.bench_function("extend_blocks_1024", |b| {
        b.iter(|| {
            let mut tree = Fenwick::with_capacity(N);
            for chunk in values.chunks(1024) {
                tree.extend(chunk.iter().copied());
            }
            black_box(tree.total())
        })
    });
    group.finish();

    let tree = build_fenwick(N, 3);
    let counts: Vec<usize> = {
        let mut rng = Mix::new(17);
        (0..BATCH).map(|_| rng.next() as usize % (N + 1)).collect()
    };
    c.bench_function("fenwick/prefix_4096_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &count in &counts {
                acc = acc.wrapping_add(tree.prefix(count));
            }
            black_box(acc)
        })
    });

    let targets: Vec<u64> = {
        let mut rng = Mix::new(23);
        let total = tree.total();
        (0..BATCH).map(|_| rng.next() % (total + 1)).collect()
    };
    c.bench_function("fenwick/lower_bound_4096_descents", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &target in &targets {
                acc = acc.wrapping_add(tree.lower_bound(target));
            }
            black_box(acc)
        })
    });

    let (slots, deltas): (Vec<u32>, Vec<u64>) = {
        let mut rng = Mix::new(29);
        (0..BATCH)
            .map(|_| ((rng.next() as u32) % N as u32, 1 + rng.next() % 512))
            .unzip()
    };
    let mut group = c.benchmark_group("fenwick/point_updates_4096");
    group.bench_function("add_many", |b| {
        b.iter_batched(
            || build_fenwick(N, 3),
            |mut tree| {
                tree.add_many(&slots, &deltas);
                black_box(tree.total())
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("repeated_add", |b| {
        b.iter_batched(
            || build_fenwick(N, 3),
            |mut tree| {
                for (&slot, &delta) in slots.iter().zip(&deltas) {
                    tree.add(slot as usize, delta);
                }
                black_box(tree.total())
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_fenwick
}
criterion_main!(benches);
