//! Block-vs-record streaming microbenches: `next_block` against the
//! per-record `next_record` loop for every source kind — the in-memory
//! borrowed-column copy, the synthetic generator, and the sharded
//! on-disk decoder.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtb_trace::lifetime::{LifetimeDist, SizeDist};
use dtb_trace::{
    collect_source, ctc, ClassSpec, CompiledSource, CompiledTrace, EventBlock, EventSource,
    ShardReader, SynthSource, WorkloadSpec, DEFAULT_BLOCK_EVENTS,
};
use std::path::PathBuf;

/// Total allocation volume for the bench workload; with the size mix
/// below this compiles to roughly 150k records.
const TOTAL_ALLOC: u64 = 100_000_000;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "microbench-decode".into(),
        description: String::new(),
        exec_seconds: 1.0,
        total_alloc: TOTAL_ALLOC,
        phase_period: None,
        seed: 0xD7B_BE1C,
        initial_permanent: 50_000,
        initial_object_size: 512,
        classes: vec![
            ClassSpec::new(
                "short",
                0.7,
                SizeDist::Uniform {
                    min: 16,
                    max: 4_096,
                },
                LifetimeDist::Exponential { mean: 200_000.0 },
            ),
            ClassSpec::new(
                "immortal",
                0.3,
                SizeDist::Fixed(256),
                LifetimeDist::Immortal,
            ),
        ],
    }
}

/// Drains the source one record at a time; returns (records, byte sum).
fn drain_records(source: &mut (impl EventSource + ?Sized)) -> (usize, u64) {
    let mut n = 0usize;
    let mut bytes = 0u64;
    while let Some(life) = source.next_record().expect("bench sources are clean") {
        n += 1;
        bytes += life.size as u64;
    }
    (n, bytes)
}

/// Drains the source block-at-a-time; returns (records, byte sum).
fn drain_blocks(source: &mut (impl EventSource + ?Sized), block: &mut EventBlock) -> (usize, u64) {
    let mut n = 0usize;
    let mut bytes = 0u64;
    loop {
        let got = source.next_block(block);
        if got == 0 {
            assert!(block.error().is_none(), "bench sources are clean");
            break;
        }
        n += got;
        bytes += block.sizes().iter().map(|&s| s as u64).sum::<u64>();
    }
    (n, bytes)
}

fn temp_store(trace: &CompiledTrace) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtb-microbench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ctc::write_shards(&dir, trace, 1 << 15).expect("write bench store");
    dir
}

fn bench_decode(c: &mut Criterion) {
    let trace = collect_source(&mut SynthSource::new(spec()).expect("valid spec"))
        .expect("synth streams are clean");
    let records = trace.len();
    assert!(records > 50_000, "bench workload too small: {records}");
    let dir = temp_store(&trace);
    let mut block = EventBlock::new(DEFAULT_BLOCK_EVENTS);

    let mut group = c.benchmark_group("decode/compiled");
    group.bench_function("per_record", |b| {
        b.iter(|| black_box(drain_records(&mut CompiledSource::new(&trace))))
    });
    group.bench_function("blocks_1024", |b| {
        b.iter(|| black_box(drain_blocks(&mut CompiledSource::new(&trace), &mut block)))
    });
    group.finish();

    let mut group = c.benchmark_group("decode/synth");
    group.bench_function("per_record", |b| {
        b.iter(|| {
            let mut source = SynthSource::new(spec()).expect("valid spec");
            black_box(drain_records(&mut source))
        })
    });
    group.bench_function("blocks_1024", |b| {
        b.iter(|| {
            let mut source = SynthSource::new(spec()).expect("valid spec");
            black_box(drain_blocks(&mut source, &mut block))
        })
    });
    group.finish();

    // The first open verifies every shard checksum; later opens hit the
    // process-wide memo, so the loop below times pure decode.
    drop(ShardReader::open(&dir).expect("open bench store"));
    let mut group = c.benchmark_group("decode/sharded");
    group.bench_function("per_record", |b| {
        b.iter(|| {
            let mut source = ShardReader::open(&dir).expect("open bench store");
            black_box(drain_records(&mut source))
        })
    });
    group.bench_function("blocks_1024", |b| {
        b.iter(|| {
            let mut source = ShardReader::open(&dir).expect("open bench store");
            black_box(drain_blocks(&mut source, &mut block))
        })
    });
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_decode
}
criterion_main!(benches);
