//! Threatened-tail reduction microbenches: the branch-free
//! `dead_tail_stats` masked accumulate against a branchy scalar walk,
//! plus the widened size-column sum.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtb_core::soa::{dead_tail_stats, sum_sizes};
use dtb_microbench::{births, deaths, sizes};

const N: usize = 1_000_000;

/// The branchy reference the kernel replaces, kept here so regressions
/// in the masked form show up as a shrinking gap.
fn branchy_tail(deaths: &[u64], sizes: &[u32], now: u64) -> (u64, usize) {
    let mut bytes = 0u64;
    let mut count = 0usize;
    for (&death, &size) in deaths.iter().zip(sizes) {
        if death <= now {
            bytes += size as u64;
            count += 1;
        }
    }
    (bytes, count)
}

fn bench_tail_walk(c: &mut Criterion) {
    let s = sizes(N, 5);
    let b = births(&s);
    let d = deaths(&b, 9);
    // A mid-run clock: roughly half the mortal lanes are dead, the worst
    // case for branch prediction in the branchy form.
    let now = b[N / 2];
    assert_eq!(dead_tail_stats(&d, &s, now), branchy_tail(&d, &s, now));

    let mut group = c.benchmark_group("tail_walk/dead_stats_1m");
    group.bench_function("masked", |b| {
        b.iter(|| {
            black_box(dead_tail_stats(
                black_box(&d),
                black_box(&s),
                black_box(now),
            ))
        })
    });
    group.bench_function("branchy", |b| {
        b.iter(|| black_box(branchy_tail(black_box(&d), black_box(&s), black_box(now))))
    });
    group.finish();

    c.bench_function("tail_walk/sum_sizes_1m", |b| {
        b.iter(|| black_box(sum_sizes(black_box(&s))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_tail_walk
}
criterion_main!(benches);
