//! Deterministic workload builders shared by the hot-path kernel
//! microbenches (`benches/fenwick.rs`, `benches/block_decode.rs`,
//! `benches/tail_walk.rs`).
//!
//! The benches exist to keep the block-structured fast paths honest: the
//! branchless Fenwick kernels in [`dtb_core::fenwick`], the chunked
//! [`EventSource::next_block`](dtb_trace::EventSource::next_block)
//! decoders, and the autovectorizable threatened-tail reductions in
//! [`dtb_core::soa`]. The smoke tests below pin each kernel's results on
//! the same large inputs the benches time, so a bench can never drift
//! into measuring a wrong kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dtb_core::fenwick::Fenwick;

/// A tiny deterministic generator (SplitMix64) so workloads are
/// reproducible without pulling the `rand` stand-in into the benches.
#[derive(Clone, Debug)]
pub struct Mix(u64);

impl Mix {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Mix {
        Mix(seed)
    }

    /// The next 64 pseudo-random bits.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `n` pseudo-random object sizes in `[16, 16 + 4096)`.
pub fn sizes(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Mix::new(seed);
    (0..n).map(|_| 16 + (rng.next() % 4096) as u32).collect()
}

/// Strictly increasing births on the allocation clock implied by
/// `sizes` (each birth is the clock after its own allocation).
pub fn births(sizes: &[u32]) -> Vec<u64> {
    let mut clock = 0u64;
    sizes
        .iter()
        .map(|&s| {
            clock += s as u64;
            clock
        })
        .collect()
}

/// Death clocks for the `births`/`sizes` stream: roughly a quarter
/// immortal (`u64::MAX` sentinel), the rest dying an exponential-ish
/// pseudo-random span after birth.
pub fn deaths(births: &[u64], seed: u64) -> Vec<u64> {
    let mut rng = Mix::new(seed);
    births
        .iter()
        .map(|&b| {
            if rng.next().is_multiple_of(4) {
                u64::MAX
            } else {
                b + (rng.next() % 2_000_000)
            }
        })
        .collect()
}

/// A Fenwick tree over `n` pseudo-random slot values.
pub fn build_fenwick(n: usize, seed: u64) -> Fenwick {
    let mut rng = Mix::new(seed);
    let mut tree = Fenwick::with_capacity(n);
    for _ in 0..n {
        tree.push(16 + rng.next() % 4096);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtb_core::soa::{dead_tail_stats, sum_sizes};

    const N: usize = 100_000;

    /// The bench workloads are deterministic and well-formed.
    #[test]
    fn workloads_are_deterministic_and_well_formed() {
        let s1 = sizes(N, 7);
        let s2 = sizes(N, 7);
        assert_eq!(s1, s2);
        let b = births(&s1);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        let d = deaths(&b, 11);
        assert!(b.iter().zip(&d).all(|(&b, &d)| d >= b));
    }

    /// Pins the Fenwick kernels against a scalar reference on the exact
    /// bench workload size.
    #[test]
    fn fenwick_kernels_match_scalar_reference_at_bench_size() {
        let vals: Vec<u64> = sizes(N, 3).iter().map(|&s| s as u64).collect();
        let tree = build_fenwick(N, 3);
        for i in (0..vals.len()).step_by(997) {
            let prefix: u64 = vals[..i].iter().sum();
            assert_eq!(tree.prefix(i), prefix, "prefix({i})");
        }
        assert_eq!(tree.total(), vals.iter().sum::<u64>());
        // lower_bound: first slot taking the cumulative past the target.
        let target = tree.total() / 2;
        let pos = tree.lower_bound(target);
        assert!(tree.prefix(pos) <= target);
        assert!(tree.prefix(pos + 1) > target);
    }

    /// Pins the threatened-tail reduction against a branchy scalar walk
    /// on the exact bench workload.
    #[test]
    fn tail_walk_matches_branchy_reference_at_bench_size() {
        let s = sizes(N, 5);
        let b = births(&s);
        let d = deaths(&b, 9);
        let now = b[N / 2];
        let (bytes, count) = dead_tail_stats(&d, &s, now);
        let mut ref_bytes = 0u64;
        let mut ref_count = 0usize;
        for (&death, &size) in d.iter().zip(&s) {
            if death <= now {
                ref_bytes += size as u64;
                ref_count += 1;
            }
        }
        assert_eq!((bytes, count), (ref_bytes, ref_count));
        assert_eq!(sum_sizes(&s), s.iter().map(|&x| x as u64).sum::<u64>());
    }
}
