//! Property-based tests for the policy framework invariants.

use dtb_core::history::{ScavengeHistory, ScavengeRecord};
use dtb_core::policy::{
    DtbDual, DtbFm, DtbMem, FeedMed, Fixed, Full, LiveEstimate, NoSurvivalInfo, PolicyConfig,
    PolicyKind, ScavengeContext, SurvivalEstimator, TbPolicy,
};
use dtb_core::stats::{SampleStats, WeightedStats};
use dtb_core::time::{Bytes, VirtualTime};
use proptest::prelude::*;

/// An estimator over a birth table, as the simulator would supply.
#[derive(Debug)]
struct TableEstimator {
    entries: Vec<(u64, u64)>, // (birth, surviving size)
}

impl SurvivalEstimator for TableEstimator {
    fn surviving_born_after(&self, tb: VirtualTime) -> Bytes {
        Bytes::new(
            self.entries
                .iter()
                .filter(|(b, _)| VirtualTime::from_bytes(*b) > tb)
                .map(|(_, s)| *s)
                .sum(),
        )
    }
}

/// Builds a plausible random scavenge history: times strictly increasing,
/// each record internally consistent (mem_before = surviving + reclaimed),
/// boundary no later than the scavenge time.
fn history_strategy() -> impl Strategy<Value = ScavengeHistory> {
    prop::collection::vec(
        (
            1u64..=1_000_000,
            0u64..=500_000,
            0u64..=500_000,
            0u64..=500_000,
        ),
        0..12,
    )
    .prop_map(|raw| {
        let mut t = 0u64;
        let mut h = ScavengeHistory::new();
        for (dt, traced, surviving, reclaimed) in raw {
            t += dt;
            h.push(ScavengeRecord {
                at: VirtualTime::from_bytes(t),
                boundary: VirtualTime::from_bytes(t.saturating_sub(dt)),
                traced: Bytes::new(traced),
                surviving: Bytes::new(surviving),
                reclaimed: Bytes::new(reclaimed),
                mem_before: Bytes::new(surviving + reclaimed),
            });
        }
        h
    })
}

fn estimator_strategy() -> impl Strategy<Value = TableEstimator> {
    prop::collection::vec((0u64..=2_000_000, 0u64..=100_000), 0..20)
        .prop_map(|entries| TableEstimator { entries })
}

/// Every policy, under every context, must return a boundary that is (a) no
/// later than `now` and (b) no later than the previous scavenge time — so
/// that every object is traced at least once.
fn assert_legal_boundary(policy: &mut dyn TbPolicy, ctx: &ScavengeContext<'_>) {
    let tb = policy
        .select_boundary(ctx)
        .unwrap_or_else(|e| panic!("{}: select_boundary failed: {e}", policy.name()));
    assert!(
        tb <= ctx.now,
        "{}: boundary {tb:?} later than now {:?}",
        policy.name(),
        ctx.now
    );
    if let Some(prev) = ctx.history.last() {
        assert!(
            tb <= prev.at,
            "{}: boundary {tb:?} later than previous scavenge {:?}",
            policy.name(),
            prev.at
        );
    }
}

proptest! {
    #[test]
    fn all_policies_return_legal_boundaries(
        h in history_strategy(),
        est in estimator_strategy(),
        extra in 1u64..=2_000_000,
        mem in 0u64..=5_000_000,
        trace_max in 0u64..=200_000,
        mem_max in 0u64..=5_000_000,
    ) {
        let now = h.last().map_or(VirtualTime::ZERO, |r| r.at).advance(Bytes::new(extra));
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::new(mem),
            history: &h,
            survival: &est,
        };
        let cfg = PolicyConfig::new(Bytes::new(trace_max), Bytes::new(mem_max));
        for kind in PolicyKind::ALL {
            let mut p = kind.build(&cfg);
            assert_legal_boundary(&mut p, &ctx);
        }
    }

    #[test]
    fn policies_are_deterministic(
        h in history_strategy(),
        est in estimator_strategy(),
        extra in 1u64..=2_000_000,
        mem in 0u64..=5_000_000,
    ) {
        let now = h.last().map_or(VirtualTime::ZERO, |r| r.at).advance(Bytes::new(extra));
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::new(mem),
            history: &h,
            survival: &est,
        };
        let cfg = PolicyConfig::paper();
        for kind in PolicyKind::ALL {
            let a = kind.build(&cfg).select_boundary(&ctx).unwrap();
            let b = kind.build(&cfg).select_boundary(&ctx).unwrap();
            prop_assert_eq!(a, b, "{} not deterministic", kind);
        }
    }

    #[test]
    fn feedmed_never_moves_boundary_backward(
        h in history_strategy(),
        est in estimator_strategy(),
        extra in 1u64..=2_000_000,
        trace_max in 0u64..=200_000,
    ) {
        prop_assume!(!h.is_empty());
        let now = h.last().unwrap().at.advance(Bytes::new(extra));
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::new(0),
            history: &h,
            survival: &est,
        };
        let prev_tb = h.last().unwrap().boundary;
        let tb = FeedMed::new(Bytes::new(trace_max))
            .select_boundary(&ctx)
            .unwrap();
        prop_assert!(tb >= prev_tb, "FEEDMED moved boundary backward: {tb:?} < {prev_tb:?}");
    }

    #[test]
    fn dtbmem_monotone_in_budget(
        h in history_strategy(),
        extra in 1u64..=2_000_000,
        mem in 1u64..=5_000_000,
        budgets in prop::collection::vec(0u64..=10_000_000, 2..6),
    ) {
        prop_assume!(!h.is_empty());
        let now = h.last().unwrap().at.advance(Bytes::new(extra));
        let est = NoSurvivalInfo;
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::new(mem),
            history: &h,
            survival: &est,
        };
        let mut sorted = budgets.clone();
        sorted.sort_unstable();
        let mut prev_tb = VirtualTime::ZERO;
        for b in sorted {
            let tb = DtbMem::new(Bytes::new(b)).select_boundary(&ctx).unwrap();
            prop_assert!(tb >= prev_tb, "larger budget produced older boundary");
            prev_tb = tb;
        }
    }

    #[test]
    fn fixed_k_boundary_is_a_recorded_time_or_zero(
        h in history_strategy(),
        extra in 1u64..=2_000_000,
        k in 1usize..=6,
    ) {
        let now = h.last().map_or(VirtualTime::ZERO, |r| r.at).advance(Bytes::new(extra));
        let est = NoSurvivalInfo;
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::ZERO,
            history: &h,
            survival: &est,
        };
        let tb = Fixed::new(k).select_boundary(&ctx).unwrap();
        let is_recorded = h.iter().any(|r| r.at == tb);
        prop_assert!(tb == VirtualTime::ZERO || is_recorded);
    }

    #[test]
    fn full_is_always_zero(
        h in history_strategy(),
        extra in 1u64..=2_000_000,
    ) {
        let now = h.last().map_or(VirtualTime::ZERO, |r| r.at).advance(Bytes::new(extra));
        let est = NoSurvivalInfo;
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::ZERO,
            history: &h,
            survival: &est,
        };
        prop_assert_eq!(Full::new().select_boundary(&ctx), Ok(VirtualTime::ZERO));
    }

    #[test]
    fn dtbfm_full_budget_slack_never_panics_and_stays_legal(
        h in history_strategy(),
        est in estimator_strategy(),
        extra in 1u64..=2_000_000,
        trace_max in 0u64..=1_000_000,
    ) {
        let now = h.last().map_or(VirtualTime::ZERO, |r| r.at).advance(Bytes::new(extra));
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::ZERO,
            history: &h,
            survival: &est,
        };
        let mut p = DtbFm::new(Bytes::new(trace_max));
        assert_legal_boundary(&mut p, &ctx);
    }

    #[test]
    fn sample_stats_percentiles_bounded_by_min_max(
        samples in prop::collection::vec(-1e12f64..1e12, 1..200),
        p in 0.0f64..=100.0,
    ) {
        let mut s: SampleStats = samples.iter().copied().collect();
        let v = s.percentile(p).unwrap();
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        prop_assert!(v >= min && v <= max);
    }

    #[test]
    fn sample_stats_percentile_monotone(
        samples in prop::collection::vec(-1e12f64..1e12, 1..100),
        p1 in 0.0f64..=100.0,
        p2 in 0.0f64..=100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let mut s: SampleStats = samples.iter().copied().collect();
        prop_assert!(s.percentile(lo).unwrap() <= s.percentile(hi).unwrap());
    }

    #[test]
    fn weighted_mean_between_min_and_max_value(
        points in prop::collection::vec((0.0f64..1e9, 0.0f64..1e6), 1..100),
    ) {
        let mut w = WeightedStats::new();
        for (v, wt) in &points {
            w.record(*v, *wt);
        }
        if let Some(mean) = w.mean() {
            let max = points.iter().map(|(v, _)| *v).fold(f64::MIN, f64::max);
            let min = points
                .iter()
                .filter(|(_, wt)| *wt > 0.0)
                .map(|(v, _)| *v)
                .fold(f64::MAX, f64::min);
            prop_assert!(mean <= max * (1.0 + 1e-9));
            prop_assert!(mean >= min * (1.0 - 1e-9) - 1e-9);
        }
    }

    #[test]
    fn bytes_midpoint_between_operands(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        let m = Bytes::new(a).midpoint(Bytes::new(b));
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.as_u64() >= lo && m.as_u64() <= hi);
    }
}

proptest! {
    #[test]
    fn dual_policy_returns_legal_boundaries(
        h in history_strategy(),
        est in estimator_strategy(),
        extra in 1u64..=2_000_000,
        mem in 0u64..=5_000_000,
        trace_max in 0u64..=200_000,
        mem_max in 0u64..=5_000_000,
    ) {
        let now = h.last().map_or(VirtualTime::ZERO, |r| r.at).advance(Bytes::new(extra));
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::new(mem),
            history: &h,
            survival: &est,
        };
        let mut p = DtbDual::new(Bytes::new(trace_max), Bytes::new(mem_max));
        assert_legal_boundary(&mut p, &ctx);
    }

    #[test]
    fn dual_boundary_never_older_than_dtbmem_alone(
        h in history_strategy(),
        est in estimator_strategy(),
        extra in 1u64..=2_000_000,
        mem in 0u64..=5_000_000,
        trace_max in 0u64..=200_000,
        mem_max in 0u64..=5_000_000,
    ) {
        // The pause budget can only advance (never deepen) the memory
        // policy's boundary.
        let now = h.last().map_or(VirtualTime::ZERO, |r| r.at).advance(Bytes::new(extra));
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::new(mem),
            history: &h,
            survival: &est,
        };
        let dual = DtbDual::new(Bytes::new(trace_max), Bytes::new(mem_max))
            .select_boundary(&ctx)
            .unwrap();
        let mem_only = DtbMem::new(Bytes::new(mem_max)).select_boundary(&ctx).unwrap();
        prop_assert!(dual >= mem_only);
    }

    #[test]
    fn estimator_variants_all_yield_legal_boundaries(
        h in history_strategy(),
        extra in 1u64..=2_000_000,
        mem in 0u64..=5_000_000,
        mem_max in 0u64..=5_000_000,
    ) {
        let now = h.last().map_or(VirtualTime::ZERO, |r| r.at).advance(Bytes::new(extra));
        let est = NoSurvivalInfo;
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::new(mem),
            history: &h,
            survival: &est,
        };
        for kind in [LiveEstimate::Traced, LiveEstimate::Midpoint, LiveEstimate::Surviving] {
            let mut p = DtbMem::with_estimate(Bytes::new(mem_max), kind);
            assert_legal_boundary(&mut p, &ctx);
        }
    }

    #[test]
    fn degenerate_contexts_never_error(
        h in history_strategy(),
        extra in 1u64..=2_000_000,
    ) {
        // Zero budgets, an empty heap, and (possibly) an empty history:
        // every division-by-zero hazard at once. Policies must degrade
        // (typically to a full collection), never fail or panic.
        let now = h.last().map_or(VirtualTime::ZERO, |r| r.at).advance(Bytes::new(extra));
        let est = NoSurvivalInfo;
        let ctx = ScavengeContext {
            now,
            mem_before: Bytes::ZERO,
            history: &h,
            survival: &est,
        };
        let cfg = PolicyConfig::new(Bytes::ZERO, Bytes::ZERO);
        for kind in PolicyKind::ALL {
            let mut p = kind.build(&cfg);
            assert_legal_boundary(&mut p, &ctx);
        }
        let mut dual = DtbDual::new(Bytes::ZERO, Bytes::ZERO);
        assert_legal_boundary(&mut dual, &ctx);
    }
}
