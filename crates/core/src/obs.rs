//! The core-side observability facade: a runtime flag and a few
//! thread-local counters, nothing else.
//!
//! `dtb-core` stays dependency-free, so it cannot talk to the event bus
//! (`dtb-obs`) directly. Instead it exposes this facade: the bus flips
//! [`set_enabled`] when the first sink is installed, and the hot paths in
//! core (the survival estimator's inverse query) call the `note_*`
//! functions, which are `#[inline]` and collapse to a single relaxed
//! load-and-branch when observability is off. The engine drains the
//! counters at each scavenge ([`take_inverse_queries`]) and attaches them
//! to the scavenge span event.
//!
//! Counters are **thread-local** because one process runs many
//! simulation cells concurrently (the executor's worker pool): a global
//! counter would attribute one cell's estimator traffic to another. The
//! engine's drive loop — serial, blocked, or the parallel engine's drive
//! pass — runs each cell's boundary decisions on a single thread, so
//! thread-locality is exactly cell-locality.

use core::cell::Cell;
use core::sync::atomic::{AtomicBool, Ordering};

/// Whether any event sink is installed. Written by the bus
/// (`dtb-obs`), read by every instrumentation point.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when an event sink is installed and instrumentation should
/// count/emit. One relaxed load; the disabled path does nothing else.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flips the global instrumentation flag. Called by the event bus when
/// sinks are installed/removed; callers other than the bus should not
/// need this.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

thread_local! {
    /// (inverse-query calls, candidate/descent probes) since the last
    /// [`take_inverse_queries`] on this thread.
    static INVERSE: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Records one `oldest_boundary_within` invocation that examined
/// `probes` candidates (the default scan) or performed `probes` index
/// descents (the Fenwick implementation, always 1).
///
/// No-op unless [`enabled`]. Implementations must call this exactly once
/// per invocation so the per-scavenge call count is an engine-invariant
/// (the probe count is allowed to differ between estimator
/// implementations).
#[inline]
pub fn note_inverse_query(probes: u64) {
    if enabled() {
        INVERSE.with(|c| {
            let (calls, p) = c.get();
            c.set((calls + 1, p + probes));
        });
    }
}

/// Drains this thread's inverse-query counters:
/// `(calls, probes)` since the previous take.
pub fn take_inverse_queries() -> (u64, u64) {
    INVERSE.with(|c| c.replace((0, 0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_notes_are_no_ops() {
        set_enabled(false);
        take_inverse_queries();
        note_inverse_query(5);
        assert_eq!(take_inverse_queries(), (0, 0));
    }

    #[test]
    fn enabled_notes_accumulate_and_drain() {
        set_enabled(true);
        take_inverse_queries();
        note_inverse_query(3);
        note_inverse_query(1);
        assert_eq!(take_inverse_queries(), (2, 4));
        assert_eq!(take_inverse_queries(), (0, 0));
        set_enabled(false);
    }
}
