//! The Demers et al. formal model: threatened and immune sets.
//!
//! Demers, Weiser, Hayes, Boehm, Bobrow and Shenker's framework describes
//! any (partially) generational collection as a partition of the object
//! space into a *threatened* set — objects the collector traces and can
//! reclaim — and an *immune* set — objects guaranteed to survive this
//! collection unexamined. The dynamic threatening boundary instantiates the
//! partition by birth time; this module provides that classification plus
//! the write-barrier predicate shared by the simulator and the real heap.

use crate::time::VirtualTime;
use serde::{Deserialize, Serialize};

/// Which side of the threatening boundary an object falls on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetMembership {
    /// Born after the boundary: traced this scavenge, reclaimable.
    Threatened,
    /// Born at or before the boundary: survives unexamined.
    Immune,
}

/// Classifies an object by birth time against a boundary.
///
/// The convention throughout this workspace: an object is **threatened iff
/// it was born strictly after the boundary**. A boundary of
/// [`VirtualTime::ZERO`] therefore threatens everything except objects born
/// at the very first allocation instant — and since births are assigned
/// *after* the clock advances past zero, in practice everything.
///
/// # Example
///
/// ```
/// use dtb_core::framework::{classify, SetMembership};
/// use dtb_core::time::VirtualTime;
///
/// let tb = VirtualTime::from_bytes(1000);
/// assert_eq!(classify(VirtualTime::from_bytes(1500), tb), SetMembership::Threatened);
/// assert_eq!(classify(VirtualTime::from_bytes(1000), tb), SetMembership::Immune);
/// assert_eq!(classify(VirtualTime::from_bytes(500), tb), SetMembership::Immune);
/// ```
pub fn classify(birth: VirtualTime, boundary: VirtualTime) -> SetMembership {
    if birth > boundary {
        SetMembership::Threatened
    } else {
        SetMembership::Immune
    }
}

/// True when a pointer from `src_birth` to `dst_birth` points
/// **forward in time** (old → young).
///
/// The DTB collector keeps a *single* remembered set holding all
/// forward-in-time pointers, because any of them could cross a future
/// boundary. Classic generational collectors only remember pointers that
/// cross a generation boundary; with a movable boundary every old→young
/// pointer is potentially boundary-crossing.
pub fn is_forward_in_time(src_birth: VirtualTime, dst_birth: VirtualTime) -> bool {
    src_birth < dst_birth
}

/// True when a pointer must be recorded in the remembered set, given a
/// minimum boundary `tb_min` the collector promises never to go above
/// (never to make younger objects immune).
///
/// Figure 1's pointer *a*: a forward-in-time pointer whose *source* is
/// younger than `tb_min` can never cross the boundary (both ends will
/// always be threatened together), so it need not be remembered.
pub fn must_remember(src_birth: VirtualTime, dst_birth: VirtualTime, tb_min: VirtualTime) -> bool {
    is_forward_in_time(src_birth, dst_birth) && src_birth <= tb_min
}

/// True when a remembered pointer is a *root* for a scavenge with boundary
/// `tb`: its source is immune and its destination threatened.
///
/// At scavenge time only pointers crossing the boundary are traced
/// (Figure 1's pointer *d*); remembered pointers entirely inside the
/// threatened region are discovered by ordinary tracing, and pointers
/// entirely inside the immune region are irrelevant.
pub fn crosses_boundary(src_birth: VirtualTime, dst_birth: VirtualTime, tb: VirtualTime) -> bool {
    classify(src_birth, tb) == SetMembership::Immune
        && classify(dst_birth, tb) == SetMembership::Threatened
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u64) -> VirtualTime {
        VirtualTime::from_bytes(v)
    }

    #[test]
    fn classification_is_strict_after() {
        assert_eq!(classify(t(11), t(10)), SetMembership::Threatened);
        assert_eq!(classify(t(10), t(10)), SetMembership::Immune);
        assert_eq!(classify(t(9), t(10)), SetMembership::Immune);
    }

    #[test]
    fn zero_boundary_threatens_everything_born_later() {
        assert_eq!(classify(t(1), VirtualTime::ZERO), SetMembership::Threatened);
        // An object born exactly at the origin is immune by the strict rule;
        // real clocks advance before the first birth, so this never occurs.
        assert_eq!(classify(t(0), VirtualTime::ZERO), SetMembership::Immune);
    }

    #[test]
    fn forward_in_time_is_strict() {
        assert!(is_forward_in_time(t(5), t(6)));
        assert!(!is_forward_in_time(t(6), t(6)));
        assert!(!is_forward_in_time(t(7), t(6)));
    }

    #[test]
    fn figure1_pointer_a_need_not_be_remembered() {
        // Pointer a: source and destination both younger than TB_min.
        let tb_min = t(100);
        assert!(!must_remember(t(150), t(160), tb_min));
        // Pointer d/f/k analogues: source at or older than TB_min.
        assert!(must_remember(t(50), t(160), tb_min));
        assert!(must_remember(t(100), t(160), tb_min));
        // Backward pointers are never remembered.
        assert!(!must_remember(t(50), t(40), tb_min));
    }

    #[test]
    fn crossing_requires_immune_source_and_threatened_destination() {
        let tb = t(100);
        assert!(crosses_boundary(t(50), t(150), tb)); // old → young across TB
        assert!(!crosses_boundary(t(120), t(150), tb)); // both threatened
        assert!(!crosses_boundary(t(50), t(80), tb)); // both immune
        assert!(!crosses_boundary(t(150), t(50), tb)); // young → old
    }
}
