//! Virtual time and byte-quantity newtypes.
//!
//! The paper measures time on an **allocation clock**: the virtual time `t`
//! is the number of bytes the mutator has allocated since program start.
//! Object ages, scavenge times `t_n`, and threatening boundaries `TB_n` are
//! all points on this clock. [`VirtualTime`] keeps those quantities
//! statically distinct from byte *amounts* ([`Bytes`]) such as traced or
//! surviving storage, even though both are byte counts underneath.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point on the allocation clock, measured in bytes allocated so far.
///
/// `VirtualTime` is totally ordered: later allocation points compare
/// greater. The origin [`VirtualTime::ZERO`] denotes program start; a
/// threatening boundary of `ZERO` threatens every object (a full
/// collection).
///
/// # Example
///
/// ```
/// use dtb_core::time::VirtualTime;
///
/// let birth = VirtualTime::from_bytes(1024);
/// let now = VirtualTime::from_bytes(4096);
/// assert!(birth < now);
/// assert_eq!(now.elapsed_since(birth).as_u64(), 3072);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The start of program execution (zero bytes allocated).
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Creates a virtual time from a raw allocation-byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        VirtualTime(bytes)
    }

    /// Returns the raw byte count of this allocation point.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the span of allocation between `earlier` and `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn elapsed_since(self, earlier: VirtualTime) -> Bytes {
        debug_assert!(earlier <= self, "elapsed_since: earlier > self");
        Bytes(self.0.saturating_sub(earlier.0))
    }

    /// Moves this time forward by an allocation amount.
    pub fn advance(self, by: Bytes) -> VirtualTime {
        VirtualTime(self.0 + by.0)
    }

    /// Moves this time forward by an allocation amount, or `None` if the
    /// clock would overflow `u64` (2^64 bytes ≈ 16 exabytes of allocation —
    /// only reachable with a corrupt or adversarial trace).
    pub fn checked_advance(self, by: Bytes) -> Option<VirtualTime> {
        self.0.checked_add(by.0).map(VirtualTime)
    }

    /// Moves this time backward by an allocation amount, saturating at zero.
    pub fn rewind(self, by: Bytes) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(by.0))
    }

    /// Scales this time by a non-negative factor, saturating at zero.
    ///
    /// Used by policies that place the boundary at a fraction of the current
    /// clock (e.g. `DTBMEM`'s `t_n · (Mem_max − L_est)/Mem_n`). Negative or
    /// NaN factors clamp to [`VirtualTime::ZERO`].
    pub fn scale(self, factor: f64) -> VirtualTime {
        if !factor.is_finite() || factor <= 0.0 {
            return VirtualTime::ZERO;
        }
        let scaled = (self.0 as f64) * factor;
        if scaled >= u64::MAX as f64 {
            VirtualTime(u64::MAX)
        } else {
            VirtualTime(scaled as u64)
        }
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t@{}", self.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An amount of storage, in bytes.
///
/// Used for traced storage (`Trace_n`), surviving storage (`S_n`), memory
/// in use (`Mem_n`), and constraint values (`Trace_max`, `Mem_max`).
///
/// # Example
///
/// ```
/// use dtb_core::time::Bytes;
///
/// let budget = Bytes::from_kb(50);
/// assert_eq!(budget.as_u64(), 50 * 1024);
/// assert_eq!(budget + Bytes::new(1), Bytes::new(51_201));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte amount.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a byte amount from kilobytes (1 KB = 1024 bytes).
    pub const fn from_kb(kb: u64) -> Self {
        Bytes(kb * 1024)
    }

    /// Creates a byte amount from megabytes (1 MB = 1024² bytes).
    pub const fn from_mb(mb: u64) -> Self {
        Bytes(mb * 1024 * 1024)
    }

    /// Returns the raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the amount in (binary) kilobytes as a float.
    pub fn as_kb(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Returns true if this amount is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction that saturates at zero instead of underflowing.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` when `rhs > self`.
    pub fn checked_sub(self, rhs: Bytes) -> Option<Bytes> {
        self.0.checked_sub(rhs.0).map(Bytes)
    }

    /// Returns `self / rhs` as a float ratio; `None` when `rhs` is zero.
    pub fn ratio(self, rhs: Bytes) -> Option<f64> {
        if rhs.0 == 0 {
            None
        } else {
            Some(self.0 as f64 / rhs.0 as f64)
        }
    }

    /// Returns the midpoint of two amounts, rounding down.
    ///
    /// `DTBMEM` uses this for its live-data estimate
    /// `L_est = (S_{n-1} + Trace_{n-1}) / 2`.
    pub fn midpoint(self, rhs: Bytes) -> Bytes {
        // Average without overflow.
        Bytes((self.0 / 2) + (rhs.0 / 2) + ((self.0 % 2 + rhs.0 % 2) / 2))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    /// # Panics
    ///
    /// Panics on underflow, like integer subtraction. Use
    /// [`Bytes::saturating_sub`] where a clamped result is wanted.
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Bytes {
    fn from(v: u64) -> Bytes {
        Bytes(v)
    }
}

impl From<Bytes> for u64 {
    fn from(v: Bytes) -> u64 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_time_ordering_follows_allocation() {
        let a = VirtualTime::from_bytes(10);
        let b = VirtualTime::from_bytes(20);
        assert!(a < b);
        assert_eq!(b.elapsed_since(a), Bytes::new(10));
    }

    #[test]
    fn advance_and_rewind_are_inverse_within_range() {
        let t = VirtualTime::from_bytes(100);
        assert_eq!(t.advance(Bytes::new(50)).rewind(Bytes::new(50)), t);
    }

    #[test]
    fn rewind_saturates_at_origin() {
        let t = VirtualTime::from_bytes(10);
        assert_eq!(t.rewind(Bytes::new(100)), VirtualTime::ZERO);
    }

    #[test]
    fn scale_clamps_pathological_factors() {
        let t = VirtualTime::from_bytes(1000);
        assert_eq!(t.scale(-1.0), VirtualTime::ZERO);
        assert_eq!(t.scale(f64::NAN), VirtualTime::ZERO);
        assert_eq!(t.scale(0.5), VirtualTime::from_bytes(500));
        assert_eq!(t.scale(1.0), t);
    }

    #[test]
    fn scale_saturates_at_max() {
        let t = VirtualTime::from_bytes(u64::MAX / 2);
        assert_eq!(t.scale(1e30), VirtualTime::from_bytes(u64::MAX));
    }

    #[test]
    fn bytes_arithmetic() {
        let a = Bytes::new(100);
        let b = Bytes::new(30);
        assert_eq!(a + b, Bytes::new(130));
        assert_eq!(a - b, Bytes::new(70));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(Bytes::new(70)));
    }

    #[test]
    fn bytes_ratio_handles_zero_denominator() {
        assert_eq!(Bytes::new(5).ratio(Bytes::ZERO), None);
        assert_eq!(Bytes::new(5).ratio(Bytes::new(10)), Some(0.5));
    }

    #[test]
    fn midpoint_is_average() {
        assert_eq!(Bytes::new(10).midpoint(Bytes::new(20)), Bytes::new(15));
        assert_eq!(Bytes::new(11).midpoint(Bytes::new(12)), Bytes::new(11));
        // No overflow at the top of the range.
        let big = Bytes::new(u64::MAX);
        assert_eq!(big.midpoint(big), big);
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(Bytes::from_kb(1), Bytes::new(1024));
        assert_eq!(Bytes::from_mb(1), Bytes::new(1024 * 1024));
        assert!((Bytes::from_kb(3).as_kb() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_bytes() {
        let total: Bytes = [Bytes::new(1), Bytes::new(2), Bytes::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Bytes::new(6));
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert_eq!(format!("{:?}", VirtualTime::from_bytes(7)), "t@7");
        assert_eq!(format!("{:?}", Bytes::new(7)), "7B");
    }
}
