//! Summary statistics used by the paper's tables.
//!
//! Table 2 reports mean/maximum memory, Table 3 median/90th-percentile
//! pause times, Table 4 total traced storage and CPU overhead. This module
//! provides the two accumulators those tables need: an exact
//! order-statistics summary over a recorded sample set ([`SampleStats`])
//! and a weighted running mean/max accumulator for memory-over-time curves
//! ([`WeightedStats`]).

use serde::{Deserialize, Serialize};

/// Exact order statistics over an explicit sample set.
///
/// Used for pause times: one sample per scavenge (a program has at most a
/// few hundred collections, so keeping all samples is cheap and exact).
///
/// # Example
///
/// ```
/// use dtb_core::stats::SampleStats;
///
/// let mut s = SampleStats::new();
/// for v in [10.0, 20.0, 30.0, 40.0] {
///     s.record(v);
/// }
/// assert_eq!(s.median(), Some(25.0));
/// assert_eq!(s.percentile(90.0), Some(37.0)); // interpolated rank
/// assert_eq!(s.max(), Some(40.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleStats {
    /// Creates an empty sample set.
    pub fn new() -> SampleStats {
        SampleStats::default()
    }

    /// Records one sample. Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sorted_samples(&mut self) -> &[f64] {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = true;
        }
        &self.samples
    }

    /// The `p`-th percentile (0–100) by linear interpolation between
    /// closest ranks; `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        let s = self.sorted_samples();
        if s.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = p / 100.0 * (s.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(s[lo] + (s[hi] - s[lo]) * frac)
    }

    /// The median (50th percentile); `None` when empty.
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// The largest sample; `None` when empty.
    pub fn max(&mut self) -> Option<f64> {
        self.sorted_samples().last().copied()
    }

    /// The smallest sample; `None` when empty.
    pub fn min(&mut self) -> Option<f64> {
        self.sorted_samples().first().copied()
    }

    /// The arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// The sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// A read-only view of the raw samples, in insertion order is *not*
    /// guaranteed (they may have been sorted by a percentile query).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl FromIterator<f64> for SampleStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = SampleStats::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for SampleStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Weight-averaged mean and maximum of a piecewise-constant signal.
///
/// Used for memory-in-use: the signal holds value `v` for a weight `w` (an
/// allocation-clock span), and Table 2's *mean memory* is the
/// weight-averaged value over the whole run. Recording with weight zero
/// still updates the maximum (a spike between allocations counts for the
/// max but not the mean).
///
/// # Example
///
/// ```
/// use dtb_core::stats::WeightedStats;
///
/// let mut m = WeightedStats::new();
/// m.record(100.0, 1.0);
/// m.record(300.0, 3.0);
/// assert_eq!(m.mean(), Some(250.0));
/// assert_eq!(m.max(), Some(300.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WeightedStats {
    weighted_sum: f64,
    total_weight: f64,
    max: Option<f64>,
}

impl WeightedStats {
    /// Creates an empty accumulator.
    pub fn new() -> WeightedStats {
        WeightedStats::default()
    }

    /// Records that the signal held `value` for `weight` units.
    ///
    /// Non-finite values or negative weights are ignored.
    pub fn record(&mut self, value: f64, weight: f64) {
        if !value.is_finite() || !weight.is_finite() || weight < 0.0 {
            return;
        }
        self.weighted_sum += value * weight;
        self.total_weight += weight;
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// The weight-averaged mean; `None` before any positive-weight sample.
    pub fn mean(&self) -> Option<f64> {
        if self.total_weight > 0.0 {
            Some(self.weighted_sum / self.total_weight)
        } else {
            None
        }
    }

    /// The maximum observed value; `None` before any sample.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Total weight recorded so far.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_answer_none() {
        let mut s = SampleStats::new();
        assert!(s.is_empty());
        assert_eq!(s.median(), None);
        assert_eq!(s.percentile(90.0), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s: SampleStats = [42.0].into_iter().collect();
        assert_eq!(s.median(), Some(42.0));
        assert_eq!(s.percentile(0.0), Some(42.0));
        assert_eq!(s.percentile(100.0), Some(42.0));
        assert_eq!(s.min(), Some(42.0));
    }

    #[test]
    fn median_interpolates_even_counts() {
        let mut s: SampleStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.median(), Some(2.5));
    }

    #[test]
    fn percentile_90_of_ten_samples() {
        let mut s: SampleStats = (1..=10).map(|v| v as f64).collect();
        // rank = 0.9 · 9 = 8.1 ⇒ 9 + 0.1·(10−9) = 9.1
        assert!((s.percentile(90.0).unwrap() - 9.1).abs() < 1e-12);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let mut s: SampleStats = [1.0, 2.0].into_iter().collect();
        assert_eq!(s.percentile(-5.0), Some(1.0));
        assert_eq!(s.percentile(200.0), Some(2.0));
    }

    #[test]
    fn records_ignore_non_finite() {
        let mut s = SampleStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert!(s.is_empty());
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut s = SampleStats::new();
        s.record(3.0);
        assert_eq!(s.median(), Some(3.0));
        s.record(1.0); // must re-sort
        assert_eq!(s.median(), Some(2.0));
        s.record(2.0);
        assert_eq!(s.median(), Some(2.0));
        assert_eq!(s.len(), 3);
        assert!((s.sum() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_weighs_by_duration() {
        let mut m = WeightedStats::new();
        m.record(10.0, 9.0);
        m.record(100.0, 1.0);
        assert_eq!(m.mean(), Some(19.0));
        assert_eq!(m.max(), Some(100.0));
        assert_eq!(m.total_weight(), 10.0);
    }

    #[test]
    fn zero_weight_updates_only_max() {
        let mut m = WeightedStats::new();
        m.record(500.0, 0.0);
        assert_eq!(m.mean(), None);
        assert_eq!(m.max(), Some(500.0));
        m.record(10.0, 2.0);
        assert_eq!(m.mean(), Some(10.0));
        assert_eq!(m.max(), Some(500.0));
    }

    #[test]
    fn negative_weight_ignored() {
        let mut m = WeightedStats::new();
        m.record(5.0, -1.0);
        assert_eq!(m.mean(), None);
        assert_eq!(m.max(), None);
    }
}
