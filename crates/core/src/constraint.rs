//! User-facing resource constraints.
//!
//! The paper's thesis is that a collector should be tuned with **two
//! easily-understood parameters**: a maximum memory budget or a pause-time
//! budget. [`Constraint`] is that user-facing value; policies convert a
//! pause budget into a `Trace_max` byte budget through the
//! [`CostModel`](crate::cost::CostModel).

use crate::cost::CostModel;
use crate::time::Bytes;
use serde::{Deserialize, Serialize};

/// The resource constraint a collector is asked to honour.
///
/// # Example
///
/// ```
/// use dtb_core::constraint::Constraint;
/// use dtb_core::cost::CostModel;
/// use dtb_core::time::Bytes;
///
/// let pause = Constraint::pause_ms(100.0, &CostModel::paper());
/// assert_eq!(pause, Constraint::Trace(Bytes::new(50_000)));
///
/// let mem = Constraint::memory(Bytes::from_kb(3000));
/// assert!(mem.is_memory());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    /// Limit bytes traced per scavenge (equivalently, pause time).
    Trace(Bytes),
    /// Limit total memory in use (`Mem_max`).
    Memory(Bytes),
}

impl Constraint {
    /// A trace-budget constraint, in bytes per scavenge.
    pub fn trace(trace_max: Bytes) -> Constraint {
        Constraint::Trace(trace_max)
    }

    /// A memory constraint, in total bytes.
    pub fn memory(mem_max: Bytes) -> Constraint {
        Constraint::Memory(mem_max)
    }

    /// A pause-time constraint in milliseconds, converted to a trace budget
    /// under `model`.
    pub fn pause_ms(pause_ms: f64, model: &CostModel) -> Constraint {
        Constraint::Trace(model.trace_budget_for_pause_ms(pause_ms))
    }

    /// True for trace/pause constraints.
    pub fn is_trace(&self) -> bool {
        matches!(self, Constraint::Trace(_))
    }

    /// True for memory constraints.
    pub fn is_memory(&self) -> bool {
        matches!(self, Constraint::Memory(_))
    }

    /// The underlying byte budget, whichever kind it is.
    pub fn budget(&self) -> Bytes {
        match self {
            Constraint::Trace(b) | Constraint::Memory(b) => *b,
        }
    }

    /// Whether an observation satisfies this constraint: a per-scavenge
    /// traced amount for [`Constraint::Trace`], a memory-in-use sample for
    /// [`Constraint::Memory`].
    pub fn is_met_by(&self, observed: Bytes) -> bool {
        observed <= self.budget()
    }
}

impl core::fmt::Display for Constraint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Constraint::Trace(b) => write!(f, "Trace_max = {} bytes", b.as_u64()),
            Constraint::Memory(b) => write!(f, "Mem_max = {} bytes", b.as_u64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_converts_through_cost_model() {
        let c = Constraint::pause_ms(100.0, &CostModel::paper());
        assert_eq!(c.budget(), Bytes::new(50_000));
        assert!(c.is_trace());
        assert!(!c.is_memory());
    }

    #[test]
    fn met_by_uses_inclusive_comparison() {
        let c = Constraint::memory(Bytes::new(100));
        assert!(c.is_met_by(Bytes::new(100)));
        assert!(c.is_met_by(Bytes::new(99)));
        assert!(!c.is_met_by(Bytes::new(101)));
    }

    #[test]
    fn display_names_the_budget() {
        assert_eq!(
            Constraint::trace(Bytes::new(50_000)).to_string(),
            "Trace_max = 50000 bytes"
        );
        assert_eq!(
            Constraint::memory(Bytes::new(7)).to_string(),
            "Mem_max = 7 bytes"
        );
    }
}
