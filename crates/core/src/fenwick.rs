//! Branchless Fenwick (binary-indexed) tree kernels over byte totals.
//!
//! The simulator keys its indices by **global slot** — the position of an
//! object in birth order over the whole run, assigned at insertion and
//! never reused. Slots are append-only, so alongside the classic
//! point-update / prefix-sum pair the tree supports `push` (extend by one
//! slot in O(log n)) and [`Fenwick::extend`] (append a whole block in
//! O(k + log² n)), which is what the block-structured drive loop feeds.
//!
//! The inner loops are written to compile to straight-line, predictable
//! code: the update and prefix walks are short counted loops over a flat
//! 1-based array with no data-dependent branches, and the
//! [`Fenwick::lower_bound`] descent keeps only the (perfectly predictable)
//! range guard as a branch — the data-dependent comparison lowers to
//! conditional moves. Batched updates ([`Fenwick::add_many`] /
//! [`Fenwick::sub_many`]) amortize the `total` maintenance and keep the
//! tree walks hot in cache when the heap applies a death queue or merges
//! epoch aggregates.
//!
//! All values are byte counts; a point update only ever removes what was
//! previously added at that slot, so node partial sums never underflow.

/// Fenwick tree over `u64` byte totals, indexed by 0-based slot.
#[derive(Clone, Debug, Default)]
pub struct Fenwick {
    /// 1-based tree: `tree[i-1]` covers the slot range `(i - lowbit(i), i]`.
    tree: Vec<u64>,
    /// Sum of all slots, maintained eagerly for O(1) totals.
    total: u64,
}

impl Fenwick {
    /// An empty tree with room for `n` slots.
    pub fn with_capacity(n: usize) -> Fenwick {
        Fenwick {
            tree: Vec::with_capacity(n),
            total: 0,
        }
    }

    /// Number of slots in the tree.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the tree holds no slots.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Appends a new slot holding `value`, in O(log n).
    ///
    /// The new node at 1-based index `i` covers `(i - lowbit(i), i]`, so
    /// its partial sum is `value` plus the sum of the already-present
    /// slots in that range. Because the new slot is the last one,
    /// `prefix(i - 1)` is simply the running total, halving the descent
    /// cost of the classic append.
    pub fn push(&mut self, value: u64) {
        let i = self.tree.len() + 1; // 1-based index of the new slot
        let lowbit = i & i.wrapping_neg();
        let mut node = value;
        if lowbit > 1 {
            node += self.total - self.prefix(i - lowbit);
        }
        self.tree.push(node);
        self.total += value;
    }

    /// Appends a whole block of slots, in O(k + log² n) for `k` new slots.
    ///
    /// Equivalent to `for v in values { self.push(v) }` — the tree shape
    /// is a pure function of the slot values, not of the insertion path —
    /// but built in three flat passes: raw placement, an ascending
    /// propagation pass over the appended region (the classic O(k)
    /// bottom-up build), and a fix-up for the ≤ log n appended nodes whose
    /// covered range reaches back into the pre-existing slots.
    pub fn extend<I>(&mut self, values: I)
    where
        I: IntoIterator<Item = u64>,
    {
        let old = self.tree.len();
        let old_total = self.total;
        let mut added = 0u64;
        for v in values {
            added += v;
            self.tree.push(v);
        }
        let n = self.tree.len();
        // Propagate appended-region sums upward. After this pass,
        // `tree[i-1]` holds the sum of the appended slots inside its
        // range; every propagation target stays inside `(old, n]`.
        for i in old + 1..=n {
            let j = i + (i & i.wrapping_neg());
            if j <= n {
                self.tree[j - 1] = self.tree[j - 1].wrapping_add(self.tree[i - 1]);
            }
        }
        // Nodes whose range starts before the append boundary also cover
        // a suffix of the old slots: add it exactly once per node. The
        // `prefix` reads touch only indices ≤ start < old, which the
        // passes above never modified.
        for i in old + 1..=n {
            let start = i - (i & i.wrapping_neg());
            if start < old {
                self.tree[i - 1] += old_total - self.prefix(start);
            }
        }
        self.total += added;
    }

    /// Removes every slot, keeping the allocated capacity. The oracle
    /// heap's dead-prefix compaction rebuilds the tree from the surviving
    /// residents, so clearing must not release the buffer (the rebuild is
    /// allocation-free by construction).
    pub fn clear(&mut self) {
        self.tree.clear();
        self.total = 0;
    }

    /// Adds `delta` to the slot's value, in O(log n).
    pub fn add(&mut self, slot: usize, delta: u64) {
        let n = self.tree.len();
        let mut i = slot + 1;
        while i <= n {
            self.tree[i - 1] += delta;
            i += i & i.wrapping_neg();
        }
        self.total += delta;
    }

    /// Subtracts `delta` from the slot's value, in O(log n).
    ///
    /// # Panics
    ///
    /// Underflows (and panics in debug builds) if `delta` exceeds what was
    /// added at this slot — callers only ever remove bytes they recorded.
    pub fn sub(&mut self, slot: usize, delta: u64) {
        let n = self.tree.len();
        let mut i = slot + 1;
        while i <= n {
            self.tree[i - 1] -= delta;
            i += i & i.wrapping_neg();
        }
        self.total -= delta;
    }

    /// Applies a batch of point additions: `slots[k]` gains `deltas[k]`.
    ///
    /// Slots may repeat; each pair is applied independently. One pass over
    /// tight per-slot walks with a single `total` adjustment at the end —
    /// the form the oracle heap's death-queue application and the epoch
    /// heap's aggregate merges feed.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the batch lengths differ.
    pub fn add_many(&mut self, slots: &[u32], deltas: &[u64]) {
        debug_assert_eq!(slots.len(), deltas.len());
        let n = self.tree.len();
        let mut sum = 0u64;
        for (&slot, &delta) in slots.iter().zip(deltas) {
            sum += delta;
            let mut i = slot as usize + 1;
            while i <= n {
                self.tree[i - 1] += delta;
                i += i & i.wrapping_neg();
            }
        }
        self.total += sum;
    }

    /// Applies a batch of point subtractions: `slots[k]` loses `deltas[k]`.
    ///
    /// The mirror of [`Fenwick::add_many`]; the same underflow contract as
    /// [`Fenwick::sub`] applies per pair.
    pub fn sub_many(&mut self, slots: &[u32], deltas: &[u64]) {
        debug_assert_eq!(slots.len(), deltas.len());
        let n = self.tree.len();
        let mut sum = 0u64;
        for (&slot, &delta) in slots.iter().zip(deltas) {
            sum += delta;
            let mut i = slot as usize + 1;
            while i <= n {
                self.tree[i - 1] -= delta;
                i += i & i.wrapping_neg();
            }
        }
        self.total -= sum;
    }

    /// Sum of the first `count` slots (slots `0 .. count`), in O(log n).
    ///
    /// The walk clears the lowest set bit each step (`i &= i - 1`) — a
    /// branchless flat-array descent.
    pub fn prefix(&self, count: usize) -> u64 {
        let mut i = count.min(self.tree.len());
        let mut sum = 0u64;
        while i > 0 {
            sum += self.tree[i - 1];
            i &= i - 1;
        }
        sum
    }

    /// Sum of the slots from `count` onward, in O(log n).
    pub fn suffix(&self, count: usize) -> u64 {
        self.total - self.prefix(count)
    }

    /// Sum of all slots, in O(1).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The largest count `c` with `prefix(c) <= target`, in O(log n) — a
    /// single root-to-leaf descent (binary lifting), not a binary search
    /// over O(log n) prefix sums.
    ///
    /// The only conditional branch in the loop is the range guard
    /// `next <= n`, which is perfectly predictable (it fails for at most
    /// the first descent steps of a non-power-of-two tree); the
    /// data-dependent comparison against `target` selects via conditional
    /// moves. A sentinel in place of the guard would be wrong: `target`
    /// itself may be `u64::MAX`, so no value is "bigger than any target".
    ///
    /// Because values are non-negative, `prefix` is non-decreasing, so the
    /// counts satisfying the predicate form a prefix of `0..=len`. Two
    /// derived queries the heap builds on:
    ///
    /// - smallest `c` with `prefix(c) >= k` (for `k >= 1`): this is
    ///   `lower_bound(k - 1) + 1`;
    /// - the slot index of the first nonzero value at or after a split
    ///   with `prefix(split) == p`: this is `lower_bound(p)` (descending
    ///   through the zero-valued slots costs nothing).
    pub fn lower_bound(&self, target: u64) -> usize {
        let n = self.tree.len();
        let mut pos = 0usize;
        let mut rem = target;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            // `pos` is a sum of strictly larger powers of two, so
            // `lowbit(next) == step` and `tree[next - 1]` covers exactly
            // `(pos, next]`.
            if next <= n {
                let node = self.tree[next - 1];
                let take = node <= rem;
                rem = if take { rem - node } else { rem };
                pos = if take { next } else { pos };
            }
            step >>= 1;
        }
        pos
    }
}

/// Two Fenwick trees over the same slot space — live bytes and
/// dead-but-unreclaimed bytes — fused into one node array of
/// `[live, dead]` pairs.
///
/// The oracle heap's dominant index traffic is the *death move*: when an
/// object's death clock passes, its bytes leave the live tree and enter
/// the dead tree at the same slot. With separate trees that is two
/// O(log n) walks over two disjoint node arrays (two cache lines per
/// level); with paired nodes it is **one walk touching one 16-byte pair
/// per level** — the indices are computed once and both components update
/// in place. Appends build both components in a single pass, and a
/// scavenge's entire byte accounting (traced, reclaimed, tenured
/// garbage) falls out of one [`PairedFenwick::prefix_pair`] descent plus
/// the O(1) totals.
///
/// Every node value is exactly what the two separate trees would hold, so
/// swapping a `(Fenwick, Fenwick)` pair for a `PairedFenwick` changes no
/// observable sum — the integer accounting is bit-identical.
#[derive(Clone, Debug, Default)]
pub struct PairedFenwick {
    /// 1-based tree of `[live, dead]` byte pairs; `tree[i-1]` covers the
    /// slot range `(i - lowbit(i), i]` in both components.
    tree: Vec<[u64; 2]>,
    /// `[live, dead]` grand totals, maintained eagerly.
    total: [u64; 2],
}

impl PairedFenwick {
    /// An empty paired tree with room for `n` slots.
    pub fn with_capacity(n: usize) -> PairedFenwick {
        PairedFenwick {
            tree: Vec::with_capacity(n),
            total: [0, 0],
        }
    }

    /// Number of slots in the tree.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the tree holds no slots.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Removes every slot, keeping the allocated capacity (the heap's
    /// dead-prefix compaction rebuilds in place, allocation-free).
    pub fn clear(&mut self) {
        self.tree.clear();
        self.total = [0, 0];
    }

    /// Appends a new slot holding `live` / `dead` bytes, in one O(log n)
    /// walk (cf. [`Fenwick::push`] — same eager-total shortcut, both
    /// components at once).
    pub fn push(&mut self, live: u64, dead: u64) {
        let i = self.tree.len() + 1;
        let lowbit = i & i.wrapping_neg();
        let mut node = [live, dead];
        if lowbit > 1 {
            let p = self.prefix_pair(i - lowbit);
            node[0] += self.total[0] - p[0];
            node[1] += self.total[1] - p[1];
        }
        self.tree.push(node);
        self.total[0] += live;
        self.total[1] += dead;
    }

    /// Appends a whole block of all-live slots (`dead = 0`, the shape
    /// every allocation has), in O(k + log² n) — the paired analogue of
    /// [`Fenwick::extend`]. The dead component still participates in the
    /// boundary fix-up: an appended node whose range reaches back into the
    /// old slots covers their dead bytes too.
    pub fn extend_live<I>(&mut self, values: I)
    where
        I: IntoIterator<Item = u64>,
    {
        let old = self.tree.len();
        let old_total = self.total;
        let mut added = 0u64;
        for v in values {
            added += v;
            self.tree.push([v, 0]);
        }
        let n = self.tree.len();
        for i in old + 1..=n {
            let j = i + (i & i.wrapping_neg());
            if j <= n {
                let src = self.tree[i - 1];
                let dst = &mut self.tree[j - 1];
                dst[0] = dst[0].wrapping_add(src[0]);
                dst[1] = dst[1].wrapping_add(src[1]);
            }
        }
        for i in old + 1..=n {
            let start = i - (i & i.wrapping_neg());
            if start < old {
                let p = self.prefix_pair(start);
                self.tree[i - 1][0] += old_total[0] - p[0];
                self.tree[i - 1][1] += old_total[1] - p[1];
            }
        }
        self.total[0] += added;
    }

    /// Replaces the whole tree with one built from `[live, dead]` pairs,
    /// as a bulk O(n) bottom-up construction: place every pair as a leaf,
    /// then fold each node into its parent in one ascending pass. Node
    /// values are bit-identical to pushing the pairs one at a time (the
    /// same integer sums, merely reassociated), at a fraction of the cost
    /// — the heap's dead-prefix compaction rebuilds its index this way
    /// instead of paying a prefix descent per resident. Keeps the
    /// allocated capacity (allocation-free when the new size fits).
    pub fn rebuild_pairs<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = [u64; 2]>,
    {
        self.tree.clear();
        self.tree.extend(pairs);
        let n = self.tree.len();
        let mut total = [0u64, 0];
        for p in &self.tree {
            total[0] += p[0];
            total[1] += p[1];
        }
        self.total = total;
        for i in 1..=n {
            let j = i + (i & i.wrapping_neg());
            if j <= n {
                let src = self.tree[i - 1];
                let dst = &mut self.tree[j - 1];
                dst[0] += src[0];
                dst[1] += src[1];
            }
        }
    }

    /// Moves `delta` bytes from live to dead at `slot`, in **one**
    /// O(log n) walk — the fused form of `live.sub` + `dead.add`. The
    /// pair sum of every touched node is unchanged.
    ///
    /// # Panics
    ///
    /// Underflows (and panics in debug builds) if `delta` exceeds the
    /// live bytes recorded at this slot.
    pub fn move_to_dead(&mut self, slot: usize, delta: u64) {
        let n = self.tree.len();
        let mut i = slot + 1;
        while i <= n {
            let node = &mut self.tree[i - 1];
            node[0] -= delta;
            node[1] += delta;
            i += i & i.wrapping_neg();
        }
        self.total[0] -= delta;
        self.total[1] += delta;
    }

    /// Applies a batch of live→dead moves: `slots[k]` moves `deltas[k]`
    /// bytes. Slots may repeat; one tight walk per pair, one total
    /// adjustment at the end — the form the heap's death-queue drain
    /// feeds.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the batch lengths differ.
    pub fn move_to_dead_many(&mut self, slots: &[u32], deltas: &[u64]) {
        debug_assert_eq!(slots.len(), deltas.len());
        let n = self.tree.len();
        let mut sum = 0u64;
        for (&slot, &delta) in slots.iter().zip(deltas) {
            sum += delta;
            let mut i = slot as usize + 1;
            while i <= n {
                let node = &mut self.tree[i - 1];
                node[0] -= delta;
                node[1] += delta;
                i += i & i.wrapping_neg();
            }
        }
        self.total[0] -= sum;
        self.total[1] += sum;
    }

    /// Applies a batch of dead-byte removals (scavenge reclamation):
    /// `slots[k]` loses `deltas[k]` dead bytes.
    ///
    /// # Panics
    ///
    /// Underflow panics (debug builds) if a slot loses more dead bytes
    /// than it holds; lengths must match.
    pub fn sub_dead_many(&mut self, slots: &[u32], deltas: &[u64]) {
        debug_assert_eq!(slots.len(), deltas.len());
        let n = self.tree.len();
        let mut sum = 0u64;
        for (&slot, &delta) in slots.iter().zip(deltas) {
            sum += delta;
            let mut i = slot as usize + 1;
            while i <= n {
                self.tree[i - 1][1] -= delta;
                i += i & i.wrapping_neg();
            }
        }
        self.total[1] -= sum;
    }

    /// `[live, dead]` sums of the first `count` slots, in one O(log n)
    /// walk.
    pub fn prefix_pair(&self, count: usize) -> [u64; 2] {
        let mut i = count.min(self.tree.len());
        let mut sum = [0u64; 2];
        while i > 0 {
            let node = self.tree[i - 1];
            sum[0] += node[0];
            sum[1] += node[1];
            i &= i - 1;
        }
        sum
    }

    /// `[live, dead]` sums of the slots from `count` onward.
    pub fn suffix_pair(&self, count: usize) -> [u64; 2] {
        let p = self.prefix_pair(count);
        [self.total[0] - p[0], self.total[1] - p[1]]
    }

    /// Total live bytes, in O(1).
    pub fn live_total(&self) -> u64 {
        self.total[0]
    }

    /// Total dead bytes, in O(1).
    pub fn dead_total(&self) -> u64 {
        self.total[1]
    }

    /// The largest count `c` with live-`prefix(c) <= target` — the
    /// branchless root-to-leaf descent of [`Fenwick::lower_bound`] on the
    /// live component.
    pub fn lower_bound_live(&self, target: u64) -> usize {
        self.lower_bound_component(0, target)
    }

    /// The largest count `c` with dead-`prefix(c) <= target`.
    pub fn lower_bound_dead(&self, target: u64) -> usize {
        self.lower_bound_component(1, target)
    }

    fn lower_bound_component(&self, comp: usize, target: u64) -> usize {
        let n = self.tree.len();
        let mut pos = 0usize;
        let mut rem = target;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= n {
                let node = self.tree[next - 1][comp];
                let take = node <= rem;
                rem = if take { rem - node } else { rem };
                pos = if take { next } else { pos };
            }
            step >>= 1;
        }
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: a plain vector of slot values.
    fn model_prefix(vals: &[u64], count: usize) -> u64 {
        vals[..count.min(vals.len())].iter().sum()
    }

    #[test]
    fn push_then_prefix_matches_model() {
        let vals = [5u64, 0, 3, 12, 7, 0, 0, 9, 1, 4, 4, 2, 100];
        let mut f = Fenwick::default();
        for &v in &vals {
            f.push(v);
        }
        for count in 0..=vals.len() + 2 {
            assert_eq!(f.prefix(count), model_prefix(&vals, count), "count={count}");
            assert_eq!(
                f.suffix(count),
                f.total() - model_prefix(&vals, count),
                "count={count}"
            );
        }
    }

    #[test]
    fn extend_matches_repeated_push_at_every_boundary() {
        // Every (old length, block length) split of a value sequence must
        // produce the identical tree as pushing one value at a time —
        // including splits that land inside large node ranges.
        let vals: Vec<u64> = (0..67u64).map(|i| (i * 37) % 101).collect();
        for old in 0..vals.len() {
            for k in 0..=(vals.len() - old).min(19) {
                let mut pushed = Fenwick::default();
                for &v in &vals[..old + k] {
                    pushed.push(v);
                }
                let mut extended = Fenwick::default();
                for &v in &vals[..old] {
                    extended.push(v);
                }
                extended.extend(vals[old..old + k].iter().copied());
                assert_eq!(extended.tree, pushed.tree, "old={old} k={k}");
                assert_eq!(extended.total, pushed.total, "old={old} k={k}");
            }
        }
    }

    #[test]
    fn extend_on_empty_tree_is_a_bulk_build() {
        let vals = [5u64, 0, 3, 12, 7, 0, 0, 9, 1];
        let mut f = Fenwick::default();
        f.extend(vals.iter().copied());
        for count in 0..=vals.len() {
            assert_eq!(f.prefix(count), model_prefix(&vals, count), "count={count}");
        }
        assert_eq!(f.total(), vals.iter().sum::<u64>());
    }

    #[test]
    fn add_and_sub_update_points() {
        let mut f = Fenwick::with_capacity(8);
        for _ in 0..8 {
            f.push(10);
        }
        f.add(3, 5);
        f.sub(6, 10);
        let vals = [10u64, 10, 10, 15, 10, 10, 0, 10];
        for count in 0..=8 {
            assert_eq!(f.prefix(count), model_prefix(&vals, count), "count={count}");
        }
        assert_eq!(f.total(), 75);
    }

    #[test]
    fn add_many_matches_single_updates_with_repeats() {
        let mut batched = Fenwick::default();
        let mut single = Fenwick::default();
        for i in 0..21u64 {
            batched.push(i);
            single.push(i);
        }
        // Repeated slots in one batch must accumulate.
        let slots = [3u32, 9, 3, 20, 0, 9];
        let deltas = [5u64, 1, 2, 100, 7, 1];
        batched.add_many(&slots, &deltas);
        for (&s, &d) in slots.iter().zip(&deltas) {
            single.add(s as usize, d);
        }
        assert_eq!(batched.tree, single.tree);
        assert_eq!(batched.total(), single.total());

        batched.sub_many(&slots, &deltas);
        for (&s, &d) in slots.iter().zip(&deltas) {
            single.sub(s as usize, d);
        }
        assert_eq!(batched.tree, single.tree);
        assert_eq!(batched.total(), single.total());
    }

    #[test]
    fn interleaved_push_and_update() {
        let mut f = Fenwick::default();
        let mut vals: Vec<u64> = Vec::new();
        for round in 0..50u64 {
            f.push(round * 3);
            vals.push(round * 3);
            if round % 2 == 0 {
                let slot = (round as usize) / 2;
                f.add(slot, 7);
                vals[slot] += 7;
            }
            if round % 5 == 0 && vals[round as usize] > 0 {
                f.sub(round as usize, 1);
                vals[round as usize] -= 1;
            }
            for count in [0, 1, vals.len() / 2, vals.len()] {
                assert_eq!(f.prefix(count), model_prefix(&vals, count));
            }
        }
        assert_eq!(f.total(), vals.iter().sum::<u64>());
    }

    #[test]
    fn interleaved_extend_and_update() {
        let mut f = Fenwick::default();
        let mut vals: Vec<u64> = Vec::new();
        for round in 0..12u64 {
            let block: Vec<u64> = (0..round + 1).map(|i| i * round % 13).collect();
            vals.extend_from_slice(&block);
            f.extend(block.iter().copied());
            let slot = (round as usize * 3) % vals.len();
            f.add(slot, round + 2);
            vals[slot] += round + 2;
            for count in 0..=vals.len() {
                assert_eq!(f.prefix(count), model_prefix(&vals, count));
            }
        }
    }

    /// Reference model for the descent: linear scan for the largest count
    /// with prefix ≤ target.
    fn model_lower_bound(vals: &[u64], target: u64) -> usize {
        (0..=vals.len())
            .rev()
            .find(|&c| model_prefix(vals, c) <= target)
            .unwrap()
    }

    #[test]
    fn lower_bound_matches_model() {
        // Zero runs, duplicates, and a large tail exercise the descent's
        // tie-breaking (largest count wins ⇒ trailing zeros are included).
        let vals = [0u64, 5, 0, 0, 3, 12, 0, 7, 0, 0, 9, 1, 4, 0, 100, 0];
        let mut f = Fenwick::default();
        for &v in &vals {
            f.push(v);
        }
        let total: u64 = vals.iter().sum();
        for target in 0..=total + 3 {
            assert_eq!(
                f.lower_bound(target),
                model_lower_bound(&vals, target),
                "target={target}"
            );
        }
    }

    #[test]
    fn lower_bound_after_updates() {
        let mut f = Fenwick::default();
        let mut vals: Vec<u64> = Vec::new();
        for i in 0..37u64 {
            f.push(i % 7);
            vals.push(i % 7);
        }
        f.sub(5, vals[5]);
        vals[5] = 0;
        f.add(20, 13);
        vals[20] += 13;
        let total: u64 = vals.iter().sum();
        for target in (0..=total + 2).step_by(3) {
            assert_eq!(f.lower_bound(target), model_lower_bound(&vals, target));
        }
    }

    #[test]
    fn lower_bound_on_empty_tree_is_zero() {
        let f = Fenwick::default();
        assert_eq!(f.lower_bound(0), 0);
        assert_eq!(f.lower_bound(u64::MAX), 0);
    }

    #[test]
    fn lower_bound_saturated_target_takes_every_slot() {
        // `u64::MAX` as a target must still mean "largest count whose
        // prefix fits" — a sentinel-based descent would mishandle this.
        let mut f = Fenwick::default();
        for v in [3u64, 0, 9, 1] {
            f.push(v);
        }
        assert_eq!(f.lower_bound(u64::MAX), 4);
    }

    #[test]
    fn empty_tree_sums_to_zero() {
        let f = Fenwick::default();
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(10), 0);
        assert_eq!(f.suffix(0), 0);
        assert_eq!(f.total(), 0);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
    }

    /// A paired tree and a (live, dead) pair of plain trees driven by the
    /// same operations must agree on every query — node for node.
    struct PairedModel {
        paired: PairedFenwick,
        live: Fenwick,
        dead: Fenwick,
    }

    impl PairedModel {
        fn new() -> PairedModel {
            PairedModel {
                paired: PairedFenwick::default(),
                live: Fenwick::default(),
                dead: Fenwick::default(),
            }
        }

        fn check(&self) {
            assert_eq!(self.paired.live_total(), self.live.total());
            assert_eq!(self.paired.dead_total(), self.dead.total());
            assert_eq!(self.paired.len(), self.live.len());
            for count in 0..=self.paired.len() + 1 {
                assert_eq!(
                    self.paired.prefix_pair(count),
                    [self.live.prefix(count), self.dead.prefix(count)],
                    "prefix_pair({count})"
                );
                assert_eq!(
                    self.paired.suffix_pair(count),
                    [self.live.suffix(count), self.dead.suffix(count)],
                    "suffix_pair({count})"
                );
            }
            for target in 0..=self.live.total() + 2 {
                assert_eq!(
                    self.paired.lower_bound_live(target),
                    self.live.lower_bound(target),
                    "lower_bound_live({target})"
                );
            }
            for target in 0..=self.dead.total() + 2 {
                assert_eq!(
                    self.paired.lower_bound_dead(target),
                    self.dead.lower_bound(target),
                    "lower_bound_dead({target})"
                );
            }
        }
    }

    #[test]
    fn paired_tree_matches_two_plain_trees() {
        let mut m = PairedModel::new();
        m.check();
        // Mixed pushes (the compaction rebuild shape).
        for (live, dead) in [(5u64, 0u64), (0, 7), (3, 0), (12, 2), (0, 0), (9, 1)] {
            m.paired.push(live, dead);
            m.live.push(live);
            m.dead.push(dead);
            m.check();
        }
        // Death moves, single and batched with repeats.
        m.paired.move_to_dead(0, 5);
        m.live.sub(0, 5);
        m.dead.add(0, 5);
        m.check();
        let slots = [2u32, 3, 3];
        let deltas = [3u64, 6, 6];
        m.paired.move_to_dead_many(&slots, &deltas);
        m.live.sub_many(&slots, &deltas);
        m.dead.add_many(&slots, &deltas);
        m.check();
        // Reclamation removes dead bytes only.
        let rec_slots = [0u32, 3];
        let rec_deltas = [5u64, 12];
        m.paired.sub_dead_many(&rec_slots, &rec_deltas);
        m.dead.sub_many(&rec_slots, &rec_deltas);
        m.check();
    }

    #[test]
    fn paired_extend_live_matches_push_at_every_boundary() {
        // Including boundaries where pre-existing slots hold dead bytes —
        // the appended nodes' fix-up must cover both components.
        let vals: Vec<u64> = (1..40u64).map(|i| (i * 37) % 101 + 1).collect();
        for old in 0..vals.len() {
            for k in 0..=(vals.len() - old).min(17) {
                let mut pushed = PairedFenwick::default();
                let mut extended = PairedFenwick::default();
                for (i, &v) in vals[..old].iter().enumerate() {
                    pushed.push(v, 0);
                    extended.push(v, 0);
                    if i % 3 == 0 {
                        pushed.move_to_dead(i, v);
                        extended.move_to_dead(i, v);
                    }
                }
                for &v in &vals[old..old + k] {
                    pushed.push(v, 0);
                }
                extended.extend_live(vals[old..old + k].iter().copied());
                assert_eq!(extended.tree, pushed.tree, "old={old} k={k}");
                assert_eq!(extended.total, pushed.total, "old={old} k={k}");
            }
        }
    }

    #[test]
    fn paired_rebuild_matches_push_at_every_length() {
        // The O(n) bottom-up build must produce node-for-node the same
        // tree as pushing one pair at a time — including lengths that
        // are exact powers of two and one past them, where the last
        // node's range is largest.
        let pairs: Vec<[u64; 2]> = (0..70u64)
            .map(|i| [(i * 37) % 101, (i * 53) % 89])
            .collect();
        for n in 0..pairs.len() {
            let mut pushed = PairedFenwick::default();
            for &[live, dead] in &pairs[..n] {
                pushed.push(live, dead);
            }
            let mut rebuilt = PairedFenwick::default();
            rebuilt.push(999, 999); // stale state must be discarded
            rebuilt.rebuild_pairs(pairs[..n].iter().copied());
            assert_eq!(rebuilt.tree, pushed.tree, "n={n}");
            assert_eq!(rebuilt.total, pushed.total, "n={n}");
        }
    }

    #[test]
    fn paired_clear_keeps_capacity_and_zeroes_totals() {
        let mut p = PairedFenwick::with_capacity(8);
        p.push(10, 0);
        p.move_to_dead(0, 4);
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.live_total(), 0);
        assert_eq!(p.dead_total(), 0);
        assert_eq!(p.prefix_pair(5), [0, 0]);
        assert_eq!(p.lower_bound_live(u64::MAX), 0);
    }
}
