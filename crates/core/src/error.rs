//! Typed failures for boundary selection.
//!
//! Policies are pure arithmetic over a [`ScavengeContext`] and almost never
//! fail — but a buggy or adversarial implementation can produce a boundary
//! that is not a point on the allocation clock at all (NaN, infinite, or
//! negative float intermediates). The framework refuses to simulate such
//! garbage: [`boundary_from_f64`] is the sanctioned float-to-clock
//! conversion, and everything it rejects surfaces as a [`PolicyError`]
//! instead of a panic or a silently-wrong boundary.
//!
//! [`ScavengeContext`]: crate::policy::ScavengeContext

use crate::time::VirtualTime;

/// A boundary-selection failure.
///
/// Carried out of [`TbPolicy::select_boundary`](crate::policy::TbPolicy::select_boundary)
/// and reported by the evaluation framework as a failed cell rather than a
/// crashed run.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicyError {
    /// The policy computed a NaN or infinite boundary.
    NonFiniteBoundary {
        /// The policy's `name()`.
        policy: String,
        /// The offending value.
        value: f64,
    },
    /// The policy computed a negative boundary (before the start of the
    /// allocation clock).
    NegativeBoundary {
        /// The policy's `name()`.
        policy: String,
        /// The offending value.
        value: f64,
    },
    /// The policy failed for a reason of its own.
    Internal {
        /// The policy's `name()`.
        policy: String,
        /// What went wrong.
        reason: String,
    },
}

impl PolicyError {
    /// The name of the policy that failed.
    pub fn policy(&self) -> &str {
        match self {
            PolicyError::NonFiniteBoundary { policy, .. }
            | PolicyError::NegativeBoundary { policy, .. }
            | PolicyError::Internal { policy, .. } => policy,
        }
    }
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::NonFiniteBoundary { policy, value } => {
                write!(f, "{policy}: non-finite boundary {value}")
            }
            PolicyError::NegativeBoundary { policy, value } => {
                write!(f, "{policy}: negative boundary {value}")
            }
            PolicyError::Internal { policy, reason } => {
                write!(f, "{policy}: {reason}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// Converts a float boundary candidate to a clock point, rejecting values
/// that are not times: NaN and ±∞ ([`PolicyError::NonFiniteBoundary`]) and
/// negatives ([`PolicyError::NegativeBoundary`]). Values beyond `u64::MAX`
/// saturate — the engine clamps boundaries to `now` anyway.
///
/// # Example
///
/// ```
/// use dtb_core::error::{boundary_from_f64, PolicyError};
/// use dtb_core::time::VirtualTime;
///
/// assert_eq!(
///     boundary_from_f64("MINE", 1500.0),
///     Ok(VirtualTime::from_bytes(1500))
/// );
/// assert!(matches!(
///     boundary_from_f64("MINE", f64::NAN),
///     Err(PolicyError::NonFiniteBoundary { .. })
/// ));
/// assert!(matches!(
///     boundary_from_f64("MINE", -1.0),
///     Err(PolicyError::NegativeBoundary { .. })
/// ));
/// ```
pub fn boundary_from_f64(policy: &str, value: f64) -> Result<VirtualTime, PolicyError> {
    if !value.is_finite() {
        return Err(PolicyError::NonFiniteBoundary {
            policy: policy.to_owned(),
            value,
        });
    }
    if value < 0.0 {
        return Err(PolicyError::NegativeBoundary {
            policy: policy.to_owned(),
            value,
        });
    }
    if value >= u64::MAX as f64 {
        return Ok(VirtualTime::from_bytes(u64::MAX));
    }
    Ok(VirtualTime::from_bytes(value as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_convert() {
        assert_eq!(boundary_from_f64("P", 0.0), Ok(VirtualTime::ZERO));
        assert_eq!(
            boundary_from_f64("P", 12.9),
            Ok(VirtualTime::from_bytes(12))
        );
    }

    #[test]
    fn huge_values_saturate() {
        assert_eq!(
            boundary_from_f64("P", f64::MAX),
            Ok(VirtualTime::from_bytes(u64::MAX))
        );
    }

    #[test]
    fn nan_and_infinities_rejected() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = boundary_from_f64("P", v).unwrap_err();
            match err {
                PolicyError::NonFiniteBoundary { ref policy, .. } => assert_eq!(policy, "P"),
                other => panic!("expected NonFiniteBoundary, got {other:?}"),
            }
            assert!(err.to_string().contains("non-finite"));
        }
    }

    #[test]
    fn negatives_rejected() {
        let err = boundary_from_f64("P", -0.5).unwrap_err();
        assert!(matches!(err, PolicyError::NegativeBoundary { .. }));
        assert_eq!(err.policy(), "P");
    }

    #[test]
    fn internal_error_displays_reason() {
        let err = PolicyError::Internal {
            policy: "MINE".into(),
            reason: "no history".into(),
        };
        assert_eq!(err.to_string(), "MINE: no history");
        assert_eq!(err.policy(), "MINE");
    }
}
