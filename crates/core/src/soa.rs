//! Straight-line reductions over struct-of-arrays lifetime columns.
//!
//! The simulator's heaps and trace sources keep object lifetimes as flat
//! parallel columns (`births`/`sizes`/`deaths`) rather than arrays of
//! structs, so the hot walks are slice reductions the compiler can
//! autovectorize: no early exits, no data-dependent control flow, just a
//! masked accumulate per lane. Death times use `u64::MAX` as the
//! "immortal" sentinel (the on-disk `DTBCTC01` convention), which
//! compares as *not yet dead* against any real clock without a branch.
//!
//! The kernels are `#[inline]` so they fuse into their (release-built)
//! callers; the `microbench` crate measures them in isolation and the
//! tests here pin their semantics against scalar references.

/// Sum of `sizes[i]` over the lanes with `deaths[i] <= now`, plus the
/// count of such lanes.
///
/// This is the threatened-tail walk's first pass: given the narrowed
/// resident range of a scavenge, it answers "how many bytes (and
/// residents) in this range are dead at `now`" in one branch-free sweep,
/// letting the caller pick a bulk removal path when the whole range is
/// dead and cross-check the Fenwick suffix accounting. Lanes with the
/// `u64::MAX` immortal sentinel never match (no real clock reaches it).
///
/// # Panics
///
/// Panics (in debug builds) if the column lengths differ.
#[inline]
pub fn dead_tail_stats(deaths: &[u64], sizes: &[u32], now: u64) -> (u64, usize) {
    debug_assert_eq!(deaths.len(), sizes.len());
    let mut bytes = 0u64;
    let mut count = 0usize;
    for (&death, &size) in deaths.iter().zip(sizes) {
        let dead = (death <= now) as u64;
        bytes += dead * size as u64;
        count += dead as usize;
    }
    (bytes, count)
}

/// Sum of a `u32` size column widened to `u64`.
///
/// The block drive loop charges a whole event block against triggers,
/// budgets, and curve sampling using its total byte volume; this is that
/// total as a single autovectorizable reduction.
#[inline]
pub fn sum_sizes(sizes: &[u32]) -> u64 {
    let mut sum = 0u64;
    for &size in sizes {
        sum += size as u64;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_tail_stats_matches_scalar_reference() {
        let deaths: Vec<u64> = (0..257u64)
            .map(|i| if i % 5 == 0 { u64::MAX } else { i * 13 % 400 })
            .collect();
        let sizes: Vec<u32> = (0..257u32).map(|i| i % 91 + 1).collect();
        for now in [0u64, 1, 57, 200, 399, 400, u64::MAX - 1, u64::MAX] {
            let mut bytes = 0u64;
            let mut count = 0usize;
            for (&d, &s) in deaths.iter().zip(&sizes) {
                if d <= now {
                    bytes += s as u64;
                    count += 1;
                }
            }
            assert_eq!(dead_tail_stats(&deaths, &sizes, now), (bytes, count));
        }
    }

    #[test]
    fn immortal_sentinel_only_dies_at_saturated_now() {
        // `now == u64::MAX` cannot arise from a real allocation clock, but
        // the kernel's contract is still total: the sentinel compares dead
        // only there.
        let deaths = [u64::MAX, 3];
        let sizes = [10u32, 7];
        assert_eq!(dead_tail_stats(&deaths, &sizes, u64::MAX - 1), (7, 1));
        assert_eq!(dead_tail_stats(&deaths, &sizes, u64::MAX), (17, 2));
    }

    #[test]
    fn empty_columns_sum_to_zero() {
        assert_eq!(dead_tail_stats(&[], &[], 42), (0, 0));
        assert_eq!(sum_sizes(&[]), 0);
    }

    #[test]
    fn sum_sizes_widens() {
        let sizes = vec![u32::MAX; 3];
        assert_eq!(sum_sizes(&sizes), 3 * (u32::MAX as u64));
    }
}
