//! Dynamic Threatening Boundary (DTB) garbage-collection policy framework.
//!
//! This crate implements the policy layer of Barrett & Zorn's *Garbage
//! Collection Using a Dynamic Threatening Boundary* (CU-CS-659-93 / PLDI
//! 1995). It is deliberately independent of any particular heap: both the
//! trace-driven simulator (`dtb-sim`) and the real mark–sweep collector
//! (`dtb-heap`) drive their scavenges through the same
//! [`TbPolicy`](policy::TbPolicy) trait.
//!
//! # Model
//!
//! Following Demers et al., a collection partitions the heap into a
//! *threatened* set (objects that will be traced, and reclaimed if
//! unreachable) and an *immune* set (objects that survive this collection
//! unexamined). A **threatening boundary** is a point on the allocation
//! clock: objects born strictly after the boundary are threatened, objects
//! born at or before it are immune. Classic collectors are special cases of
//! boundary selection (see [`policy`]):
//!
//! | Collector | Boundary before scavenge *n* |
//! |-----------|------------------------------|
//! | `FULL`    | `0` |
//! | `FIXED1`  | `t_{n-1}` |
//! | `FIXED4`  | `t_{n-4}` |
//! | `FEEDMED` | Ungar–Jackson Feedback Mediation |
//! | `DTBFM`   | pause-constrained dynamic boundary |
//! | `DTBMEM`  | memory-constrained dynamic boundary |
//!
//! # Example
//!
//! ```
//! use dtb_core::policy::{DtbFm, TbPolicy, ScavengeContext, NoSurvivalInfo};
//! use dtb_core::history::ScavengeHistory;
//! use dtb_core::time::{Bytes, VirtualTime};
//!
//! // A pause-constrained policy with a 50 KB trace budget (100 ms at the
//! // paper's 500 KB/s tracing rate).
//! let mut policy = DtbFm::new(Bytes::from_kb(50));
//! let history = ScavengeHistory::new();
//! let ctx = ScavengeContext {
//!     now: VirtualTime::from_bytes(1_000_000),
//!     mem_before: Bytes::new(400_000),
//!     history: &history,
//!     survival: &NoSurvivalInfo,
//! };
//! // The first scavenge is always a full collection.
//! assert_eq!(policy.select_boundary(&ctx), Ok(VirtualTime::ZERO));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod cost;
pub mod error;
pub mod fenwick;
pub mod framework;
pub mod history;
pub mod obs;
pub mod policy;
pub mod soa;
pub mod stats;
pub mod time;

pub use constraint::Constraint;
pub use cost::CostModel;
pub use error::PolicyError;
pub use history::{ScavengeHistory, ScavengeRecord};
pub use policy::{ScavengeContext, SurvivalEstimator, TbPolicy};
pub use time::{Bytes, VirtualTime};
