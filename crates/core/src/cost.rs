//! The simulation cost model.
//!
//! The paper evaluates every collector under one machine model: a CPU that
//! executes 10 million instructions per second, whose collector traces
//! 500 kilobytes per second. Pause times are therefore *directly
//! proportional to storage traced* — a user-facing pause-time constraint in
//! milliseconds converts losslessly into a `Trace_max` byte budget, which is
//! what the policies actually consume.

use crate::time::Bytes;
use serde::{Deserialize, Serialize};

/// Machine parameters converting between traced bytes, pause seconds, and
/// CPU overhead.
///
/// # Example
///
/// ```
/// use dtb_core::cost::CostModel;
/// use dtb_core::time::Bytes;
///
/// let m = CostModel::paper();
/// // The paper's 100 ms pause budget is a 50 000-byte trace budget.
/// assert_eq!(m.trace_budget_for_pause_ms(100.0), Bytes::new(50_000));
/// assert!((m.pause_ms(Bytes::new(50_000)) - 100.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Mutator speed, instructions per second (paper: 10 million).
    pub instructions_per_second: u64,
    /// Collector tracing rate, bytes per second (paper: 500 000; the paper
    /// speaks of "500 kilobytes per second" and converts 100 ms to "50
    /// thousand bytes traced", so kilobyte = 1000 bytes here).
    pub trace_bytes_per_second: u64,
}

impl CostModel {
    /// The configuration used throughout the paper's evaluation
    /// (approximating Ungar & Jackson's measurement machine).
    pub const fn paper() -> CostModel {
        CostModel {
            instructions_per_second: 10_000_000,
            trace_bytes_per_second: 500_000,
        }
    }

    /// Creates a cost model.
    ///
    /// # Panics
    ///
    /// Panics if either rate is zero.
    pub fn new(instructions_per_second: u64, trace_bytes_per_second: u64) -> CostModel {
        assert!(
            instructions_per_second > 0,
            "instruction rate must be positive"
        );
        assert!(trace_bytes_per_second > 0, "trace rate must be positive");
        CostModel {
            instructions_per_second,
            trace_bytes_per_second,
        }
    }

    /// Pause time, in milliseconds, for a scavenge that traces `traced`
    /// bytes.
    pub fn pause_ms(&self, traced: Bytes) -> f64 {
        traced.as_u64() as f64 / self.trace_bytes_per_second as f64 * 1000.0
    }

    /// Seconds the collector spends tracing `traced` bytes.
    pub fn trace_seconds(&self, traced: Bytes) -> f64 {
        traced.as_u64() as f64 / self.trace_bytes_per_second as f64
    }

    /// Converts a pause-time budget in milliseconds to the equivalent
    /// `Trace_max` byte budget.
    ///
    /// Non-positive budgets map to [`Bytes::ZERO`].
    pub fn trace_budget_for_pause_ms(&self, pause_ms: f64) -> Bytes {
        if pause_ms.is_nan() || pause_ms <= 0.0 {
            return Bytes::ZERO;
        }
        Bytes::new((pause_ms / 1000.0 * self.trace_bytes_per_second as f64) as u64)
    }

    /// CPU overhead, in percent, of tracing `traced_total` bytes during a
    /// program that runs for `program_seconds` of mutator time.
    ///
    /// This matches Table 4's "Estimated CPU Overhead (%)": time spent
    /// tracing divided by program execution time.
    pub fn overhead_percent(&self, traced_total: Bytes, program_seconds: f64) -> f64 {
        if program_seconds <= 0.0 {
            return 0.0;
        }
        self.trace_seconds(traced_total) / program_seconds * 100.0
    }

    /// Mutator execution seconds implied by an instruction count.
    pub fn seconds_for_instructions(&self, instructions: u64) -> f64 {
        instructions as f64 / self.instructions_per_second as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_round_trip() {
        let m = CostModel::paper();
        assert_eq!(m.instructions_per_second, 10_000_000);
        assert_eq!(m.trace_bytes_per_second, 500_000);
        // 100 ms ⟷ 50 KB (decimal) as stated in Section 5.
        assert_eq!(m.trace_budget_for_pause_ms(100.0), Bytes::new(50_000));
        assert!((m.pause_ms(Bytes::new(50_000)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pause_scales_linearly_with_traced_bytes() {
        let m = CostModel::paper();
        let one = m.pause_ms(Bytes::new(10_000));
        let two = m.pause_ms(Bytes::new(20_000));
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn overhead_percent_matches_hand_computation() {
        let m = CostModel::paper();
        // Tracing 1 MB (decimal-ish) takes 2 s; over a 100 s program that is 2 %.
        let pct = m.overhead_percent(Bytes::new(1_000_000), 100.0);
        assert!((pct - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_clamp() {
        let m = CostModel::paper();
        assert_eq!(m.trace_budget_for_pause_ms(0.0), Bytes::ZERO);
        assert_eq!(m.trace_budget_for_pause_ms(-5.0), Bytes::ZERO);
        assert_eq!(m.trace_budget_for_pause_ms(f64::NAN), Bytes::ZERO);
        assert_eq!(m.overhead_percent(Bytes::new(1), 0.0), 0.0);
    }

    #[test]
    fn seconds_for_instructions() {
        let m = CostModel::paper();
        assert!((m.seconds_for_instructions(10_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "trace rate must be positive")]
    fn zero_trace_rate_rejected() {
        let _ = CostModel::new(1, 0);
    }
}
