//! The non-generational full collector: `TB_n ← 0`.

use super::{PolicyError, ScavengeContext, TbPolicy};
use crate::time::VirtualTime;

/// `FULL`: every scavenge threatens the whole heap.
///
/// Traces all reachable storage and reclaims all garbage at every
/// collection. It is the memory-optimal and CPU-pessimal endpoint of the
/// trade-off space; the paper uses it as the baseline every other collector
/// is judged against (Tables 2 and 4), and over-constrained `DTBMEM`
/// degrades to it.
///
/// # Example
///
/// ```
/// use dtb_core::policy::{Full, TbPolicy, ScavengeContext, NoSurvivalInfo};
/// use dtb_core::history::ScavengeHistory;
/// use dtb_core::time::{Bytes, VirtualTime};
///
/// let mut full = Full::new();
/// let history = ScavengeHistory::new();
/// let ctx = ScavengeContext {
///     now: VirtualTime::from_bytes(2_000_000),
///     mem_before: Bytes::new(700_000),
///     history: &history,
///     survival: &NoSurvivalInfo,
/// };
/// assert_eq!(full.select_boundary(&ctx), Ok(VirtualTime::ZERO));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Full;

impl Full {
    /// Creates the full-collection policy.
    pub fn new() -> Full {
        Full
    }
}

impl TbPolicy for Full {
    fn name(&self) -> &str {
        "FULL"
    }

    fn select_boundary(&mut self, _ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        Ok(VirtualTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::NoSurvivalInfo;
    use super::*;
    use crate::history::ScavengeHistory;
    use crate::time::{Bytes, VirtualTime};

    #[test]
    fn always_zero_regardless_of_history() {
        let mut p = Full::new();
        let est = NoSurvivalInfo;
        let mut h = ScavengeHistory::new();
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(100))
                    .mem(Bytes::new(10))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::ZERO)
        );
        h.push(rec(100, 0, 50, 50, 100));
        h.push(rec(200, 0, 60, 60, 110));
        assert_eq!(
            p.select_boundary(
                &ScavengeContext::at(VirtualTime::from_bytes(300))
                    .mem(Bytes::new(10))
                    .history(&h)
                    .survival(&est)
            ),
            Ok(VirtualTime::ZERO)
        );
    }

    #[test]
    fn reports_no_constraint() {
        assert!(Full::new().constraint().is_none());
        assert_eq!(Full::new().name(), "FULL");
    }
}
