//! Threatening-boundary selection policies (Table 1 of the paper).
//!
//! A [`TbPolicy`] is consulted immediately before every scavenge. Given the
//! current allocation-clock time `t_n`, the memory in use `Mem_n`, the
//! [`ScavengeHistory`] of completed collections, and a
//! [`SurvivalEstimator`], it returns the threatening boundary `TB_n`:
//! objects born **strictly after** `TB_n` are threatened (traced, and
//! reclaimed if unreachable); objects born at or before it are immune.
//!
//! The six collectors the paper evaluates correspond to:
//!
//! * [`Full`] — `TB_n = 0`: a non-generational full collection every time.
//! * [`Fixed`]`(1)` / `Fixed(4)` — `TB_n = t_{n-1}` / `t_{n-4}`: classic
//!   generational promotion after a fixed number of survived scavenges.
//! * [`FeedMed`] — Ungar & Jackson's Feedback Mediation: advance the
//!   boundary only when the pause budget was exceeded.
//! * [`DtbFm`] — the paper's pause-time-constrained policy: Feedback
//!   Mediation on over-budget pauses, plus *backward* boundary motion on
//!   under-budget pauses to reclaim tenured garbage.
//! * [`DtbMem`] — the paper's memory-constrained policy: place the boundary
//!   so predicted tenured garbage keeps total memory within `Mem_max`.
//!
//! Beyond the paper, [`DtbDual`] composes both constraints (pause budget
//! wins on conflict), and [`LiveEstimate`] exposes `DTBMEM`'s live-data
//! estimator for ablation.

mod dtbfm;
mod dtbmem;
mod dual;
mod feedmed;
mod fixed;
mod full;
mod kind;

pub use dtbfm::DtbFm;
pub use dtbmem::{DtbMem, LiveEstimate};
pub use dual::DtbDual;
pub use feedmed::FeedMed;
pub use fixed::Fixed;
pub use full::Full;
pub use kind::{PolicyConfig, PolicyKind, Row};

pub use crate::error::PolicyError;

use crate::history::{BoundaryCandidates, ScavengeHistory};
use crate::time::{Bytes, VirtualTime};

/// The empty history the [`ScavengeContext`] builder starts from.
static EMPTY_HISTORY: ScavengeHistory = ScavengeHistory::new();

/// The no-information estimator the [`ScavengeContext`] builder starts
/// from.
static NO_SURVIVAL: NoSurvivalInfo = NoSurvivalInfo;

/// Everything a policy may consult when choosing `TB_n`.
///
/// Lifetimes tie the context to the collector's state for the duration of
/// one boundary decision; policies never retain it.
#[derive(Clone, Copy)]
pub struct ScavengeContext<'a> {
    /// `t_n`: the allocation-clock time of the imminent scavenge.
    pub now: VirtualTime,
    /// `Mem_n`: bytes of storage in use just before the scavenge.
    pub mem_before: Bytes,
    /// Records of scavenges `0 .. n-1`.
    pub history: &'a ScavengeHistory,
    /// Survival information for Feedback Mediation's `Born_j` sums.
    pub survival: &'a dyn SurvivalEstimator,
}

impl ScavengeContext<'static> {
    /// Starts building a context for a boundary decision at time `now`.
    ///
    /// The remaining fields default to "nothing known": zero memory in
    /// use, an empty history, and [`NoSurvivalInfo`]. Chain
    /// [`mem`](ScavengeContext::mem), [`history`](ScavengeContext::history)
    /// and [`survival`](ScavengeContext::survival) to fill them in:
    ///
    /// ```
    /// use dtb_core::history::ScavengeHistory;
    /// use dtb_core::policy::{NoSurvivalInfo, ScavengeContext};
    /// use dtb_core::time::{Bytes, VirtualTime};
    ///
    /// let h = ScavengeHistory::new();
    /// let s = NoSurvivalInfo;
    /// let ctx = ScavengeContext::at(VirtualTime::from_bytes(1_000_000))
    ///     .mem(Bytes::from_kb(512))
    ///     .history(&h)
    ///     .survival(&s);
    /// assert_eq!(ctx.prev_time(), None);
    /// ```
    pub fn at(now: VirtualTime) -> ScavengeContext<'static> {
        ScavengeContext {
            now,
            mem_before: Bytes::ZERO,
            history: &EMPTY_HISTORY,
            survival: &NO_SURVIVAL,
        }
    }
}

impl<'a> ScavengeContext<'a> {
    /// Sets `Mem_n`, the bytes in use just before the scavenge.
    pub fn mem(mut self, mem_before: Bytes) -> ScavengeContext<'a> {
        self.mem_before = mem_before;
        self
    }

    /// Sets the scavenge history the policy consults.
    ///
    /// The context's lifetime shrinks to the shorter of the current one
    /// and the borrow of `history` (the struct is covariant in `'a`).
    pub fn history<'b>(self, history: &'b ScavengeHistory) -> ScavengeContext<'b>
    where
        'a: 'b,
    {
        ScavengeContext { history, ..self }
    }

    /// Sets the survival estimator the policy consults.
    pub fn survival<'b>(self, survival: &'b dyn SurvivalEstimator) -> ScavengeContext<'b>
    where
        'a: 'b,
    {
        ScavengeContext { survival, ..self }
    }

    /// `t_{n-1}`, the time of the previous scavenge, if one has happened.
    pub fn prev_time(&self) -> Option<VirtualTime> {
        self.history.last().map(|r| r.at)
    }

    /// `TB_{n-1}`, the boundary used by the previous scavenge.
    pub fn prev_boundary(&self) -> Option<VirtualTime> {
        self.history.last().map(|r| r.boundary)
    }
}

impl core::fmt::Debug for ScavengeContext<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ScavengeContext")
            .field("now", &self.now)
            .field("mem_before", &self.mem_before)
            .field("completed_scavenges", &self.history.len())
            .finish_non_exhaustive()
    }
}

/// Supplies the survival estimates Feedback Mediation needs.
///
/// `Σ_{j=k}^{n-1} Born_j` in Table 1 — the storage allocated after `t_k`
/// that is still live at `t_n` — is exactly the storage a scavenge with
/// boundary `t_k` would trace. Implementors answer that question:
///
/// * the trace-driven simulator answers it exactly from its lifetime
///   oracle;
/// * a real collector answers it conservatively from the objects currently
///   registered in the heap (reachable or not), which over-estimates and
///   therefore never under-mediates.
pub trait SurvivalEstimator {
    /// Estimated bytes the collector would trace with boundary `tb` at the
    /// imminent scavenge: storage born strictly after `tb` and surviving.
    fn surviving_born_after(&self, tb: VirtualTime) -> Bytes;

    /// The inverse query: the **oldest** candidate boundary whose
    /// predicted trace fits `trace_max`, or `None` when no candidate
    /// fits (or there are none).
    ///
    /// This is the search at the heart of Feedback Mediation —
    /// `least { t_k | Trace_max ≥ surviving_born_after(t_k) }` — pulled
    /// into the estimator so an indexed implementation can answer it
    /// without probing candidates one at a time.
    ///
    /// # Contract
    ///
    /// `surviving_born_after` is monotone non-increasing in `tb` (moving
    /// the boundary later can only shrink the threatened region), and
    /// `candidates` ascend in time, so the fitting candidates form a
    /// suffix of the candidate list. Any implementation must return
    /// exactly what the default scan returns: the first candidate, in
    /// ascending order, with `surviving_born_after(t) <= trace_max`. The
    /// simulator's Fenwick-backed estimator overrides this with an
    /// `O(log n)` descent; the differential and property suites hold the
    /// two answers equal.
    fn oldest_boundary_within(
        &self,
        trace_max: Bytes,
        candidates: BoundaryCandidates<'_>,
    ) -> Option<VirtualTime> {
        if !crate::obs::enabled() {
            return candidates
                .times()
                .find(|&t| self.surviving_born_after(t) <= trace_max);
        }
        // Instrumented twin of the scan above: counts one inverse-query
        // call and one probe per candidate examined.
        let mut probes = 0u64;
        let found = candidates.times().find(|&t| {
            probes += 1;
            self.surviving_born_after(t) <= trace_max
        });
        crate::obs::note_inverse_query(probes);
        found
    }
}

/// Lends out borrowed, allocation-free [`SurvivalEstimator`] views frozen
/// at a scavenge decision point.
///
/// The simulator's oracle heap maintains incrementally-updated indices and
/// lends a view *into* them — no per-scavenge copying — so the estimator
/// type is a generic associated type carrying the lender's lifetime. A
/// lender that must materialize its answer (e.g. a naive reference
/// implementation) simply picks an owned type for `Survival`.
pub trait SurvivalLender {
    /// The estimator lent for one boundary decision; may borrow from
    /// `self`.
    type Survival<'a>: SurvivalEstimator
    where
        Self: 'a;

    /// Freezes a survival view at time `now`.
    ///
    /// Takes `&mut self` so lenders may bring lazily-maintained indices
    /// up to `now` before lending; `now` must not move backwards across
    /// calls on one lender.
    fn survival_view(&mut self, now: VirtualTime) -> Self::Survival<'_>;
}

/// A [`SurvivalEstimator`] for callers with no survival information.
///
/// Always answers zero, which makes Feedback Mediation keep the youngest
/// admissible boundary. Useful in tests and for policies that never consult
/// the estimator ([`Full`], [`Fixed`], [`DtbMem`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoSurvivalInfo;

impl SurvivalEstimator for NoSurvivalInfo {
    fn surviving_born_after(&self, _tb: VirtualTime) -> Bytes {
        Bytes::ZERO
    }
}

impl SurvivalLender for NoSurvivalInfo {
    type Survival<'a> = NoSurvivalInfo;

    fn survival_view(&mut self, _now: VirtualTime) -> NoSurvivalInfo {
        NoSurvivalInfo
    }
}

/// A boundary-selection policy: the single point of variation among all the
/// collectors in the paper.
///
/// Implementations must be deterministic functions of the context (plus any
/// internal state they carry), and must return a boundary no later than
/// `ctx.now`.
pub trait TbPolicy {
    /// A short stable identifier, e.g. `"DTBFM"`, used in reports.
    fn name(&self) -> &str;

    /// Chooses the threatening boundary `TB_n` for the imminent scavenge.
    ///
    /// Returning [`VirtualTime::ZERO`] requests a full collection. The
    /// returned boundary is clamped by callers to `[0, ctx.now]`.
    ///
    /// # Errors
    ///
    /// The paper's six collectors never fail; the `Result` exists for
    /// policies whose arithmetic can go wrong — float intermediates that
    /// turn NaN, infinite, or negative (convert them through
    /// [`boundary_from_f64`](crate::error::boundary_from_f64)), or any
    /// internal failure worth reporting as [`PolicyError::Internal`]. The
    /// evaluation framework reports an `Err` as a failed cell instead of
    /// simulating a garbage boundary.
    fn select_boundary(&mut self, ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError>;

    /// The constraint this policy tracks, for reporting. `None` for
    /// unconstrained policies.
    fn constraint(&self) -> Option<crate::constraint::Constraint> {
        None
    }

    /// Serializes any internal state the policy carries *beyond* the
    /// scavenge history, for checkpointing.
    ///
    /// The paper's six collectors are pure functions of the
    /// [`ScavengeContext`] and need nothing here, so the default returns
    /// an empty buffer. A stateful policy must override both this and
    /// [`restore_state`](TbPolicy::restore_state) so that a simulation
    /// resumed from a checkpoint replays identically to one that never
    /// stopped.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state previously produced by
    /// [`save_state`](TbPolicy::save_state).
    ///
    /// # Errors
    ///
    /// The default implementation accepts only the empty buffer; handing
    /// saved state to a policy that never saves any is a configuration
    /// mismatch and fails with [`PolicyError::Internal`] rather than
    /// silently resuming with different behaviour.
    fn restore_state(&mut self, state: &[u8]) -> Result<(), PolicyError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(PolicyError::Internal {
                policy: self.name().to_string(),
                reason: format!(
                    "cannot restore {} bytes of saved state into a stateless policy",
                    state.len()
                ),
            })
        }
    }
}

impl<P: TbPolicy + ?Sized> TbPolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn select_boundary(&mut self, ctx: &ScavengeContext<'_>) -> Result<VirtualTime, PolicyError> {
        (**self).select_boundary(ctx)
    }
    fn constraint(&self) -> Option<crate::constraint::Constraint> {
        (**self).constraint()
    }
    fn save_state(&self) -> Vec<u8> {
        (**self).save_state()
    }
    fn restore_state(&mut self, state: &[u8]) -> Result<(), PolicyError> {
        (**self).restore_state(state)
    }
}

/// Clamps a candidate boundary into the legal range `[0, latest]`.
///
/// The paper's policies never threaten *less* than the storage allocated
/// since the previous scavenge ("we always want to trace an object at least
/// once"), so `latest` is normally `t_{n-1}`.
pub(crate) fn clamp_boundary(candidate: VirtualTime, latest: VirtualTime) -> VirtualTime {
    candidate.min(latest)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for policy unit tests.
    use super::*;
    use crate::history::ScavengeRecord;

    /// An estimator backed by an explicit piecewise table:
    /// `surviving_born_after(tb)` is the sum of `sizes` of entries with
    /// `birth > tb`.
    pub struct TableEstimator {
        /// (birth, surviving bytes born at that instant)
        pub entries: Vec<(u64, u64)>,
    }

    impl SurvivalEstimator for TableEstimator {
        fn surviving_born_after(&self, tb: VirtualTime) -> Bytes {
            Bytes::new(
                self.entries
                    .iter()
                    .filter(|(birth, _)| VirtualTime::from_bytes(*birth) > tb)
                    .map(|(_, sz)| *sz)
                    .sum(),
            )
        }
    }

    /// Builds a record with the fields policies actually read.
    pub fn rec(
        at: u64,
        boundary: u64,
        traced: u64,
        surviving: u64,
        mem_before: u64,
    ) -> ScavengeRecord {
        ScavengeRecord {
            at: VirtualTime::from_bytes(at),
            boundary: VirtualTime::from_bytes(boundary),
            traced: Bytes::new(traced),
            surviving: Bytes::new(surviving),
            reclaimed: Bytes::new(mem_before.saturating_sub(surviving)),
            mem_before: Bytes::new(mem_before),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn context_prev_accessors() {
        let mut h = ScavengeHistory::new();
        let est = NoSurvivalInfo;
        {
            let c = ScavengeContext::at(VirtualTime::from_bytes(100))
                .mem(Bytes::new(50))
                .history(&h)
                .survival(&est);
            assert_eq!(c.prev_time(), None);
            assert_eq!(c.prev_boundary(), None);
        }
        h.push(rec(100, 40, 10, 10, 20));
        let c = ScavengeContext::at(VirtualTime::from_bytes(200))
            .mem(Bytes::new(50))
            .history(&h)
            .survival(&est);
        assert_eq!(c.prev_time(), Some(VirtualTime::from_bytes(100)));
        assert_eq!(c.prev_boundary(), Some(VirtualTime::from_bytes(40)));
    }

    #[test]
    fn no_survival_info_is_zero_everywhere() {
        assert_eq!(
            NoSurvivalInfo.surviving_born_after(VirtualTime::ZERO),
            Bytes::ZERO
        );
    }

    #[test]
    fn table_estimator_is_monotone_nonincreasing() {
        let est = TableEstimator {
            entries: vec![(10, 5), (20, 7), (30, 2)],
        };
        let mut prev = u64::MAX;
        for tb in [0u64, 10, 15, 20, 25, 30, 40] {
            let v = est
                .surviving_born_after(VirtualTime::from_bytes(tb))
                .as_u64();
            assert!(v <= prev, "estimator must be non-increasing in tb");
            prev = v;
        }
        assert_eq!(est.surviving_born_after(VirtualTime::ZERO), Bytes::new(14));
        assert_eq!(
            est.surviving_born_after(VirtualTime::from_bytes(10)),
            Bytes::new(9)
        );
    }

    #[test]
    fn boxed_policy_delegates() {
        let mut boxed: Box<dyn TbPolicy> = Box::new(Full::new());
        let h = ScavengeHistory::new();
        let est = NoSurvivalInfo;
        let c = ScavengeContext::at(VirtualTime::from_bytes(500))
            .mem(Bytes::new(100))
            .history(&h)
            .survival(&est);
        assert_eq!(boxed.name(), "FULL");
        assert_eq!(boxed.select_boundary(&c), Ok(VirtualTime::ZERO));
        assert!(boxed.constraint().is_none());
    }

    /// A deliberately stateful policy: alternates between full and
    /// no-op collections, so its behaviour depends on a bit of carried
    /// state that checkpointing must preserve.
    struct Alternator {
        odd: bool,
    }

    impl TbPolicy for Alternator {
        fn name(&self) -> &str {
            "ALT"
        }
        fn select_boundary(
            &mut self,
            ctx: &ScavengeContext<'_>,
        ) -> Result<VirtualTime, PolicyError> {
            self.odd = !self.odd;
            Ok(if self.odd { VirtualTime::ZERO } else { ctx.now })
        }
        fn save_state(&self) -> Vec<u8> {
            vec![u8::from(self.odd)]
        }
        fn restore_state(&mut self, state: &[u8]) -> Result<(), PolicyError> {
            match state {
                [bit @ (0 | 1)] => {
                    self.odd = *bit == 1;
                    Ok(())
                }
                _ => Err(PolicyError::Internal {
                    policy: self.name().to_string(),
                    reason: "unrecognized saved state".into(),
                }),
            }
        }
    }

    #[test]
    fn stateless_policies_save_empty_state_and_accept_it_back() {
        let mut p = Full::new();
        assert!(p.save_state().is_empty());
        assert_eq!(p.restore_state(&[]), Ok(()));
    }

    #[test]
    fn stateless_policies_reject_foreign_state() {
        let mut p = Full::new();
        let err = p.restore_state(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.policy(), "FULL");
        assert!(err.to_string().contains("stateless"));
    }

    #[test]
    fn stateful_policy_round_trips_through_save_restore() {
        let h = ScavengeHistory::new();
        let est = NoSurvivalInfo;
        let mut original = Alternator { odd: false };
        // Advance the original an odd number of steps so the carried bit
        // is set, then clone it via the save/restore seam.
        for now in [100u64, 200, 300] {
            let c = ScavengeContext::at(VirtualTime::from_bytes(now))
                .mem(Bytes::new(50))
                .history(&h)
                .survival(&est);
            original.select_boundary(&c).unwrap();
        }
        let mut resumed = Alternator { odd: false };
        resumed.restore_state(&original.save_state()).unwrap();
        for now in [400u64, 500, 600, 700] {
            let c = ScavengeContext::at(VirtualTime::from_bytes(now))
                .mem(Bytes::new(50))
                .history(&h)
                .survival(&est);
            assert_eq!(
                original.select_boundary(&c),
                resumed.select_boundary(&c),
                "resumed policy diverged at t={now}"
            );
        }
    }

    #[test]
    fn boxed_policy_delegates_state_seam() {
        let mut boxed: Box<dyn TbPolicy> = Box::new(Alternator { odd: true });
        assert_eq!(boxed.save_state(), vec![1]);
        boxed.restore_state(&[0]).unwrap();
        assert_eq!(boxed.save_state(), vec![0]);
        assert!(boxed.restore_state(&[7]).is_err());
    }

    #[test]
    fn clamp_boundary_caps_at_latest() {
        assert_eq!(
            clamp_boundary(VirtualTime::from_bytes(10), VirtualTime::from_bytes(5)),
            VirtualTime::from_bytes(5)
        );
        assert_eq!(
            clamp_boundary(VirtualTime::from_bytes(3), VirtualTime::from_bytes(5)),
            VirtualTime::from_bytes(3)
        );
    }
}
