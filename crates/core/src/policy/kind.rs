//! Named policy construction for harnesses and configuration files.

use super::{DtbFm, DtbMem, FeedMed, Fixed, Full, TbPolicy};
use crate::cost::CostModel;
use crate::time::Bytes;
use serde::{Deserialize, Serialize};

/// The six collector configurations evaluated in the paper, as data.
///
/// Lets benchmark harnesses, tests, and CLI tools iterate over "all the
/// collectors in Table 1" without hard-coding constructor calls.
///
/// # Example
///
/// ```
/// use dtb_core::policy::{PolicyKind, PolicyConfig};
///
/// let cfg = PolicyConfig::paper();
/// let mut names: Vec<&str> = Vec::new();
/// for kind in PolicyKind::ALL {
///     names.push(kind.label());
///     let _policy = kind.build(&cfg);
/// }
/// assert_eq!(names, ["FULL", "FIXED1", "FIXED4", "DTBMEM", "FEEDMED", "DTBFM"]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Non-generational full collection.
    Full,
    /// Classic generational, tenure after 1 survived scavenge.
    Fixed1,
    /// Classic generational, tenure after 4 survived scavenges.
    Fixed4,
    /// Memory-constrained dynamic threatening boundary.
    DtbMem,
    /// Ungar–Jackson Feedback Mediation.
    FeedMed,
    /// Pause-constrained dynamic threatening boundary.
    DtbFm,
}

impl PolicyKind {
    /// All six collectors, in the row order of the paper's tables.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Full,
        PolicyKind::Fixed1,
        PolicyKind::Fixed4,
        PolicyKind::DtbMem,
        PolicyKind::FeedMed,
        PolicyKind::DtbFm,
    ];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Full => "FULL",
            PolicyKind::Fixed1 => "FIXED1",
            PolicyKind::Fixed4 => "FIXED4",
            PolicyKind::DtbMem => "DTBMEM",
            PolicyKind::FeedMed => "FEEDMED",
            PolicyKind::DtbFm => "DTBFM",
        }
    }

    /// Instantiates the policy under a configuration.
    pub fn build(self, cfg: &PolicyConfig) -> Box<dyn TbPolicy> {
        match self {
            PolicyKind::Full => Box::new(Full::new()),
            PolicyKind::Fixed1 => Box::new(Fixed::new(1)),
            PolicyKind::Fixed4 => Box::new(Fixed::new(4)),
            PolicyKind::DtbMem => Box::new(DtbMem::new(cfg.mem_max)),
            PolicyKind::FeedMed => Box::new(FeedMed::new(cfg.trace_max)),
            PolicyKind::DtbFm => Box::new(DtbFm::new(cfg.trace_max)),
        }
    }

    /// Parses a table label (case-insensitive): `"DTBFM"`, `"fixed1"`, ….
    pub fn parse(label: &str) -> Option<PolicyKind> {
        Some(match label.to_ascii_uppercase().as_str() {
            "FULL" => PolicyKind::Full,
            "FIXED1" => PolicyKind::Fixed1,
            "FIXED4" => PolicyKind::Fixed4,
            "DTBMEM" => PolicyKind::DtbMem,
            "FEEDMED" => PolicyKind::FeedMed,
            "DTBFM" => PolicyKind::DtbFm,
            _ => return None,
        })
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Constraint values shared by the constrained policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// `Trace_max` for `FEEDMED` and `DTBFM` (bytes traced per scavenge).
    pub trace_max: Bytes,
    /// `Mem_max` for `DTBMEM` (total bytes in use).
    pub mem_max: Bytes,
}

impl PolicyConfig {
    /// The paper's Section 5 configuration: 100 ms pauses (50 000 bytes at
    /// 500 KB/s) and a 3000-kilobyte memory constraint.
    pub fn paper() -> PolicyConfig {
        PolicyConfig {
            trace_max: CostModel::paper().trace_budget_for_pause_ms(100.0),
            mem_max: Bytes::from_kb(3000),
        }
    }

    /// A configuration with explicit budgets.
    pub fn new(trace_max: Bytes, mem_max: Bytes) -> PolicyConfig {
        PolicyConfig { trace_max, mem_max }
    }
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_round_trip_through_labels() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind));
            assert_eq!(PolicyKind::parse(&kind.label().to_lowercase()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("NOPE"), None);
    }

    #[test]
    fn build_produces_matching_names() {
        let cfg = PolicyConfig::paper();
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build(&cfg).name(), kind.label());
        }
    }

    #[test]
    fn paper_config_values() {
        let cfg = PolicyConfig::paper();
        assert_eq!(cfg.trace_max, Bytes::new(50_000));
        assert_eq!(cfg.mem_max, Bytes::from_kb(3000));
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(PolicyKind::DtbFm.to_string(), "DTBFM");
    }
}
